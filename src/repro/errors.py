"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class. The subclasses distinguish the layer at fault:
schema definition, expression construction/typing, evaluation, constraint
violations, and warehouse-level misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by this library."""


class SchemaError(ReproError):
    """A relation schema, constraint, or catalog definition is invalid."""


class ExpressionError(ReproError):
    """A relational-algebra expression is malformed or badly typed.

    Raised, for example, when a union combines incompatible attribute sets or
    a projection mentions attributes absent from its input.
    """


class EvaluationError(ReproError):
    """An expression could not be evaluated against the given state.

    Typically the state is missing a relation the expression refers to, or a
    bound relation's attributes disagree with the catalog.
    """


class ConstraintViolation(ReproError):
    """A database state or update violates a declared integrity constraint."""


class WarehouseError(ReproError):
    """Warehouse-level misuse: unknown relations, uninitialized state, etc."""


class ParseError(ReproError):
    """The textual form of an expression or condition could not be parsed."""


class CompileError(ReproError):
    """Plan compilation was refused.

    The plan compiler (:mod:`repro.compiler`) only specializes refresh
    closures from a PROVED, self-validating prover certificate; a spec
    whose certificate fails validation (or is not update-independent)
    raises this, and the warehouse falls back to the interpreted path.
    """
