"""A scaled-down TPC-D-like schema, data generator, and warehouse views.

Section 5 of the paper motivates star-schema warehouses "similar to the one
modeled in the TPC-D decision support benchmark": dimension tables for
locations, customers, and suppliers, plus fact tables for orders and sales
extracted by PSJ queries and integrated by union.

The official TPC-D dbgen data is not available offline, so this module
generates a structurally faithful miniature: the same key / foreign-key
skeleton (regions ← nations ← suppliers/customers, orders ← customers,
lineitems ← orders/parts/suppliers), with sizes driven by a scale factor.
That preserves exactly what the paper's machinery exercises — the
constraints that shrink complements — while keeping generation laptop-fast.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Tuple

from repro.algebra.expressions import Project, RelationRef, join
from repro.algebra.parser import parse
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.views.psj import View

REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
STATUSES = ("O", "F", "P")


def tpcd_catalog() -> Catalog:
    """The miniature TPC-D catalog: keys plus foreign-key INDs.

    Relation sizes at scale factor 1.0 (see :func:`tpcd_instance`):
    5 regions, 10 nations, 20 suppliers, 60 customers, 50 parts,
    150 orders, 450 lineitems.
    """
    catalog = Catalog()
    catalog.relation("Region", ("regionkey", "rname"), key=("regionkey",))
    catalog.relation("Nation", ("nationkey", "nname", "regionkey"), key=("nationkey",))
    catalog.relation("Supplier", ("suppkey", "sname", "nationkey"), key=("suppkey",))
    catalog.relation(
        "Customer", ("custkey", "cname", "cnationkey", "mktsegment"), key=("custkey",)
    )
    catalog.relation("Part", ("partkey", "pname", "brand"), key=("partkey",))
    catalog.relation(
        "Orders", ("orderkey", "custkey", "status", "totalprice"), key=("orderkey",)
    )
    catalog.relation(
        "Lineitem",
        ("orderkey", "linenumber", "partkey", "suppkey", "quantity", "price"),
        key=("orderkey", "linenumber"),
    )
    catalog.inclusion("Nation", ("regionkey",), "Region")
    catalog.inclusion("Supplier", ("nationkey",), "Nation")
    catalog.inclusion("Customer", ("cnationkey",), "Nation", ("nationkey",))
    catalog.inclusion("Orders", ("custkey",), "Customer")
    catalog.inclusion("Lineitem", ("orderkey",), "Orders")
    catalog.inclusion("Lineitem", ("partkey",), "Part")
    catalog.inclusion("Lineitem", ("suppkey",), "Supplier")
    return catalog


class TPCDInstance(NamedTuple):
    """A generated TPC-D-like instance."""

    catalog: Catalog
    database: Database
    views: List[View]

    def sizes(self) -> Dict[str, int]:
        """Tuple counts per relation."""
        return {
            name: len(self.database[name])
            for name in self.catalog.relation_names()
        }


def standard_views() -> List[View]:
    """A representative warehouse definition over the TPC-D catalog.

    * ``SalesFact`` — the central PSJ fact view joining lineitems, orders,
      and customers (projected onto the reporting attributes; ``status``
      and ``totalprice`` are retained so the key-keeping fact view covers
      all of ``attr(Orders)``, satisfying Theorem 2.2's cover
      precondition — flagged as W0032 by ``repro.analysis`` otherwise);
    * ``SupplierDim`` — suppliers with nation and region names;
    * ``PartDim`` — a dimension copy of ``Part`` (without it, no view
      involves the relation and its complement stores it in full: W0033);
    * ``CustomerDim`` — a dimension copy (select-only view: the Section 4
      closing case, update-independent without auxiliary data).
    """
    sales = Project(
        join(RelationRef("Lineitem"), RelationRef("Orders"), RelationRef("Customer")),
        (
            "orderkey",
            "linenumber",
            "partkey",
            "suppkey",
            "custkey",
            "quantity",
            "price",
            "status",
            "totalprice",
            "mktsegment",
        ),
    )
    supplier_dim = join(
        RelationRef("Supplier"), RelationRef("Nation"), RelationRef("Region")
    )
    part_dim = parse("Part")
    customer_dim = parse("Customer")
    return [
        View("SalesFact", sales),
        View("SupplierDim", supplier_dim),
        View("PartDim", part_dim),
        View("CustomerDim", customer_dim),
    ]


def tpcd_instance(scale: float = 1.0, seed: int = 7) -> TPCDInstance:
    """Generate a TPC-D-like instance at the given scale factor.

    All foreign keys are drawn from the referenced relation's existing keys,
    so the generated database satisfies every declared constraint.
    """
    rng = random.Random(seed)
    catalog = tpcd_catalog()
    db = Database(catalog)

    n_regions = len(REGION_NAMES)
    n_nations = max(2, int(10 * min(scale, 1.0) + 10 * max(0.0, scale - 1.0)))
    n_suppliers = max(2, int(20 * scale))
    n_customers = max(3, int(60 * scale))
    n_parts = max(3, int(50 * scale))
    n_orders = max(3, int(150 * scale))
    lines_per_order = 3

    db.load(
        "Region",
        [(i, REGION_NAMES[i]) for i in range(n_regions)],
        check=False,
    )
    db.load(
        "Nation",
        [
            (i, f"NATION_{i}", rng.randrange(n_regions))
            for i in range(n_nations)
        ],
        check=False,
    )
    db.load(
        "Supplier",
        [
            (i, f"SUPP_{i}", rng.randrange(n_nations))
            for i in range(n_suppliers)
        ],
        check=False,
    )
    db.load(
        "Customer",
        [
            (i, f"CUST_{i}", rng.randrange(n_nations), rng.choice(SEGMENTS))
            for i in range(n_customers)
        ],
        check=False,
    )
    db.load(
        "Part",
        [
            (i, f"PART_{i}", f"BRAND_{rng.randrange(5)}")
            for i in range(n_parts)
        ],
        check=False,
    )
    db.load(
        "Orders",
        [
            (
                i,
                rng.randrange(n_customers),
                rng.choice(STATUSES),
                rng.randint(10_000, 1_000_000),  # total price in integer cents
            )
            for i in range(n_orders)
        ],
        check=False,
    )
    lineitems = []
    for order in range(n_orders):
        for line in range(1, lines_per_order + 1):
            lineitems.append(
                (
                    order,
                    line,
                    rng.randrange(n_parts),
                    rng.randrange(n_suppliers),
                    rng.randint(1, 50),
                    rng.randint(1_000, 50_000),  # price in integer cents
                )
            )
    db.load("Lineitem", lineitems, check=False)
    db.check_constraints()
    return TPCDInstance(catalog, db, standard_views())


def order_insert_rows(
    rng: random.Random, database: Database, count: int
) -> Tuple[List[tuple], List[tuple]]:
    """Fresh ``Orders`` and matching ``Lineitem`` rows for update streams.

    Returns ``(order_rows, lineitem_rows)`` referencing existing customers,
    parts, and suppliers, with order keys above every existing key.
    """
    existing = {row[0] for row in database["Orders"].project(("orderkey",)).rows}
    next_key = (max(existing) + 1) if existing else 0
    customers = sorted(
        row[0] for row in database["Customer"].project(("custkey",)).rows
    )
    parts = sorted(row[0] for row in database["Part"].project(("partkey",)).rows)
    suppliers = sorted(
        row[0] for row in database["Supplier"].project(("suppkey",)).rows
    )
    orders: List[tuple] = []
    lines: List[tuple] = []
    for offset in range(count):
        orderkey = next_key + offset
        orders.append(
            (
                orderkey,
                rng.choice(customers),
                rng.choice(STATUSES),
                rng.randint(10_000, 1_000_000),
            )
        )
        for line in range(1, 3):
            lines.append(
                (
                    orderkey,
                    line,
                    rng.choice(parts),
                    rng.choice(suppliers),
                    rng.randint(1, 50),
                    rng.randint(1_000, 50_000),  # price in integer cents
                )
            )
    return orders, lines
