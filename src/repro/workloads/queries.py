"""Random source-query generator (for exercising query independence).

Definition 3.1 quantifies over *every* query over ``D``; the unit tests use
hand-picked panels, and this generator closes the loop with arbitrary
well-typed queries — joins, unions, differences, selections, projections,
and renames over a catalog — used by the property-style tests and the E6
benchmark harness.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.algebra.conditions import Comparison, attr, const
from repro.algebra.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.schema.catalog import Catalog

_OPS = ("=", "!=", "<", "<=", ">", ">=")


def _rng(seed_or_rng) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


class QueryGenerator:
    """Generates random well-typed queries over a catalog.

    Parameters
    ----------
    catalog:
        The schema to draw relations and attributes from.
    constants:
        Candidate constants for selection conditions; supply values from
        the data's domain so selections are occasionally satisfiable.
    max_depth:
        Maximum operator nesting.
    """

    def __init__(
        self,
        catalog: Catalog,
        constants: Optional[List[object]] = None,
        max_depth: int = 3,
    ) -> None:
        self.catalog = catalog
        self.scope = {s.name: s.attributes for s in catalog.schemas()}
        self.constants = list(constants) if constants else [0, 1, 2]
        self.max_depth = max_depth

    def query(self, seed_or_rng) -> Expression:
        """One random well-typed query."""
        rng = _rng(seed_or_rng)
        for _ in range(50):
            candidate = self._build(rng, self.max_depth)
            try:
                candidate.attributes(self.scope)
            except Exception:
                continue
            return candidate
        return RelationRef(rng.choice(list(self.catalog.relation_names())))

    def queries(self, count: int, seed: int = 0) -> List[Expression]:
        """A batch of random queries."""
        rng = _rng(seed)
        return [self.query(rng) for _ in range(count)]

    # ------------------------------------------------------------------

    def _build(self, rng: random.Random, depth: int) -> Expression:
        if depth == 0 or rng.random() < 0.25:
            return RelationRef(rng.choice(list(self.catalog.relation_names())))
        kind = rng.choice(
            ("join", "union", "difference", "select", "project", "rename")
        )
        left = self._build(rng, depth - 1)
        try:
            left_attrs = left.attributes(self.scope)
        except Exception:
            return left

        if kind == "join":
            right = self._build(rng, depth - 1)
            return Join(left, right)

        if kind in ("union", "difference"):
            right = self._build(rng, depth - 1)
            try:
                right_attrs = right.attributes(self.scope)
            except Exception:
                return left
            shared = tuple(a for a in left_attrs if a in set(right_attrs))
            if not shared:
                return left
            sides = (Project(left, shared), Project(right, shared))
            return Union(*sides) if kind == "union" else Difference(*sides)

        if kind == "select":
            attribute = rng.choice(left_attrs)
            op = rng.choice(_OPS)
            if rng.random() < 0.7 or len(left_attrs) == 1:
                operand = const(rng.choice(self.constants))
            else:
                operand = attr(rng.choice([a for a in left_attrs if a != attribute]))
            return Select(left, Comparison(attr(attribute), op, operand))

        if kind == "project":
            size = rng.randint(1, len(left_attrs))
            return Project(left, tuple(sorted(rng.sample(list(left_attrs), size))))

        # rename
        attribute = rng.choice(left_attrs)
        fresh = f"{attribute}_r"
        if fresh in left_attrs:
            return left
        return Rename(left, {attribute: fresh})
