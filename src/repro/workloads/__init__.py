"""Workload generators: random schemata, data, views, and update streams.

Everything here is synthetic-but-constraint-respecting: generated databases
satisfy the declared keys and inclusion dependencies, generated update
streams keep them satisfied, and generated view sets are PSJ views over
join-connected relation subsets — the exact setting of the paper.

* :mod:`repro.workloads.generator` — random catalogs, databases, PSJ view
  sets, and update streams (used by property tests and scaling benchmarks);
* :mod:`repro.workloads.tpcd` — a scaled-down TPC-D-like schema and data
  generator (Section 5 motivates star schemata "similar to the one modeled
  in the TPC-D decision support benchmark").
"""

from repro.workloads.generator import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_update,
    random_update_stream,
    random_views,
)
from repro.workloads.queries import QueryGenerator
from repro.workloads.tpcd import TPCDInstance, tpcd_catalog, tpcd_instance

__all__ = [
    "GeneratorConfig",
    "QueryGenerator",
    "TPCDInstance",
    "random_catalog",
    "random_database",
    "random_update",
    "random_update_stream",
    "random_views",
    "tpcd_catalog",
    "tpcd_instance",
]
