"""Random catalogs, databases, PSJ views, and update streams.

All generators are deterministic given a :class:`random.Random` (or an int
seed), so tests and benchmarks are reproducible.

Design notes
------------
* **Attribute sharing.** Relations draw attributes from a shared pool, so
  natural joins are meaningful; each relation also gets a private key
  attribute ``<name>_id`` so keys are non-trivial.
* **Acyclic INDs.** Inclusion dependencies point from later relations to
  earlier ones (in declaration order), which keeps the IND graph acyclic by
  construction; the data generator materializes relations in reverse
  declaration order so referenced projections exist first.
* **Valid updates.** The update-stream generator keeps a private mirror
  database; candidate updates are validated against it and invalid ones are
  discarded, so the emitted stream is exactly what correct sources would
  report.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.algebra.conditions import Comparison, attr as attr_ref, const
from repro.algebra.expressions import Expression, Project, RelationRef, Select, join
from repro.errors import ConstraintViolation
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.update import Update
from repro.views.psj import View


class GeneratorConfig(NamedTuple):
    """Knobs for :func:`random_catalog`."""

    n_relations: int = 4
    shared_pool_size: int = 6
    attrs_per_relation: Tuple[int, int] = (2, 4)  # min/max shared attributes
    key_probability: float = 0.8
    ind_probability: float = 0.4
    domain_size: int = 12


def _rng(seed_or_rng) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_catalog(
    seed_or_rng, config: GeneratorConfig = GeneratorConfig()
) -> Catalog:
    """A random catalog with shared attributes, keys, and acyclic INDs.

    Every relation ``R<i>`` has a private key attribute ``r<i>_id`` plus a
    random selection of shared pool attributes ``a0..a<k>``. With probability
    ``key_probability`` the private attribute is declared as the key. INDs
    run from later relations into earlier ones over shared attributes that
    include the target's key (so they are usable by Theorem 2.2), with
    at most one IND per (source, target) pair and disjoint source-side
    attribute sets per source (so the data generator can satisfy them all).
    """
    rng = _rng(seed_or_rng)
    catalog = Catalog()
    pool = [f"a{i}" for i in range(config.shared_pool_size)]
    shared_per_relation: Dict[str, List[str]] = {}
    for index in range(config.n_relations):
        name = f"R{index}"
        key_attr = f"r{index}_id"
        low, high = config.attrs_per_relation
        count = rng.randint(low, min(high, len(pool)))
        shared = rng.sample(pool, count)
        shared_per_relation[name] = shared
        has_key = rng.random() < config.key_probability
        catalog.relation(
            name, [key_attr] + shared, key=(key_attr,) if has_key else None
        )

    names = list(catalog.relation_names())
    for source_index in range(1, len(names)):
        source = names[source_index]
        used_source_attrs: set = set()
        targets = names[:source_index]
        rng.shuffle(targets)
        for target in targets:
            if rng.random() >= config.ind_probability:
                continue
            target_key = catalog.key(target)
            if target_key is None:
                continue
            # The IND must cover the target's key; map the target key to an
            # unused shared attribute of the source (renamed IND), and carry
            # along any common shared attributes.
            source_attrs = [
                a for a in shared_per_relation[source] if a not in used_source_attrs
            ]
            if not source_attrs:
                continue
            lhs_attr = rng.choice(source_attrs)
            try:
                catalog.inclusion(source, (lhs_attr,), target, target_key)
            except Exception:
                continue
            used_source_attrs.add(lhs_attr)
    return catalog


def random_database(
    seed_or_rng,
    catalog: Catalog,
    rows_per_relation: int = 30,
    domain_size: int = 12,
) -> Database:
    """A random database satisfying all of ``catalog``'s constraints.

    Relations are filled in an order where IND targets come first; an IND
    source draws its constrained attribute values from the target's existing
    key projection. Key attributes get distinct values by construction.
    """
    rng = _rng(seed_or_rng)
    db = Database(catalog)
    order = list(catalog.inclusion_order())
    order.reverse()  # targets (rhs) before sources (lhs)
    for name in order:
        schema = catalog[name]
        inds = catalog.inclusions_from(name)
        # Pre-compute allowed value tuples per IND from the target relation.
        allowed: List[Tuple[Tuple[str, ...], List[tuple]]] = []
        for ind in inds:
            target_rows = db[ind.rhs].project(ind.rhs_attributes)
            allowed.append((ind.lhs_attributes, sorted(target_rows.rows, key=repr)))
        rows = []
        used_keys: set = set()
        key = schema.key or ()
        for row_index in range(rows_per_relation):
            values: Dict[str, object] = {}
            for ind_attrs, choices in allowed:
                if not choices:
                    break
                chosen = rng.choice(choices)
                for attribute, value in zip(ind_attrs, chosen):
                    values[attribute] = value
            else:
                for attribute in schema.attributes:
                    if attribute not in values:
                        if attribute in key:
                            values[attribute] = f"{name}_{row_index}"
                        else:
                            values[attribute] = rng.randrange(domain_size)
                row = tuple(values[a] for a in schema.attributes)
                key_value = tuple(values[a] for a in key)
                if key and key_value in used_keys:
                    continue
                used_keys.add(key_value)
                rows.append(row)
        db.load(name, rows, check=False)
    db.check_constraints()
    return db


def random_views(
    seed_or_rng,
    catalog: Catalog,
    n_views: int = 3,
    max_relations: int = 3,
    selection_probability: float = 0.3,
    projection_probability: float = 0.4,
    domain_size: int = 12,
    prefix: str = "V",
) -> List[View]:
    """Random PSJ views over join-connected relation subsets.

    Each view joins 1..``max_relations`` relations (grown greedily along
    shared attributes), optionally adds an equality selection on a shared
    attribute, and optionally projects onto a random attribute subset.
    """
    rng = _rng(seed_or_rng)
    names = list(catalog.relation_names())
    views: List[View] = []
    for index in range(n_views):
        start = rng.choice(names)
        chosen = [start]
        chosen_attrs = set(catalog.attributes(start))
        target_size = rng.randint(1, max_relations)
        while len(chosen) < target_size:
            candidates = [
                n
                for n in names
                if n not in chosen and chosen_attrs & catalog.attributes(n)
            ]
            if not candidates:
                break
            nxt = rng.choice(candidates)
            chosen.append(nxt)
            chosen_attrs |= catalog.attributes(nxt)

        body: Expression = join(*[RelationRef(n) for n in chosen])
        if rng.random() < selection_probability:
            shared = sorted(a for a in chosen_attrs if a.startswith("a"))
            if shared:
                attribute = rng.choice(shared)
                body = Select(
                    body,
                    Comparison(attr_ref(attribute), "=", const(rng.randrange(domain_size))),
                )
        if rng.random() < projection_probability:
            all_attrs = sorted(chosen_attrs)
            size = rng.randint(1, len(all_attrs))
            body = Project(body, tuple(sorted(rng.sample(all_attrs, size))))
        views.append(View(f"{prefix}{index}", body))
    return views


def random_update(
    seed_or_rng,
    mirror: Database,
    batch_size: int = 3,
    insert_fraction: float = 0.6,
    domain_size: int = 12,
    max_attempts: int = 50,
) -> Optional[Update]:
    """One valid update against ``mirror`` (which is advanced in place).

    Tries random insert/delete batches until one passes constraint checking
    on the mirror; returns ``None`` if ``max_attempts`` candidates all fail
    (e.g. every remaining tuple is referenced by an IND).
    """
    rng = _rng(seed_or_rng)
    catalog = mirror.catalog
    names = list(catalog.relation_names())
    for _ in range(max_attempts):
        name = rng.choice(names)
        schema = catalog[name]
        if rng.random() < insert_fraction:
            rows = _candidate_insert_rows(rng, mirror, name, batch_size, domain_size)
            if not rows:
                continue
            update = Update.insert(name, schema.attributes, rows)
        else:
            existing = sorted(mirror[name].rows, key=repr)
            if not existing:
                continue
            rows = rng.sample(existing, min(batch_size, len(existing)))
            update = Update.delete(name, schema.attributes, rows)
        try:
            return mirror.apply(update)
        except ConstraintViolation:
            continue
    return None


def _candidate_insert_rows(
    rng: random.Random,
    mirror: Database,
    name: str,
    batch_size: int,
    domain_size: int,
) -> List[tuple]:
    catalog = mirror.catalog
    schema = catalog[name]
    key = schema.key or ()
    existing_keys = set(mirror[name].project(key).rows) if key else set()
    allowed: List[Tuple[Tuple[str, ...], List[tuple]]] = []
    for ind in catalog.inclusions_from(name):
        target_rows = mirror[ind.rhs].project(ind.rhs_attributes)
        allowed.append((ind.lhs_attributes, sorted(target_rows.rows, key=repr)))
    rows: List[tuple] = []
    for attempt in range(batch_size * 4):
        if len(rows) >= batch_size:
            break
        values: Dict[str, object] = {}
        feasible = True
        for ind_attrs, choices in allowed:
            if not choices:
                feasible = False
                break
            chosen = rng.choice(choices)
            for attribute, value in zip(ind_attrs, chosen):
                values[attribute] = value
        if not feasible:
            break
        for attribute in schema.attributes:
            if attribute not in values:
                if attribute in key:
                    values[attribute] = f"{name}_new_{rng.randrange(10 ** 9)}"
                else:
                    values[attribute] = rng.randrange(domain_size)
        key_value = tuple(values[a] for a in key)
        if key and key_value in existing_keys:
            continue
        if key:
            existing_keys.add(key_value)
        rows.append(tuple(values[a] for a in schema.attributes))
    return rows


def random_update_stream(
    seed_or_rng,
    database: Database,
    n_updates: int = 20,
    batch_size: int = 3,
    insert_fraction: float = 0.6,
    domain_size: int = 12,
) -> List[Update]:
    """A stream of valid updates, as the sources would report them.

    ``database`` is *copied*; the caller's instance is untouched. The
    returned updates are effective with respect to the evolving state, i.e.
    replaying them in order on a copy of ``database`` is always legal.
    """
    rng = _rng(seed_or_rng)
    mirror = database.copy()
    stream: List[Update] = []
    for _ in range(n_updates):
        update = random_update(
            rng,
            mirror,
            batch_size=batch_size,
            insert_fraction=insert_fraction,
            domain_size=domain_size,
        )
        if update is None:
            break
        if not update.is_empty():
            stream.append(update)
    return stream
