"""Views: PSJ normal form, named view sets, and structural analysis.

The paper's complement algorithms (Proposition 2.2, Theorem 2.2) apply to
**PSJ views** — expressions of the form ``pi_Z(sigma_C(R_1 join ... join
R_k))`` (Section 2). This package recognizes and normalizes such views,
manages named view sets (warehouse definitions), and provides the join-graph
and inclusion-dependency analyses that let complements collapse to the empty
relation (Example 2.4).
"""

from repro.views.psj import PSJView, View, as_psj
from repro.views.analysis import (
    derives_inclusion,
    join_complete_relations,
    join_graph,
)

__all__ = [
    "PSJView",
    "View",
    "as_psj",
    "derives_inclusion",
    "join_complete_relations",
    "join_graph",
]
