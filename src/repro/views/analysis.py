"""Structural analyses of PSJ views: join graphs and join-completeness.

The key analysis here powers Example 2.4 of the paper: with the referential
integrity constraint ``pi_clerk(Sale) subseteq pi_clerk(Emp)``, *every* tuple
of ``Sale`` has a join partner in ``Emp``, hence the complement
``C_2 = Sale - pi_{item,clerk}(Sold)`` is always empty and can be dropped
from the warehouse.

:func:`join_complete_relations` generalizes this: it returns the base
relations ``R`` of a PSJ view for which the view provably satisfies
``pi_{attr(R)}(V) = R`` on every constraint-satisfying state. The sufficient
condition implemented is conservative but sound:

* the view's selection condition is TRUE,
* the view's final projection retains all attributes of ``R``, and
* the remaining join partners can be ordered so that each newly joined
  relation ``S`` is *covered*: the attributes shared between ``S`` and the
  part already joined all come from one already-joined relation ``P``, and
  an inclusion dependency ``pi_shared(P) subseteq pi_shared(S)`` is derivable
  from the declared INDs (by projection and transitivity).

Under these conditions the join loses no tuple of ``R``, so the projection
onto ``attr(R)`` returns exactly ``R``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.schema.catalog import Catalog
from repro.views.psj import PSJView


def join_graph(
    view: PSJView, catalog: Catalog
) -> Dict[Tuple[str, str], FrozenSet[str]]:
    """The join graph of a PSJ view.

    Returns a mapping from relation-name pairs (sorted) to the set of shared
    attributes; only pairs with at least one shared attribute appear.
    """
    edges: Dict[Tuple[str, str], FrozenSet[str]] = {}
    rels = view.relations
    for i, first in enumerate(rels):
        for second in rels[i + 1 :]:
            shared = catalog.attributes(first) & catalog.attributes(second)
            if shared:
                edge = tuple(sorted((first, second)))
                edges[edge] = frozenset(shared)
    return edges


def is_join_connected(view: PSJView, catalog: Catalog) -> bool:
    """Whether the join graph of the view is connected.

    Disconnected joins are cartesian products; they are legal but rarely
    intended, and join-completeness analysis refuses them.
    """
    rels = list(view.relations)
    if len(rels) <= 1:
        return True
    edges = join_graph(view, catalog)
    adjacency: Dict[str, Set[str]] = {r: set() for r in rels}
    for first, second in edges:
        adjacency[first].add(second)
        adjacency[second].add(first)
    seen = {rels[0]}
    queue = deque([rels[0]])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return len(seen) == len(rels)


def derives_inclusion(
    catalog: Catalog,
    lhs: str,
    lhs_attributes: Sequence[str],
    rhs: str,
    rhs_attributes: Sequence[str],
) -> bool:
    """Whether ``pi_{lhs_attributes}(lhs) subseteq pi_{rhs_attributes}(rhs)``
    is derivable from the declared INDs.

    The derivation rules used are *projection* (an IND implies the IND on any
    subsequence of its attribute pairs) and *transitivity* (INDs compose).
    Reflexivity (``lhs == rhs`` with identical sequences) holds trivially.
    Both rules are sound and, with acyclic INDs, the search (a BFS over
    relations with the attribute correspondence threaded through) terminates.
    """
    want_lhs = tuple(lhs_attributes)
    want_rhs = tuple(rhs_attributes)
    if len(want_lhs) != len(want_rhs):
        return False
    if lhs == rhs and want_lhs == want_rhs:
        return True

    # State: (relation, attribute tuple) meaning
    # pi_{want_lhs}(lhs) subseteq pi_{attrs}(relation) is derived.
    start = (lhs, want_lhs)
    seen = {start}
    queue = deque([start])
    while queue:
        relation, attrs = queue.popleft()
        if relation == rhs and attrs == want_rhs:
            return True
        for ind in catalog.inclusions_from(relation):
            # Apply projection: every attribute of `attrs` must occur on the
            # IND's left side; map it through the IND's correspondence.
            renaming = ind.renaming()
            if all(a in renaming for a in attrs):
                image = (ind.rhs, tuple(renaming[a] for a in attrs))
                if image not in seen:
                    seen.add(image)
                    queue.append(image)
    return False


def condition_implied_by_checks(view: PSJView, catalog: Catalog) -> bool:
    """Whether the view's selection condition filters nothing, provably.

    True when the condition is TRUE, or when each of its conjuncts is
    structurally identical to a declared check-constraint conjunct of some
    joined relation carrying the conjunct's attributes. The Section 5 star
    scenario depends on this: a member selection ``loc = 'N'`` over a source
    whose tuples all satisfy ``loc = 'N'`` (declared via
    :meth:`~repro.schema.catalog.Catalog.add_check`) is a no-op.
    """
    if view.has_trivial_condition():
        return True
    for conjunct in view.condition.conjuncts():
        conjunct_attrs = conjunct.attributes()
        implied = False
        for relation in view.relations:
            if not conjunct_attrs <= catalog.attributes(relation):
                continue
            for check in catalog.checks(relation):
                if any(conjunct.same_as(part) for part in check.conjuncts()):
                    implied = True
                    break
            if implied:
                break
        if not implied:
            return False
    return True


def join_complete_relations(view: PSJView, catalog: Catalog) -> FrozenSet[str]:
    """Base relations ``R`` with ``pi_{attr(R)}(V) = R`` on all legal states.

    See the module docstring for the sufficient condition. Returns the
    (possibly empty) set of provably join-complete relations of ``view``.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> _ = catalog.inclusion("Sale", ("clerk",), "Emp")
    >>> sold = PSJView(("Sale", "Emp"))
    >>> sorted(join_complete_relations(sold, catalog))
    ['Sale']
    """
    if not condition_implied_by_checks(view, catalog):
        return frozenset()
    scope = {s.name: s.attributes for s in catalog.schemas()}
    complete: Set[str] = set()
    for relation in view.relations:
        if not view.retains(catalog.attributes(relation), scope):
            continue
        if _join_preserves(view, relation, catalog):
            complete.add(relation)
    return frozenset(complete)


def _join_preserves(view: PSJView, origin: str, catalog: Catalog) -> bool:
    """Whether joining the view's relations loses no tuple of ``origin``."""
    remaining = [r for r in view.relations if r != origin]
    joined: List[str] = [origin]
    joined_attrs: Set[str] = set(catalog.attributes(origin))

    while remaining:
        progressed = False
        for candidate in list(remaining):
            shared = joined_attrs & catalog.attributes(candidate)
            if not shared:
                # A cartesian extension preserves tuples only if the
                # candidate is guaranteed non-empty, which no constraint
                # gives us; refuse.
                continue
            provider = _covering_provider(joined, shared, candidate, catalog)
            if provider is None:
                continue
            joined.append(candidate)
            joined_attrs |= set(catalog.attributes(candidate))
            remaining.remove(candidate)
            progressed = True
            break
        if not progressed:
            return False
    return True


def _covering_provider(
    joined: Sequence[str], shared: Set[str], candidate: str, catalog: Catalog
):
    """An already-joined relation whose IND covers the shared attributes.

    For the next join step to preserve all tuples, every tuple of the current
    partial join must find a partner in ``candidate``. A sufficient condition:
    one already-joined relation ``P`` carries all shared attributes, and
    ``pi_shared(P) subseteq pi_shared(candidate)`` is derivable. (The partial
    join's projection onto ``shared`` is then contained in ``pi_shared(P)``,
    hence in ``pi_shared(candidate)``.)
    """
    shared_sorted = tuple(sorted(shared))
    for provider in joined:
        if not shared <= set(catalog.attributes(provider)):
            continue
        if derives_inclusion(catalog, provider, shared_sorted, candidate, shared_sorted):
            return provider
    return None
