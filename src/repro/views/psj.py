"""PSJ views: recognition, normalization, and the named ``View`` wrapper.

A PSJ view is ``pi_Z(sigma_C(R_{i1} join ... join R_{ik}))`` over distinct
base relations (Section 2 of the paper). Arbitrary project/select/join trees
are normalized into this shape when it is sound to do so:

* selections commute upward through joins and other selections;
* nested projections compose; a projection must sit *above* all joins
  (a projection strictly below a join changes the join attributes and is
  rejected — write such views in normal form explicitly).

The normal form keeps the paper's three ingredients explicit, which is what
the complement machinery consumes: the relation list (for ``V_R``), the final
projection ``Z`` (for ``V_K``: does the view retain the key?), and the
selection condition (join-completeness analysis requires it to be trivial).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.algebra.conditions import Condition, TRUE, TrueCondition, conjoin
from repro.algebra.expressions import (
    Expression,
    Join,
    Project,
    RelationRef,
    Select,
    Scope,
    join as join_expr,
    select as select_expr,
)
from repro.schema.schema import check_name


class PSJView:
    """The normal form ``pi_Z(sigma_C(R_1 join ... join R_k))``.

    Attributes
    ----------
    relations:
        The distinct base relations joined, in join order.
    condition:
        The (possibly TRUE) selection condition.
    projection:
        The final projection attributes ``Z``, or ``None`` for an SJ view
        (no final projection — all attributes are kept, the case in which
        Theorem 2.1 guarantees minimal complements).
    """

    __slots__ = ("relations", "condition", "projection")

    def __init__(
        self,
        relations: Sequence[str],
        condition: Condition = TRUE,
        projection: Optional[Sequence[str]] = None,
    ) -> None:
        rels = tuple(relations)
        if not rels:
            raise ExpressionError("a PSJ view joins at least one relation")
        if len(set(rels)) != len(rels):
            raise ExpressionError(
                f"PSJ views join distinct relations; {rels} repeats one "
                "(self-joins require renaming and are outside the paper's fragment)"
            )
        for name in rels:
            check_name(name, "relation")
        self.relations = rels
        self.condition = condition
        self.projection = tuple(projection) if projection is not None else None

    # ------------------------------------------------------------------

    def expression(self) -> Expression:
        """The canonical expression for this view."""
        body: Expression = join_expr(*[RelationRef(name) for name in self.relations])
        body = select_expr(body, self.condition)
        if self.projection is not None:
            body = Project(body, self.projection)
        return body

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        """The view's output attributes (``Z_i`` in the paper)."""
        return self.expression().attributes(scope)

    def joined_attributes(self, scope: Scope) -> FrozenSet[str]:
        """All attributes of the underlying join (before projection)."""
        out = set()
        for name in self.relations:
            out.update(scope[name])
        return frozenset(out)

    def is_sj(self, scope: Scope) -> bool:
        """Whether this is an SJ view: the projection keeps *all* attributes.

        Theorem 2.1: for sets of SJ views, Proposition 2.2 yields minimal
        complements.
        """
        if self.projection is None:
            return True
        return set(self.projection) == set(self.joined_attributes(scope))

    def involves(self, relation: str) -> bool:
        """Whether ``relation`` occurs in this view's join (``V in V_R``)."""
        return relation in self.relations

    def has_trivial_condition(self) -> bool:
        """Whether the selection condition is TRUE."""
        return isinstance(self.condition, TrueCondition)

    def retains(self, attributes: Iterable[str], scope: Scope) -> bool:
        """Whether all of ``attributes`` survive the final projection."""
        return set(attributes) <= set(self.attributes(scope))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PSJView):
            return NotImplemented
        return (
            set(self.relations) == set(other.relations)
            and self.condition == other.condition
            and (
                (self.projection is None) == (other.projection is None)
                and (
                    self.projection is None
                    or set(self.projection) == set(other.projection or ())
                )
            )
        )

    def __hash__(self) -> int:
        proj = frozenset(self.projection) if self.projection is not None else None
        return hash((frozenset(self.relations), self.condition, proj))

    def __repr__(self) -> str:
        return f"PSJView({self.expression()})"

    def __str__(self) -> str:
        return str(self.expression())


def _collect(
    expr: Expression,
    relations: List[str],
    conditions: List[Condition],
    below_join: bool,
) -> None:
    """Walk a select/join tree, pulling selections up and leaves out."""
    if isinstance(expr, RelationRef):
        relations.append(expr.name)
        return
    if isinstance(expr, Select):
        conditions.append(expr.condition)
        _collect(expr.child, relations, conditions, below_join)
        return
    if isinstance(expr, Join):
        _collect(expr.left, relations, conditions, True)
        _collect(expr.right, relations, conditions, True)
        return
    if isinstance(expr, Project):
        if below_join:
            raise ExpressionError(
                f"projection below a join is not in PSJ form: {expr}"
            )
        raise ExpressionError(f"unexpected nested projection placement: {expr}")
    raise ExpressionError(
        f"{type(expr).__name__} nodes are not part of the PSJ fragment: {expr}"
    )


def as_psj(expression: Expression, scope: Optional[Scope] = None) -> PSJView:
    """Normalize an expression into :class:`PSJView` form.

    Raises :class:`~repro.errors.ExpressionError` if the expression is not a
    PSJ view (contains union/difference/rename, repeats a relation, or puts a
    projection below a join).

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> view = as_psj(parse("pi[item, age](sigma[age > 21](Sale join Emp))"))
    >>> view.relations
    ('Sale', 'Emp')
    >>> str(view.condition)
    'age > 21'
    """
    projection: Optional[Tuple[str, ...]] = None
    top = expression
    top_conditions: List[Condition] = []
    # Peel selections and (composing) projections off the top.
    while True:
        if isinstance(top, Project):
            if projection is None:
                projection = top.attrs
            # An inner projection composes away (outer wins) only when the
            # outer projection is a subset; pi[Z1](pi[Z2](e)) = pi[Z1](e)
            # whenever Z1 subseteq Z2, which the type check enforces.
            top = top.child
            continue
        if isinstance(top, Select) and projection is None:
            top_conditions.append(top.condition)
            top = top.child
            continue
        if isinstance(top, Select) and projection is not None:
            # sigma below the final projection: legal, keep peeling.
            top_conditions.append(top.condition)
            top = top.child
            continue
        break

    relations: List[str] = []
    conditions: List[Condition] = list(top_conditions)
    _collect(top, relations, conditions, False)
    condition = conjoin(conditions)
    view = PSJView(tuple(relations), condition, projection)
    if scope is not None:
        view.attributes(scope)  # type-check against the scope
    return view


class View:
    """A named view: the warehouse definition's unit.

    Wraps an arbitrary expression; :meth:`psj` exposes the PSJ normal form
    when it exists (complement computation requires it).
    """

    __slots__ = ("name", "definition", "_psj")

    def __init__(self, name: str, definition: Expression) -> None:
        self.name = check_name(name, "view")
        self.definition = definition
        self._psj: Optional[PSJView] = None

    def psj(self, scope: Optional[Scope] = None) -> PSJView:
        """This view in PSJ normal form (cached)."""
        if self._psj is None:
            self._psj = as_psj(self.definition, scope)
        return self._psj

    def is_psj(self) -> bool:
        """Whether the definition normalizes to a PSJ view."""
        try:
            self.psj()
        except ExpressionError:
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self.name == other.name and self.definition == other.definition

    def __hash__(self) -> int:
        return hash((self.name, self.definition))

    def __repr__(self) -> str:
        return f"View({self.name!r}, {self.definition})"

    def __str__(self) -> str:
        return f"{self.name} = {self.definition}"
