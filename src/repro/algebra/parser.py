"""A small textual syntax for algebra expressions and conditions.

The grammar mirrors the pretty-printer of
:mod:`repro.algebra.expressions`, so ``parse(str(expr)) == expr`` holds for
every expression the library produces. It exists to make examples, tests,
and interactive exploration pleasant::

    parse("pi[age](sigma[item = 'PC'](Sale join Emp))")

Grammar (binary operators are left-associative; ``join`` binds tighter than
``minus``/``union``)::

    expr      := term (("union" | "minus") term)*
    term      := factor ("join" factor)*
    factor    := NAME
               | "empty" "[" attrs "]"
               | "pi" "[" attrs "]" "(" expr ")"
               | "sigma" "[" cond "]" "(" expr ")"
               | "rho" "[" renames "]" "(" expr ")"
               | "(" expr ")"
    renames   := NAME "->" NAME ("," NAME "->" NAME)*
    cond      := disj
    disj      := conj ("or" conj)*
    conj      := atom ("and" atom)*
    atom      := "true" | "false" | "not" "(" cond ")" | "(" cond ")"
               | operand OP operand
    operand   := NAME | NUMBER | STRING
    OP        := "=" | "!=" | "<" | "<=" | ">" | ">="
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import ParseError
from repro.algebra.conditions import (
    Comparison,
    Condition,
    FALSE,
    Not,
    Operand,
    Or,
    TRUE,
    attr,
    conjoin,
    const,
)
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|!=|->|[=<>])
  | (?P<punct>[\[\](),])
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:\\'|[^'])*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"pi", "sigma", "rho", "empty", "join", "union", "minus", "and", "or", "not", "true", "false"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "name" and value in _KEYWORDS:
                kind = "keyword"
            tokens.append(_Token(kind, value, pos))
        pos = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r} at offset {token.pos}, found {token.text!r} "
                f"in {self._text!r}"
            )
        return self._next()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    # -- expression grammar ------------------------------------------------

    def parse_expression(self) -> Expression:
        expr = self._expr()
        self._expect("eof")
        return expr

    def _expr(self) -> Expression:
        left = self._term()
        while True:
            if self._accept("keyword", "union"):
                left = Union(left, self._term())
            elif self._accept("keyword", "minus"):
                left = Difference(left, self._term())
            else:
                return left

    def _term(self) -> Expression:
        left = self._factor()
        while self._accept("keyword", "join"):
            left = Join(left, self._factor())
        return left

    def _factor(self) -> Expression:
        token = self._peek()
        if token.kind == "punct" and token.text == "(":
            self._next()
            expr = self._expr()
            self._expect("punct", ")")
            return expr
        if token.kind == "keyword" and token.text == "empty":
            self._next()
            self._expect("punct", "[")
            attrs = self._attr_list()
            self._expect("punct", "]")
            return Empty(attrs)
        if token.kind == "keyword" and token.text == "pi":
            self._next()
            self._expect("punct", "[")
            attrs = self._attr_list()
            self._expect("punct", "]")
            self._expect("punct", "(")
            child = self._expr()
            self._expect("punct", ")")
            return Project(child, attrs)
        if token.kind == "keyword" and token.text == "sigma":
            self._next()
            self._expect("punct", "[")
            condition = self._condition()
            self._expect("punct", "]")
            self._expect("punct", "(")
            child = self._expr()
            self._expect("punct", ")")
            return Select(child, condition)
        if token.kind == "keyword" and token.text == "rho":
            self._next()
            self._expect("punct", "[")
            mapping = self._rename_list()
            self._expect("punct", "]")
            self._expect("punct", "(")
            child = self._expr()
            self._expect("punct", ")")
            return Rename(child, mapping)
        if token.kind == "name":
            self._next()
            return RelationRef(token.text)
        raise ParseError(
            f"expected an expression at offset {token.pos}, found {token.text!r} "
            f"in {self._text!r}"
        )

    def _attr_list(self) -> Tuple[str, ...]:
        names = [self._expect("name").text]
        while self._accept("punct", ","):
            names.append(self._expect("name").text)
        return tuple(names)

    def _rename_list(self) -> dict:
        mapping = {}
        while True:
            old = self._expect("name").text
            self._expect("op", "->")
            new = self._expect("name").text
            mapping[old] = new
            if not self._accept("punct", ","):
                return mapping

    # -- condition grammar ---------------------------------------------------

    def parse_condition_only(self) -> Condition:
        condition = self._condition()
        self._expect("eof")
        return condition

    def _condition(self) -> Condition:
        parts = [self._conjunction()]
        while self._accept("keyword", "or"):
            parts.append(self._conjunction())
        if len(parts) == 1:
            return parts[0]
        return Or(parts)

    def _conjunction(self) -> Condition:
        parts = [self._atom()]
        while self._accept("keyword", "and"):
            parts.append(self._atom())
        return conjoin(parts)

    def _atom(self) -> Condition:
        token = self._peek()
        if token.kind == "keyword" and token.text == "true":
            self._next()
            return TRUE
        if token.kind == "keyword" and token.text == "false":
            self._next()
            return FALSE
        if token.kind == "keyword" and token.text == "not":
            self._next()
            self._expect("punct", "(")
            inner = self._condition()
            self._expect("punct", ")")
            return Not(inner)
        if token.kind == "punct" and token.text == "(":
            self._next()
            inner = self._condition()
            self._expect("punct", ")")
            return inner
        left = self._operand()
        op_token = self._peek()
        if op_token.kind != "op" or op_token.text == "->":
            raise ParseError(
                f"expected comparison operator at offset {op_token.pos} in {self._text!r}"
            )
        self._next()
        right = self._operand()
        return Comparison(left, op_token.text, right)

    def _operand(self) -> Operand:
        token = self._next()
        if token.kind == "name":
            return attr(token.text)
        if token.kind == "number":
            text = token.text
            return const(float(text) if "." in text else int(text))
        if token.kind == "string":
            raw = token.text[1:-1].replace("\\'", "'")
            return const(raw)
        raise ParseError(
            f"expected an operand at offset {token.pos}, found {token.text!r} "
            f"in {self._text!r}"
        )


def parse(text: str) -> Expression:
    """Parse the textual form of an algebra expression.

    Examples
    --------
    >>> parse("Sale join Emp")
    <Join: Sale join Emp>
    >>> parse("pi[clerk](Sale) union pi[clerk](Emp)")
    <Union: pi[clerk](Sale) union pi[clerk](Emp)>
    """
    return _Parser(text).parse_expression()


def parse_condition(text: str) -> Condition:
    """Parse the textual form of a selection condition.

    Examples
    --------
    >>> str(parse_condition("item = 'PC' and age >= 18"))
    "item = 'PC' and age >= 18"
    """
    return _Parser(text).parse_condition_only()
