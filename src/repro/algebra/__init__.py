"""Relational algebra: expressions, conditions, evaluation, and rewriting.

This package is the formal machinery of the paper: views are relational
expressions over the catalog (Section 2), complements and inverses are again
expressions, query translation substitutes inverse expressions for base
relations (Section 3), and maintenance expressions are derived symbolically
by delta rules and the same substitution (Section 4).

Public API highlights:

* expression constructors — :func:`rel`, :func:`project`, :func:`select`,
  :func:`join`, :func:`union`, :func:`difference`, :func:`rename`,
  :func:`empty`;
* condition constructors — :func:`attr`, :func:`const` and the comparison
  helpers on :class:`~repro.algebra.conditions.Operand`;
* :func:`~repro.algebra.evaluator.evaluate` — run an expression over a state;
* :func:`~repro.algebra.parser.parse` — textual expression syntax;
* :func:`~repro.algebra.simplify.simplify` — algebraic simplification;
* :func:`~repro.algebra.rewriting.substitute` — base-relation substitution;
* :func:`~repro.algebra.deltas.derive_delta` — symbolic change propagation;
* :func:`~repro.algebra.containment.is_contained_in` — conjunctive-query
  containment on the PSJ fragment.
"""

from repro.algebra.conditions import (
    And,
    AttributeRef,
    Comparison,
    Condition,
    Constant,
    Not,
    Operand,
    Or,
    TRUE,
    TrueCondition,
    attr,
    conjoin,
    const,
)
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
    difference,
    empty,
    join,
    project,
    rel,
    rename,
    select,
    union,
)
from repro.algebra.evaluator import (
    EvalStats,
    EvaluationCache,
    StateVersion,
    evaluate,
    evaluate_all,
)
from repro.algebra.optimize import optimize
from repro.algebra.parser import parse, parse_condition
from repro.algebra.rewriting import base_relations, substitute
from repro.algebra.simplify import simplify
from repro.algebra.deltas import DeltaExpressions, derive_delta, new_value_expression

__all__ = [
    "And",
    "AttributeRef",
    "Comparison",
    "Condition",
    "Constant",
    "DeltaExpressions",
    "Difference",
    "Empty",
    "EvalStats",
    "EvaluationCache",
    "Expression",
    "StateVersion",
    "Join",
    "Not",
    "Operand",
    "Or",
    "Project",
    "RelationRef",
    "Rename",
    "Select",
    "TRUE",
    "TrueCondition",
    "Union",
    "attr",
    "base_relations",
    "conjoin",
    "const",
    "derive_delta",
    "difference",
    "empty",
    "evaluate",
    "evaluate_all",
    "join",
    "new_value_expression",
    "optimize",
    "parse",
    "parse_condition",
    "project",
    "rel",
    "rename",
    "select",
    "simplify",
    "substitute",
    "union",
]
