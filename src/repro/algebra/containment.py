"""Conjunctive-query containment for the PSJ fragment.

Definition 2.1 of the paper orders views by information content:
``U <= V`` iff ``U(d) subseteq V(d)`` for every state ``d``. On the
PSJ fragment with equality-only selection conditions, views are (unions of)
conjunctive queries and containment is decidable by the classical
homomorphism theorem (Chandra/Merlin; for unions, Sagiv/Yannakakis: a union
is contained in another iff every disjunct is contained in some disjunct).

This module compiles PSJ-with-union expressions to unions of conjunctive
queries and decides containment. Expressions outside the fragment
(differences, inequality predicates, negation) raise
:class:`UnsupportedFragment`; callers fall back to the empirical state-based
ordering in :mod:`repro.core.minimality`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.algebra.conditions import (
    And,
    AttributeRef,
    Comparison,
    Condition,
    Or,
    TrueCondition,
)
from repro.algebra.expressions import (
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
    Scope,
)


class UnsupportedFragment(ReproError):
    """The expression falls outside the union-of-conjunctive-queries fragment."""


class _Var:
    """A query variable (identity-based)."""

    __slots__ = ("label",)
    _counter = itertools.count()

    def __init__(self) -> None:
        self.label = next(_Var._counter)

    def __repr__(self) -> str:
        return f"?x{self.label}"


Term = object  # _Var or a constant value
Atom = Tuple[str, Tuple[Term, ...]]


class ConjunctiveQuery:
    """One conjunctive query: body atoms plus a head (attribute -> term)."""

    __slots__ = ("head", "atoms")

    def __init__(self, head: Mapping[str, Term], atoms: Sequence[Atom]) -> None:
        self.head: Dict[str, Term] = dict(head)
        self.atoms: Tuple[Atom, ...] = tuple(atoms)

    def variables(self) -> List[_Var]:
        """All distinct variables appearing in the head or body."""
        seen: Dict[int, _Var] = {}
        for _, terms in self.atoms:
            for term in terms:
                if isinstance(term, _Var):
                    seen[id(term)] = term
        for term in self.head.values():
            if isinstance(term, _Var):
                seen[id(term)] = term
        return list(seen.values())

    def substituted(self, mapping: Mapping[int, Term]) -> "ConjunctiveQuery":
        """This CQ with variables replaced per ``mapping`` (by ``id``)."""

        def sub(term: Term) -> Term:
            while isinstance(term, _Var) and id(term) in mapping:
                term = mapping[id(term)]
            return term

        head = {a: sub(t) for a, t in self.head.items()}
        atoms = tuple((r, tuple(sub(t) for t in ts)) for r, ts in self.atoms)
        return ConjunctiveQuery(head, atoms)

    def __repr__(self) -> str:
        head = ", ".join(f"{a}={t!r}" for a, t in sorted(self.head.items()))
        body = ", ".join(f"{r}({', '.join(map(repr, ts))})" for r, ts in self.atoms)
        return f"CQ[{head} :- {body}]"


def _unify(left: Term, right: Term) -> Optional[Dict[int, Term]]:
    """A substitution making ``left == right``, or ``None`` if impossible."""
    if isinstance(left, _Var):
        if left is right:
            return {}
        return {id(left): right}
    if isinstance(right, _Var):
        return {id(right): left}
    return {} if left == right else None


def _apply_condition(
    cq: ConjunctiveQuery, condition: Condition
) -> List[ConjunctiveQuery]:
    """Apply a selection condition, possibly splitting into several CQs."""
    if isinstance(condition, TrueCondition):
        return [cq]
    if isinstance(condition, And):
        current = [cq]
        for part in condition.parts:
            current = [out for c in current for out in _apply_condition(c, part)]
        return current
    if isinstance(condition, Or):
        return [out for part in condition.parts for out in _apply_condition(cq, part)]
    if isinstance(condition, Comparison) and condition.op == "=":
        def term_of(operand) -> Term:
            if isinstance(operand, AttributeRef):
                if operand.name not in cq.head:
                    raise UnsupportedFragment(
                        f"condition attribute {operand.name!r} not in scope of CQ head"
                    )
                return cq.head[operand.name]
            return operand.value  # Constant

        mapping = _unify(term_of(condition.left), term_of(condition.right))
        if mapping is None:
            return []  # unsatisfiable disjunct
        return [cq.substituted(mapping)]
    raise UnsupportedFragment(f"condition {condition} is outside the CQ fragment")


def to_union_of_cqs(expression: Expression, scope: Scope) -> List[ConjunctiveQuery]:
    """Compile a PSJ-with-union expression into a union of CQs.

    Raises :class:`UnsupportedFragment` for differences, renames into
    colliding names, or non-equality conditions.
    """
    if isinstance(expression, RelationRef):
        attrs = expression.attributes(scope)
        head = {a: _Var() for a in attrs}
        atom: Atom = (expression.name, tuple(head[a] for a in attrs))
        return [ConjunctiveQuery(head, [atom])]

    if isinstance(expression, Empty):
        return []

    if isinstance(expression, Project):
        out = []
        for cq in to_union_of_cqs(expression.child, scope):
            out.append(
                ConjunctiveQuery({a: cq.head[a] for a in expression.attrs}, cq.atoms)
            )
        return out

    if isinstance(expression, Select):
        out = []
        for cq in to_union_of_cqs(expression.child, scope):
            out.extend(_apply_condition(cq, expression.condition))
        return out

    if isinstance(expression, Join):
        lefts = to_union_of_cqs(expression.left, scope)
        rights = to_union_of_cqs(expression.right, scope)
        out = []
        for lcq in lefts:
            for rcq in rights:
                head = dict(lcq.head)
                for attr_name, term in rcq.head.items():
                    head.setdefault(attr_name, term)
                cq = ConjunctiveQuery(head, lcq.atoms + rcq.atoms)
                ok = True
                for attr_name in sorted(set(lcq.head) & set(rcq.head)):
                    # cq carries the left occurrence (head) and rcq the right
                    # one; both are kept substituted in lock-step so later
                    # unifications see earlier bindings.
                    mapping = _unify(cq.head[attr_name], rcq.head[attr_name])
                    if mapping is None:
                        ok = False
                        break
                    cq = cq.substituted(mapping)
                    rcq = rcq.substituted(mapping)
                if ok:
                    out.append(cq)
        return out

    if isinstance(expression, Union):
        return to_union_of_cqs(expression.left, scope) + to_union_of_cqs(
            expression.right, scope
        )

    if isinstance(expression, Rename):
        out = []
        for cq in to_union_of_cqs(expression.child, scope):
            head = {expression.mapping.get(a, a): t for a, t in cq.head.items()}
            out.append(ConjunctiveQuery(head, cq.atoms))
        return out

    raise UnsupportedFragment(
        f"{type(expression).__name__} is outside the union-of-CQs fragment"
    )


class _FrozenVar:
    """A frozen variable: a fresh constant for the canonical database."""

    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _FrozenVar) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("frozen", self.label))

    def __repr__(self) -> str:
        return f"<f{self.label}>"


def _freeze(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    mapping = {id(v): _FrozenVar(v.label) for v in cq.variables()}
    return cq.substituted(mapping)


def _cq_contained_in_cq(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """Homomorphism test: is ``sub subseteq sup``? (``sub`` is frozen here.)"""
    frozen = _freeze(sub)
    # Canonical database: the frozen atoms, grouped by relation.
    facts: Dict[str, List[Tuple[Term, ...]]] = {}
    for name, terms in frozen.atoms:
        facts.setdefault(name, []).append(terms)

    head_attrs = sorted(frozen.head)
    if sorted(sup.head) != head_attrs:
        return False
    target_head = tuple(frozen.head[a] for a in head_attrs)

    # Backtracking search for a homomorphism from sup's atoms into facts that
    # maps sup's head to the frozen head.
    binding: Dict[int, Term] = {}

    def bind_term(term: Term, value: Term) -> Optional[List[int]]:
        """Try to bind; returns list of newly bound var ids, or None."""
        if isinstance(term, _Var):
            if id(term) in binding:
                return [] if binding[id(term)] == value else None
            binding[id(term)] = value
            return [id(term)]
        return [] if term == value else None

    def unbind(ids: List[int]) -> None:
        for var_id in ids:
            del binding[var_id]

    def search(atom_index: int) -> bool:
        if atom_index == len(sup.atoms):
            # Check the head mapping.
            newly: List[int] = []
            ok = True
            for attr_name, want in zip(head_attrs, target_head):
                bound = bind_term(sup.head[attr_name], want)
                if bound is None:
                    ok = False
                    break
                newly.extend(bound)
            if ok:
                return True
            unbind(newly)
            return False
        name, terms = sup.atoms[atom_index]
        for fact in facts.get(name, ()):
            newly: List[int] = []
            ok = True
            for term, value in zip(terms, fact):
                bound = bind_term(term, value)
                if bound is None:
                    ok = False
                    break
                newly.extend(bound)
            if ok and search(atom_index + 1):
                return True
            unbind(newly)
        return False

    # Binding the head first prunes the search dramatically.
    head_newly: List[int] = []
    for attr_name, want in zip(head_attrs, target_head):
        bound = bind_term(sup.head[attr_name], want)
        if bound is None:
            unbind(head_newly)
            return False
        head_newly.extend(bound)
    found = search(0)
    unbind(head_newly)
    # `search` also re-verifies the head; binding it up front is only a
    # pruning aid, so the result stands either way.
    return found


def is_contained_in(
    sub: Expression, sup: Expression, scope: Scope
) -> bool:
    """Decide ``sub <= sup`` (Definition 2.1) on the union-of-CQs fragment.

    Raises :class:`UnsupportedFragment` if either expression cannot be
    compiled to a union of conjunctive queries.

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> scope = {"R": ("A", "B"), "S": ("B", "C")}
    >>> is_contained_in(parse("pi[A](R join S)"), parse("pi[A](R)"), scope)
    True
    >>> is_contained_in(parse("pi[A](R)"), parse("pi[A](R join S)"), scope)
    False
    """
    sub_cqs = to_union_of_cqs(sub, scope)
    sup_cqs = to_union_of_cqs(sup, scope)
    for sub_cq in sub_cqs:
        if not any(_cq_contained_in_cq(sub_cq, sup_cq) for sup_cq in sup_cqs):
            return False
    return True


def is_equivalent(left: Expression, right: Expression, scope: Scope) -> bool:
    """Decide view equivalence on the union-of-CQs fragment."""
    return is_contained_in(left, right, scope) and is_contained_in(right, left, scope)
