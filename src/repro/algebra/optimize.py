"""Heuristic logical optimization: selection pushdown, projection pruning.

Translated queries (``Q ∘ W⁻¹``) and derived maintenance expressions keep
whole inverse expressions under selections and projections; pushing those
down cuts intermediate results substantially (benchmark E6). All rules are
classical and sound for set semantics:

* ``sigma_c(l ⋈ r)``   — conjuncts referencing only one side move there;
* ``sigma_c(l ∪ r)``   — distributes to both sides;
* ``sigma_c(l − r)``   — distributes to both sides;
* ``sigma_c(pi_Z(e))`` — commutes inside (condition attrs are within Z);
* ``sigma_c(rho(e))``  — commutes inside with renamed condition;
* ``pi_Z(l ⋈ r)``      — each side keeps only Z plus the join attributes;
* ``pi_Z(l ∪ r)``      — distributes to both sides;
* ``pi_Z(sigma_c(e))`` — narrows ``e`` to Z plus the condition attributes.

A scope (name -> attributes) is required: the rules need subtree schemas.
The result is finished with :func:`~repro.algebra.simplify.simplify`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.algebra.conditions import (
    Condition,
    FalseCondition,
    TrueCondition,
    conjoin,
)
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    Rename,
    Scope,
    Select,
    Union,
)
from repro.algebra.simplify import simplify

_MAX_PASSES = 25


def optimize(expression: Expression, scope: Scope) -> Expression:
    """Push selections and prune projections, then simplify.

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> scope = {"R": ("a", "b"), "S": ("b", "c")}
    >>> print(optimize(parse("sigma[a = 1 and c = 2](R join S)"), scope))
    sigma[a = 1](R) join sigma[c = 2](S)
    """
    current = simplify(expression, scope)
    for _ in range(_MAX_PASSES):
        pushed = _rewrite(current, scope)
        pushed = simplify(pushed, scope)
        if pushed == current:
            return pushed
        current = pushed
    return current


def _rewrite(expr: Expression, scope: Scope) -> Expression:
    children = tuple(_rewrite(child, scope) for child in expr.children())
    if children != expr.children():
        expr = expr.with_children(children)

    if isinstance(expr, Select):
        return _push_select(expr, scope)
    if isinstance(expr, Project):
        return _push_project(expr, scope)
    return expr


def _split_conjuncts(
    condition: Condition, attrs: frozenset
) -> Tuple[List[Condition], List[Condition]]:
    """Partition conjuncts into (within ``attrs``, rest)."""
    inside: List[Condition] = []
    outside: List[Condition] = []
    for part in condition.conjuncts():
        if part.attributes() <= attrs:
            inside.append(part)
        else:
            outside.append(part)
    return inside, outside


def _push_select(expr: Select, scope: Scope) -> Expression:
    child = expr.child
    condition = expr.condition

    if isinstance(child, Join):
        left_attrs = child.left.attribute_set(scope)
        right_attrs = child.right.attribute_set(scope)
        left_parts, rest = _split_conjuncts(condition, left_attrs)
        right_parts, remaining = _split_conjuncts(conjoin(rest), right_attrs)
        if not left_parts and not right_parts:
            return expr
        new_left: Expression = child.left
        if left_parts:
            new_left = Select(child.left, conjoin(left_parts))
        new_right: Expression = child.right
        if right_parts:
            new_right = Select(child.right, conjoin(right_parts))
        out: Expression = Join(new_left, new_right)
        kept = conjoin(remaining)
        if not isinstance(kept, TrueCondition):
            out = Select(out, kept)
        return out

    if isinstance(child, Union):
        return Union(
            Select(child.left, condition), Select(child.right, condition)
        )

    if isinstance(child, Difference):
        # sigma_c(l - r) == sigma_c(l) - r  (and also == sigma_c(l) -
        # sigma_c(r)); subtracting the unfiltered right side is valid and
        # cheaper to push.
        return Difference(Select(child.left, condition), child.right)

    if isinstance(child, Project):
        return Project(Select(child.child, condition), child.attrs)

    if isinstance(child, Rename):
        inverse = {new: old for old, new in child.mapping.items()}
        return Rename(Select(child.child, condition.renamed(inverse)), child.mapping)

    return expr


def _narrow(side: Expression, keep: frozenset, scope: Scope) -> Expression:
    """``side`` projected onto ``keep ∩ attrs(side)`` (if that narrows it)."""
    attrs = side.attributes(scope)
    wanted = tuple(a for a in attrs if a in keep)
    if len(wanted) == len(attrs) or not wanted:
        return side
    return Project(side, wanted)


def _push_project(expr: Project, scope: Scope) -> Expression:
    child = expr.child
    target = frozenset(expr.attrs)

    if isinstance(child, Join):
        left_attrs = child.left.attribute_set(scope)
        right_attrs = child.right.attribute_set(scope)
        join_attrs = left_attrs & right_attrs
        keep = target | join_attrs
        new_left = _narrow(child.left, keep, scope)
        new_right = _narrow(child.right, keep, scope)
        if new_left == child.left and new_right == child.right:
            return expr
        return Project(Join(new_left, new_right), expr.attrs)

    if isinstance(child, Union):
        return Union(
            Project(child.left, expr.attrs), Project(child.right, expr.attrs)
        )

    if isinstance(child, Select):
        keep = target | child.condition.attributes()
        narrowed = _narrow(child.child, keep, scope)
        if narrowed == child.child:
            return expr
        return Project(Select(narrowed, child.condition), expr.attrs)

    return expr


def fuse_chains(expression: Expression, scope: Scope) -> Expression:
    """Collapse operator chains so one pass can execute each of them.

    The plan compiler's rewrite set (:mod:`repro.compiler.fuse`): applied
    bottom-up once, each rule is a sound set-semantics identity that turns
    an operator *chain* into a single node the compiled closures execute
    in one kernel call —

    * ``sigma_c2(sigma_c1(e))``  →  ``sigma_{c1 and c2}(e)``;
    * ``pi_Z2(pi_Z1(e))``        →  ``pi_Z2(e)`` (``Z2 ⊆ Z1`` by typing);
    * ``sigma_TRUE(e)`` → ``e``, ``sigma_FALSE(e)`` → ``∅``;
    * identity projections and renamings disappear;
    * the empty relation folds through every operator (``e ⋈ ∅ = ∅``,
      ``e ∪ ∅ = e``, ``e − ∅ = e``, ``∅ − e = ∅``, …) — this is what
      prunes dead branches out of compiled maintenance plans.

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> scope = {"R": ("a", "b")}
    >>> print(fuse_chains(parse("sigma[a = 1](sigma[b = 2](R))"), scope))
    sigma[b = 2 and a = 1](R)
    >>> print(fuse_chains(parse("pi[a](pi[a, b](R))"), scope))
    pi[a](R)
    """
    children = tuple(fuse_chains(child, scope) for child in expression.children())
    if children != expression.children():
        expression = expression.with_children(children)

    if isinstance(expression, Select):
        child = expression.child
        if isinstance(child, Empty):
            return child
        if isinstance(expression.condition, FalseCondition):
            return Empty(expression.attributes(scope))
        if isinstance(expression.condition, TrueCondition):
            return child
        if isinstance(child, Select):
            merged = conjoin([child.condition, expression.condition])
            if isinstance(merged, FalseCondition):
                return Empty(expression.attributes(scope))
            return Select(child.child, merged)
        return expression

    if isinstance(expression, Project):
        child = expression.child
        if isinstance(child, Empty):
            return Empty(expression.attrs)
        if isinstance(child, Project):
            return Project(child.child, expression.attrs)
        if expression.attrs == child.attributes(scope):
            return child
        return expression

    if isinstance(expression, Join):
        if isinstance(expression.left, Empty) or isinstance(expression.right, Empty):
            return Empty(expression.attributes(scope))
        return expression

    if isinstance(expression, Union):
        if isinstance(expression.left, Empty):
            return expression.right
        if isinstance(expression.right, Empty):
            return expression.left
        return expression

    if isinstance(expression, Difference):
        if isinstance(expression.left, Empty):
            return expression.left
        if isinstance(expression.right, Empty):
            return expression.left
        return expression

    if isinstance(expression, Rename):
        if isinstance(expression.child, Empty):
            return Empty(expression.attributes(scope))
        if all(old == new for old, new in expression.mapping.items()):
            return expression.child
        return expression

    return expression
