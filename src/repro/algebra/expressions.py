"""Relational algebra expression trees.

An :class:`Expression` is an immutable tree whose leaves are
:class:`RelationRef` (a name resolved against whatever state the expression
is evaluated on — a source database, a warehouse state, or a mixed state with
delta relations) and :class:`Empty` (a constant empty relation with explicit
schema, used by the simplifier and by complements that constraints prove
empty, as in Example 2.4 of the paper).

Schema computation (:meth:`Expression.attributes`) is relative to a *scope*:
a mapping from relation names to attribute tuples, e.g.
``{"Sale": ("item", "clerk")}``. A :class:`~repro.schema.catalog.Catalog` can
be turned into a scope with :func:`scope_of`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.errors import ExpressionError
from repro.algebra.conditions import Condition, TrueCondition

Scope = Mapping[str, Tuple[str, ...]]


def scope_of(source: object) -> Dict[str, Tuple[str, ...]]:
    """Build a scope (name -> attribute tuple) from common containers.

    Accepts a :class:`~repro.schema.catalog.Catalog`, a mapping of names to
    :class:`~repro.storage.relation.Relation` instances (a state), or a
    mapping of names to attribute sequences.
    """
    if hasattr(source, "schemas"):  # Catalog
        return {s.name: s.attributes for s in source.schemas()}  # type: ignore[attr-defined]
    if isinstance(source, Mapping):
        out: Dict[str, Tuple[str, ...]] = {}
        for name, value in source.items():
            if hasattr(value, "attributes"):
                out[name] = tuple(value.attributes)  # Relation or schema
            else:
                out[name] = tuple(value)
        return out
    raise ExpressionError(f"cannot derive a scope from {source!r}")


class Expression:
    """Base class of relational algebra expressions."""

    __slots__ = ()

    # -- structure ------------------------------------------------------

    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError

    def with_children(self, children: Sequence["Expression"]) -> "Expression":
        """A copy of this node over new children (same arity)."""
        raise NotImplementedError

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expression):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    # -- schema ----------------------------------------------------------

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        """The output attribute tuple of this expression under ``scope``.

        Raises :class:`~repro.errors.ExpressionError` for badly-typed trees
        (union of different attribute sets, projection onto foreign
        attributes, selection over missing attributes, ...).
        """
        raise NotImplementedError

    def attribute_set(self, scope: Scope) -> FrozenSet[str]:
        """The output attributes as a frozen set."""
        return frozenset(self.attributes(scope))

    # -- traversal helpers ------------------------------------------------

    def relation_names(self) -> FrozenSet[str]:
        """Names of all :class:`RelationRef` leaves in this tree."""
        names = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, RelationRef):
                names.add(node.name)
            stack.extend(node.children())
        return frozenset(names)

    def walk(self) -> Iterable["Expression"]:
        """All nodes of the tree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Number of nodes in the tree."""
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self}>"


class RelationRef(Expression):
    """A leaf referring to a named relation in the evaluation state."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ExpressionError(f"relation name must be a non-empty string: {name!r}")
        self.name = name

    def children(self) -> Tuple[Expression, ...]:
        return ()

    def with_children(self, children: Sequence[Expression]) -> "RelationRef":
        if children:
            raise ExpressionError("RelationRef has no children")
        return self

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        if self.name not in scope:
            raise ExpressionError(f"relation {self.name!r} not in scope")
        return tuple(scope[self.name])

    def _key(self) -> tuple:
        return ("ref", self.name)

    def __str__(self) -> str:
        return self.name


class Empty(Expression):
    """A constant empty relation with an explicit attribute tuple."""

    __slots__ = ("attrs",)

    def __init__(self, attributes: Sequence[str]) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in Empty schema {attrs}")
        if not attrs:
            raise ExpressionError("Empty requires at least one attribute")
        self.attrs = attrs

    def children(self) -> Tuple[Expression, ...]:
        return ()

    def with_children(self, children: Sequence[Expression]) -> "Empty":
        if children:
            raise ExpressionError("Empty has no children")
        return self

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        return self.attrs

    def _key(self) -> tuple:
        return ("empty", frozenset(self.attrs))

    def __str__(self) -> str:
        return f"empty[{', '.join(self.attrs)}]"


class Project(Expression):
    """Projection ``pi_attrs(child)`` (set semantics)."""

    __slots__ = ("child", "attrs")

    def __init__(self, child: Expression, attributes: Sequence[str]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise ExpressionError("projection requires at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in projection {attrs}")
        self.child = child
        self.attrs = attrs

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Project":
        (child,) = children
        return Project(child, self.attrs)

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        child_attrs = set(self.child.attributes(scope))
        missing = set(self.attrs) - child_attrs
        if missing:
            raise ExpressionError(
                f"projection onto {sorted(missing)} not possible: child of "
                f"{self} only has {sorted(child_attrs)}"
            )
        return self.attrs

    def _key(self) -> tuple:
        return ("project", frozenset(self.attrs), self.child._key())

    def __str__(self) -> str:
        return f"pi[{', '.join(self.attrs)}]({self.child})"


class Select(Expression):
    """Selection ``sigma_condition(child)``."""

    __slots__ = ("child", "condition")

    def __init__(self, child: Expression, condition: Condition) -> None:
        if not isinstance(condition, Condition):
            raise ExpressionError(f"selection condition must be a Condition: {condition!r}")
        self.child = child
        self.condition = condition

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Select":
        (child,) = children
        return Select(child, self.condition)

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        child_attrs = self.child.attributes(scope)
        missing = self.condition.attributes() - set(child_attrs)
        if missing:
            raise ExpressionError(
                f"selection condition mentions {sorted(missing)}, not attributes "
                f"of {self.child}"
            )
        return child_attrs

    def _key(self) -> tuple:
        return ("select", self.condition._key(), self.child._key())

    def __str__(self) -> str:
        return f"sigma[{self.condition}]({self.child})"


class Join(Expression):
    """Natural join of two expressions over shared attribute names."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "Join":
        left, right = children
        return Join(left, right)

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        left_attrs = self.left.attributes(scope)
        right_attrs = self.right.attributes(scope)
        left_set = set(left_attrs)
        return left_attrs + tuple(a for a in right_attrs if a not in left_set)

    def _key(self) -> tuple:
        # Natural join is associative, commutative, and idempotent under set
        # semantics, so equality flattens the join tree into the set of its
        # non-join operands (this also makes `parse(str(e)) == e` hold for
        # right-nested joins, which print flat).
        parts = []
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Join):
                stack.extend((node.left, node.right))
            else:
                parts.append(node._key())
        return ("join", frozenset(parts))

    def __str__(self) -> str:
        def wrap(side: Expression) -> str:
            if isinstance(side, (Union, Difference)):
                return f"({side})"
            return str(side)

        return f"{wrap(self.left)} join {wrap(self.right)}"


class Union(Expression):
    """Set union; both sides must have the same attribute set."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "Union":
        left, right = children
        return Union(left, right)

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        left_attrs = self.left.attributes(scope)
        right_attrs = self.right.attributes(scope)
        if set(left_attrs) != set(right_attrs):
            raise ExpressionError(
                f"union of incompatible schemata {left_attrs} vs {right_attrs}"
            )
        return left_attrs

    def _key(self) -> tuple:
        # Union is associative, commutative, and idempotent: flatten, like
        # Join above.
        parts = []
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Union):
                stack.extend((node.left, node.right))
            else:
                parts.append(node._key())
        return ("union", frozenset(parts))

    def __str__(self) -> str:
        def wrap(side: Expression) -> str:
            if isinstance(side, Difference):
                return f"({side})"
            return str(side)

        return f"{wrap(self.left)} union {wrap(self.right)}"


class Difference(Expression):
    """Set difference ``left minus right``; attribute sets must agree."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expression]) -> "Difference":
        left, right = children
        return Difference(left, right)

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        left_attrs = self.left.attributes(scope)
        right_attrs = self.right.attributes(scope)
        if set(left_attrs) != set(right_attrs):
            raise ExpressionError(
                f"difference of incompatible schemata {left_attrs} vs {right_attrs}"
            )
        return left_attrs

    def _key(self) -> tuple:
        return ("difference", self.left._key(), self.right._key())

    def __str__(self) -> str:
        def wrap(side: Expression) -> str:
            if isinstance(side, (Union, Difference)):
                return f"({side})"
            return str(side)

        return f"{wrap(self.left)} minus {wrap(self.right)}"


class Rename(Expression):
    """Attribute renaming ``rho_{old->new}(child)``.

    Realizes footnote 3 of the paper: general inclusion dependencies are
    handled "by a suitable application of the renaming operator".
    """

    __slots__ = ("child", "mapping")

    def __init__(self, child: Expression, mapping: Mapping[str, str]) -> None:
        cleaned = {old: new for old, new in mapping.items() if old != new}
        if not cleaned:
            raise ExpressionError("rename requires at least one changed attribute")
        self.child = child
        self.mapping = dict(cleaned)

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expression]) -> "Rename":
        (child,) = children
        return Rename(child, self.mapping)

    def attributes(self, scope: Scope) -> Tuple[str, ...]:
        child_attrs = self.child.attributes(scope)
        unknown = set(self.mapping) - set(child_attrs)
        if unknown:
            raise ExpressionError(
                f"rename of {sorted(unknown)}: not attributes of {self.child}"
            )
        out = tuple(self.mapping.get(a, a) for a in child_attrs)
        if len(set(out)) != len(out):
            raise ExpressionError(f"rename {self.mapping} collides: {out}")
        return out

    def _key(self) -> tuple:
        return ("rename", tuple(sorted(self.mapping.items())), self.child._key())

    def __str__(self) -> str:
        pairs = ", ".join(
            f"{old} -> {new}" for old, new in sorted(self.mapping.items())
        )
        return f"rho[{pairs}]({self.child})"


# ----------------------------------------------------------------------
# Builder helpers
# ----------------------------------------------------------------------


def rel(name: str) -> RelationRef:
    """A reference to the relation named ``name``."""
    return RelationRef(name)


def empty(attributes: Sequence[str]) -> Empty:
    """The constant empty relation over ``attributes``."""
    return Empty(attributes)


def project(child: Expression, attributes: Sequence[str]) -> Project:
    """``pi_attributes(child)``."""
    return Project(child, attributes)


def select(child: Expression, condition: Condition) -> Expression:
    """``sigma_condition(child)``; a TRUE condition returns ``child``."""
    if isinstance(condition, TrueCondition):
        return child
    return Select(child, condition)


def join(first: Expression, *rest: Expression) -> Expression:
    """The natural join of one or more expressions (left-deep)."""
    out = first
    for nxt in rest:
        out = Join(out, nxt)
    return out


def union(first: Expression, *rest: Expression) -> Expression:
    """The union of one or more expressions (left-deep)."""
    out = first
    for nxt in rest:
        out = Union(out, nxt)
    return out


def difference(left: Expression, right: Expression) -> Difference:
    """``left minus right``."""
    return Difference(left, right)


def rename(child: Expression, mapping: Mapping[str, str]) -> Expression:
    """``rho_mapping(child)``; an identity mapping returns ``child``."""
    if all(old == new for old, new in mapping.items()):
        return child
    return Rename(child, mapping)
