"""Evaluation of algebra expressions against a state.

A *state* is any mapping from relation names to
:class:`~repro.storage.relation.Relation` instances — a source database
snapshot, a warehouse state, or a mixed state that additionally binds delta
relations during incremental maintenance. Evaluation memoizes common
sub-expressions (structural identity) within one call, which matters because
inverse expressions (Equation (4) of the paper) share large sub-trees.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import EvaluationError
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.storage.relation import Relation

State = Mapping[str, Relation]


def evaluate(
    expression: Expression,
    state: State,
    cache: Optional[Dict[tuple, Relation]] = None,
) -> Relation:
    """Evaluate ``expression`` over ``state`` and return the result relation.

    Parameters
    ----------
    expression:
        The expression to evaluate.
    state:
        Mapping from relation names to relation instances. All
        :class:`RelationRef` leaves must be bound here.
    cache:
        Optional memo table, keyed by structural expression keys. Pass the
        same dict across several :func:`evaluate` calls over the *same state*
        to share work (the warehouse refresh engine does this).

    Examples
    --------
    >>> from repro.algebra import rel, join
    >>> sale = Relation(("item", "clerk"), [("TV", "Mary")])
    >>> emp = Relation(("clerk", "age"), [("Mary", 23)])
    >>> evaluate(join(rel("Sale"), rel("Emp")), {"Sale": sale, "Emp": emp}).to_set()
    frozenset({('TV', 'Mary', 23)})
    """
    memo: Dict[tuple, Relation] = cache if cache is not None else {}
    return _eval(expression, state, memo)


def _eval(expr: Expression, state: State, memo: Dict[tuple, Relation]) -> Relation:
    key = expr._key()
    hit = memo.get(key)
    if hit is not None:
        return hit
    result = _eval_node(expr, state, memo)
    memo[key] = result
    return result


_SCOPE_KEY = ("__scope__",)


def _scope(state: State, memo: Dict[tuple, Relation]):
    scope = memo.get(_SCOPE_KEY)
    if scope is None:
        scope = {name: relation.attributes for name, relation in state.items()}
        memo[_SCOPE_KEY] = scope  # type: ignore[assignment]
    return scope


def _eval_node(expr: Expression, state: State, memo: Dict[tuple, Relation]) -> Relation:
    if isinstance(expr, RelationRef):
        relation = state.get(expr.name)
        if relation is None:
            raise EvaluationError(
                f"relation {expr.name!r} is not bound in the evaluation state "
                f"(bound: {sorted(state)})"
            )
        return relation

    if isinstance(expr, Empty):
        return Relation.empty(expr.attrs)

    if isinstance(expr, Project):
        return _eval(expr.child, state, memo).project(expr.attrs)

    if isinstance(expr, Select):
        child = _eval(expr.child, state, memo)
        predicate = expr.condition.compile(child.attributes)
        return child.select(predicate)

    if isinstance(expr, Join):
        # Empty short-circuit: if one side is empty, the join is empty and
        # the other side need not be evaluated (this is what makes the
        # delete-branch of maintenance expressions free on insert-only
        # updates — the delta relation binds to the empty set).
        left = _eval(expr.left, state, memo)
        if not left:
            return Relation.empty(expr.attributes(_scope(state, memo)))
        right = _eval(expr.right, state, memo)
        if not right:
            return Relation.empty(expr.attributes(_scope(state, memo)))
        return left.natural_join(right)

    if isinstance(expr, Union):
        left = _eval(expr.left, state, memo)
        right = _eval(expr.right, state, memo)
        return left.union(right)

    if isinstance(expr, Difference):
        left = _eval(expr.left, state, memo)
        if not left:
            return left  # empty minus anything is empty: skip the right side
        right = _eval(expr.right, state, memo)
        return left.difference(right)

    if isinstance(expr, Rename):
        return _eval(expr.child, state, memo).rename(expr.mapping)

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")


def evaluate_all(
    expressions: Mapping[str, Expression], state: State
) -> Dict[str, Relation]:
    """Evaluate several named expressions over one state, sharing the memo.

    Returns ``{name: result}`` in input order.
    """
    memo: Dict[tuple, Relation] = {}
    return {name: _eval(expr, state, memo) for name, expr in expressions.items()}
