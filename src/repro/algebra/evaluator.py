"""Evaluation of algebra expressions against a state.

A *state* is any mapping from relation names to
:class:`~repro.storage.relation.Relation` instances — a source database
snapshot, a warehouse state, or a mixed state that additionally binds delta
relations during incremental maintenance. Evaluation memoizes common
sub-expressions (structural identity) within one call, which matters because
inverse expressions (Equation (4) of the paper) share large sub-trees.

Beyond the per-call memo, two performance layers live here:

* an :class:`EvaluationCache` — a cross-update memo keyed by expression
  structure and validated against a :class:`StateVersion` (the exact
  relation instances each sub-expression read). Because relations are
  immutable, instance identity is a sound version check: a cached result is
  reusable under any state that binds the same objects for every relation
  the sub-expression references. The maintenance engine keeps unchanged
  relations *object-identical* across refreshes, so sub-trees untouched by
  an update return cached results and only delta-touched sub-trees
  re-evaluate;
* join *fast paths* — ``pi_Z(L join R)`` with ``Z`` inside one operand's
  schema evaluates as a semi-join (never materializing the wide join), and
  the complement shape ``R minus pi_{attr(R)}(R join S)`` of Proposition 2.2
  evaluates as a hash anti-join without computing the join at all.

:class:`EvalStats` counts what happened (nodes evaluated, cache hits and
misses, rows joined, fast-path uses); the warehouse runtime and the
benchmarks read it. It doubles as the hot-path facade of the metrics
layer: the warehouse folds each refresh's snapshot into its
:class:`~repro.obs.metrics.MetricsRegistry` under ``evaluator.*`` names.

For *per-operator* visibility, :func:`evaluate` additionally accepts a
:class:`~repro.obs.trace.Tracer`: every node actually computed gets a span
(``join``/``project``/``read``/...) annotated with row counts, index hits,
cross-update cache hits, and fast-path firings. ``tracer=None`` (the
default) takes a branch-free path that allocates no spans at all.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union as TypingUnion

from repro.errors import EvaluationError
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.storage.engine import ENGINE_COLUMNAR, resolve_engine
from repro.storage.relation import Relation

State = Mapping[str, Relation]


class EvalStats:
    """Counters describing one (or several) evaluation passes.

    Attributes
    ----------
    nodes_evaluated:
        Expression nodes actually computed (memo and cache hits excluded).
    memo_hits:
        Per-call memo hits (shared sub-trees within one evaluation).
    cache_hits / cache_misses:
        Cross-update :class:`EvaluationCache` hits and misses.
    joins / rows_joined:
        Natural joins materialized and the total rows they produced.
    semijoin_fastpaths / antijoin_fastpaths:
        Uses of the ``pi``-over-join semi-join path and the complement-shape
        anti-join path.
    """

    __slots__ = (
        "nodes_evaluated",
        "memo_hits",
        "cache_hits",
        "cache_misses",
        "joins",
        "rows_joined",
        "semijoin_fastpaths",
        "antijoin_fastpaths",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.nodes_evaluated = 0
        self.memo_hits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.joins = 0
        self.rows_joined = 0
        self.semijoin_fastpaths = 0
        self.antijoin_fastpaths = 0

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Add ``other``'s counters into this one (returns self)."""
        for field in self.__slots__:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict."""
        return {field: getattr(self, field) for field in self.__slots__}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"EvalStats({parts or 'all zero'})"


class StateVersion:
    """The exact relation instances a computation read, by name.

    Relations are immutable, so *instance identity* versions a binding: a
    result computed from ``{name: relation}`` bindings stays valid for any
    state that binds the very same objects. The maintenance engine keeps
    unchanged relations object-identical across refreshes precisely so these
    checks succeed.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, Optional[Relation]]) -> None:
        self._bindings = dict(bindings)

    @classmethod
    def capture(cls, state: State, names: Optional[Iterable[str]] = None) -> "StateVersion":
        """Snapshot ``state``'s bindings for ``names`` (default: all names)."""
        if names is None:
            return cls(dict(state))
        return cls({name: state.get(name) for name in names})

    def matches(self, state: State) -> bool:
        """Whether ``state`` binds the same instance for every captured name."""
        get = state.get
        return all(get(name) is relation for name, relation in self._bindings.items())

    def names(self) -> FrozenSet[str]:
        """The captured relation names."""
        return frozenset(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        return f"StateVersion({sorted(self._bindings)})"


class EvaluationCache:
    """A cross-update memo: structural keys validated by :class:`StateVersion`.

    Unlike the plain per-call memo dict, an :class:`EvaluationCache` may be
    shared across evaluations over *different* states: each entry records
    which relation instances it was computed from, and is served only when
    the current state still binds those exact objects. Entries that fail
    validation are evicted lazily.

    The warehouse runtime keeps one instance for its whole life, so refresh
    N+1 reuses every sub-expression of refresh N whose inputs the update did
    not touch.
    """

    __slots__ = ("_entries", "_footprints")

    def __init__(self) -> None:
        self._entries: Dict[tuple, Tuple[Relation, StateVersion]] = {}
        # expression key -> referenced relation names, kept across evictions
        # so re-stores after an update skip the tree walk.
        self._footprints: Dict[tuple, FrozenSet[str]] = {}

    def lookup(self, key: tuple, state: State) -> Optional[Relation]:
        """The cached relation for ``key`` if still valid under ``state``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        result, version = entry
        if version.matches(state):
            return result
        del self._entries[key]
        return None

    def store(
        self, key: tuple, state: State, expression: Expression, result: Relation
    ) -> None:
        """Record ``result`` for ``key``, versioned by its referenced names."""
        footprint = self._footprints.get(key)
        if footprint is None:
            footprint = expression.relation_names()
            self._footprints[key] = footprint
        self._entries[key] = (result, StateVersion.capture(state, footprint))

    def invalidate(self, names: Optional[Iterable[str]] = None) -> None:
        """Drop entries touching ``names`` (default: everything)."""
        if names is None:
            self._entries.clear()
            return
        doomed = frozenset(names)
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if not (self._footprints.get(key, frozenset()) & doomed)
        }

    def clear(self) -> None:
        """Drop every entry (footprint memos survive; they are state-free)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"EvaluationCache({len(self._entries)} entries)"


Cache = TypingUnion[Dict[tuple, Relation], EvaluationCache]

_SCOPE_KEY = ("__scope__",)
_STATE_KEY = ("__state_version__",)


class _Context:
    """Per-``evaluate``-call plumbing: memo, optional cache, stats, flags."""

    __slots__ = ("state", "memo", "cache", "stats", "fastpath", "tracer")

    def __init__(
        self,
        state: State,
        memo: Dict[tuple, object],
        cache: Optional[EvaluationCache],
        stats: EvalStats,
        fastpath: bool,
        tracer=None,
    ) -> None:
        self.state = state
        self.memo = memo
        self.cache = cache
        self.stats = stats
        self.fastpath = fastpath
        self.tracer = tracer


def evaluate(
    expression: Expression,
    state: State,
    cache: Optional[Cache] = None,
    *,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    tracer=None,
    engine: Optional[str] = None,
) -> Relation:
    """Evaluate ``expression`` over ``state`` and return the result relation.

    Parameters
    ----------
    expression:
        The expression to evaluate.
    state:
        Mapping from relation names to relation instances. All
        :class:`RelationRef` leaves must be bound here.
    cache:
        Optional memo. A plain ``dict`` is the classic per-state memo: pass
        the same dict across several :func:`evaluate` calls over the *same
        state* to share work. Reusing a dict after the state changed is a
        correctness hazard (it would silently return stale relations), so it
        raises :class:`~repro.errors.EvaluationError`. To share results
        *across* states pass an :class:`EvaluationCache` instead, which
        validates every entry against the current state.
    stats:
        Optional :class:`EvalStats` to increment (shared across calls).
    fastpath:
        Enable the semi-join / anti-join evaluation fast paths (on by
        default; the differential oracle turns it off for its reference
        tracks).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`. When given, every node
        actually computed opens a span annotated with operator kind and
        row counts; cross-update cache hits appear as zero-work spans with
        ``cached=True``. ``None`` (the default) disables tracing with no
        per-node overhead.
    engine:
        Physical execution engine: ``"tuple"`` (the frozenset path below),
        ``"columnar"`` (batch kernels over dictionary-coded columns, see
        :mod:`repro.algebra.columnar_eval`), or ``None`` to follow the
        process default (the ``REPRO_ENGINE`` environment variable).

    Examples
    --------
    >>> from repro.algebra import rel, join
    >>> sale = Relation(("item", "clerk"), [("TV", "Mary")])
    >>> emp = Relation(("clerk", "age"), [("Mary", 23)])
    >>> evaluate(join(rel("Sale"), rel("Emp")), {"Sale": sale, "Emp": emp}).to_set()
    frozenset({('TV', 'Mary', 23)})
    """
    if resolve_engine(engine) == ENGINE_COLUMNAR:
        from repro.algebra.columnar_eval import evaluate_columnar

        return evaluate_columnar(
            expression, state, cache, stats=stats, fastpath=fastpath, tracer=tracer
        )
    if stats is None:
        stats = EvalStats()
    if isinstance(cache, EvaluationCache):
        ctx = _Context(state, {}, cache, stats, fastpath, tracer)
    else:
        memo: Dict[tuple, object] = cache if cache is not None else {}
        _check_memo_state(memo, state)
        ctx = _Context(state, memo, None, stats, fastpath, tracer)
    return _eval(expression, ctx)


def _check_memo_state(memo: Dict[tuple, object], state: State) -> None:
    """Guard dict memos against reuse across states (satellite of PR #1).

    The first call stamps the memo with a :class:`StateVersion` of the full
    state; later calls verify it. A changed binding means every cached entry
    is suspect, so the only safe behavior is to fail loudly.
    """
    version = memo.get(_STATE_KEY)
    if version is None:
        memo[_STATE_KEY] = StateVersion.capture(state)
        return
    if not isinstance(version, StateVersion) or not version.matches(state):
        raise EvaluationError(
            "evaluation cache was populated against a different state; "
            "pass a fresh dict per state, or an EvaluationCache to share "
            "results across states safely"
        )


#: Span name per expression node type (tracing only).
_SPAN_NAMES = {
    RelationRef: "read",
    Empty: "empty",
    Project: "project",
    Select: "select",
    Join: "join",
    Union: "union",
    Difference: "difference",
    Rename: "rename",
}


def _eval(expr: Expression, ctx: _Context) -> Relation:
    if ctx.tracer is not None:
        return _eval_traced(expr, ctx)
    key = expr._key()
    hit = ctx.memo.get(key)
    if hit is not None:
        ctx.stats.memo_hits += 1
        return hit  # type: ignore[return-value]
    if ctx.cache is not None:
        cached = ctx.cache.lookup(key, ctx.state)
        if cached is not None:
            ctx.stats.cache_hits += 1
            ctx.memo[key] = cached
            return cached
        ctx.stats.cache_misses += 1
    result = _eval_node(expr, ctx)
    ctx.stats.nodes_evaluated += 1
    ctx.memo[key] = result
    if ctx.cache is not None:
        ctx.cache.store(key, ctx.state, expr, result)
    return result


def _eval_traced(expr: Expression, ctx: _Context) -> Relation:
    """The tracing twin of :func:`_eval`: same logic, plus per-node spans.

    Kept separate so the default ``tracer=None`` path stays byte-for-byte
    the PR 1 hot path (no extra branches inside the loop, no allocations).
    Memo hits within one call are silent (they would dominate the trace);
    cross-update cache hits get a zero-work span marked ``cached=True``.
    """
    key = expr._key()
    hit = ctx.memo.get(key)
    if hit is not None:
        ctx.stats.memo_hits += 1
        return hit  # type: ignore[return-value]
    name = _SPAN_NAMES.get(type(expr), "node")
    if ctx.cache is not None:
        cached = ctx.cache.lookup(key, ctx.state)
        if cached is not None:
            ctx.stats.cache_hits += 1
            ctx.memo[key] = cached
            with ctx.tracer.span(name, cached=True, rows_out=len(cached)) as span:
                if isinstance(expr, RelationRef):
                    span.attributes["relation"] = expr.name
            return cached
        ctx.stats.cache_misses += 1
    with ctx.tracer.span(name) as span:
        result = _eval_node(expr, ctx)
        span.attributes["rows_out"] = len(result)
        if isinstance(expr, RelationRef):
            span.attributes["relation"] = expr.name
    ctx.stats.nodes_evaluated += 1
    ctx.memo[key] = result
    if ctx.cache is not None:
        ctx.cache.store(key, ctx.state, expr, result)
    return result


def _scope(ctx: _Context):
    scope = ctx.memo.get(_SCOPE_KEY)
    if scope is None:
        scope = {name: relation.attributes for name, relation in ctx.state.items()}
        ctx.memo[_SCOPE_KEY] = scope
    return scope


def _join_operands(expr: Join) -> Tuple[Expression, ...]:
    """The flattened operands of a (possibly nested) join tree."""
    parts = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Join):
            stack.extend((node.right, node.left))
        else:
            parts.append(node)
    return tuple(reversed(parts))


def _natural_join(left: Relation, right: Relation, ctx: _Context) -> Relation:
    if ctx.tracer is not None:
        shared = left.attribute_set & right.attribute_set
        ctx.tracer.annotate(
            rows_in_left=len(left),
            rows_in_right=len(right),
            index_hit=left.has_join_index(shared) or right.has_join_index(shared),
        )
    result = left.natural_join(right)
    ctx.stats.joins += 1
    ctx.stats.rows_joined += len(result)
    return result


def _eval_project(expr: Project, ctx: _Context) -> Relation:
    child = expr.child
    if not (ctx.fastpath and isinstance(child, Join)):
        return _eval(child, ctx).project(expr.attrs)
    # pi_Z(L join R) with Z inside one operand's schema is a semi-join:
    # pi_Z(L ⋉ R). The wide join result is never materialized. Skipped when
    # the join itself is already memoized (projection is then cheaper).
    if child._key() in ctx.memo:
        return _eval(child, ctx).project(expr.attrs)
    left = _eval(child.left, ctx)
    if not left:
        return Relation.empty(expr.attrs)
    right = _eval(child.right, ctx)
    if not right:
        return Relation.empty(expr.attrs)
    target = frozenset(expr.attrs)
    if target <= left.attribute_set:
        ctx.stats.semijoin_fastpaths += 1
        if ctx.tracer is not None:
            ctx.tracer.annotate(fastpath="semi_join")
        return left.semi_join(right).project(expr.attrs)
    if target <= right.attribute_set:
        ctx.stats.semijoin_fastpaths += 1
        if ctx.tracer is not None:
            ctx.tracer.annotate(fastpath="semi_join")
        return right.semi_join(left).project(expr.attrs)
    # No fast path applies: evaluate the join through _eval so the result is
    # memoized for other sub-trees that share it.
    return _eval(child, ctx).project(expr.attrs)


def _eval_difference(expr: Difference, ctx: _Context, left: Relation) -> Relation:
    right = expr.right
    if (
        ctx.fastpath
        and isinstance(right, Project)
        and isinstance(right.child, Join)
        and right._key() not in ctx.memo
        and frozenset(right.attrs) == left.attribute_set
    ):
        # The Proposition 2.2 complement shape R - pi_{attr(R)}(R join S):
        # equals the hash anti-join R ▷ S, computed without evaluating the
        # join or the projection. Restricted to two-operand joins — with
        # more operands, joining "the rest" could introduce a cross product
        # the original tree order avoids.
        operands = _join_operands(right.child)
        if len(operands) == 2:
            left_key = expr.left._key()
            for index, operand in enumerate(operands):
                if operand._key() == left_key:
                    other = _eval(operands[1 - index], ctx)
                    ctx.stats.antijoin_fastpaths += 1
                    if ctx.tracer is not None:
                        shared = left.attribute_set & other.attribute_set
                        ctx.tracer.annotate(
                            fastpath="anti_join",
                            index_hit=other.has_join_index(shared),
                        )
                    return left.anti_join(other)
    return left.difference(_eval(right, ctx))


def _eval_node(expr: Expression, ctx: _Context) -> Relation:
    if isinstance(expr, RelationRef):
        relation = ctx.state.get(expr.name)
        if relation is None:
            raise EvaluationError(
                f"relation {expr.name!r} is not bound in the evaluation state "
                f"(bound: {sorted(ctx.state)})"
            )
        return relation

    if isinstance(expr, Empty):
        return Relation.empty(expr.attrs)

    if isinstance(expr, Project):
        return _eval_project(expr, ctx)

    if isinstance(expr, Select):
        child = _eval(expr.child, ctx)
        predicate = expr.condition.compile(child.attributes)
        return child.select(predicate)

    if isinstance(expr, Join):
        # Empty short-circuit: if one side is empty, the join is empty and
        # the other side need not be evaluated (this is what makes the
        # delete-branch of maintenance expressions free on insert-only
        # updates — the delta relation binds to the empty set).
        left = _eval(expr.left, ctx)
        if not left:
            return Relation.empty(expr.attributes(_scope(ctx)))
        right = _eval(expr.right, ctx)
        if not right:
            return Relation.empty(expr.attributes(_scope(ctx)))
        return _natural_join(left, right, ctx)

    if isinstance(expr, Union):
        left = _eval(expr.left, ctx)
        right = _eval(expr.right, ctx)
        return left.union(right)

    if isinstance(expr, Difference):
        left = _eval(expr.left, ctx)
        if not left:
            return left  # empty minus anything is empty: skip the right side
        return _eval_difference(expr, ctx, left)

    if isinstance(expr, Rename):
        return _eval(expr.child, ctx).rename(expr.mapping)

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")


def evaluate_all(
    expressions: Mapping[str, Expression],
    state: State,
    cache: Optional[Cache] = None,
    *,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    tracer=None,
    engine: Optional[str] = None,
) -> Dict[str, Relation]:
    """Evaluate several named expressions over one state, sharing the memo.

    Returns ``{name: result}`` in input order. ``cache``, ``stats``,
    ``fastpath``, ``tracer``, and ``engine`` behave as in :func:`evaluate`.
    """
    if resolve_engine(engine) == ENGINE_COLUMNAR:
        from repro.algebra.columnar_eval import evaluate_all_columnar

        return evaluate_all_columnar(
            expressions, state, cache, stats=stats, fastpath=fastpath, tracer=tracer
        )
    if stats is None:
        stats = EvalStats()
    if isinstance(cache, EvaluationCache):
        ctx = _Context(state, {}, cache, stats, fastpath, tracer)
    else:
        memo: Dict[tuple, object] = cache if cache is not None else {}
        _check_memo_state(memo, state)
        ctx = _Context(state, memo, None, stats, fastpath, tracer)
    return {name: _eval(expr, ctx) for name, expr in expressions.items()}
