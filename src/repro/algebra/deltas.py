"""Symbolic change propagation (delta rules) for set-semantics algebra.

Section 4 of the paper plugs "an incremental view maintenance algorithm"
(e.g. Griffin/Libkin style) into its framework: derive, per view and per
update, expressions computing the view's change, then replace every base
relation by its inverse over warehouse views (Example 4.1). This module
implements the first half — sound and *exact* delta rules for set semantics.

Conventions
-----------
An update to base relation ``R`` is represented by two relation names bound
in the evaluation state: ``ins_name(R)`` (= ``R__ins``) for inserted tuples
and ``del_name(R)`` (= ``R__del``) for deleted tuples. Deltas are assumed
*effective*: inserts disjoint from ``R``, deletes contained in ``R``. Under
that assumption the derived pair ``(inserts, deletes)`` of every node ``E``
is exactly ``new(E) - old(E)`` and ``old(E) - new(E)``; no post-hoc
normalization is needed.

Rules (``I``/``D`` are the child deltas, ``Eo``/``En`` old and new values)::

    sigma_C(E):   I' = sigma_C(I)                 D' = sigma_C(D)
    pi_Z(E):      I' = pi_Z(I) - pi_Z(Eo)         D' = pi_Z(D) - pi_Z(En)
    E1 join E2:   I' = (I1 join E2n) + (E1n join I2)
                  D' = (D1 join E2o) + (E1o join D2)
    E1 union E2:  I' = (I1 + I2) - (E1o + E2o)    D' = (D1 + D2) - (E1n + E2n)
    E1 minus E2:  I' = (I1 - E2n) + (D2 ∩ E1n)    D' = (D1 - E2o) + (I2 ∩ E1o)
    rho_m(E):     I' = rho_m(I)                   D' = rho_m(D)

(``∩`` is encoded as ``x - (x - y)``; ``+`` is union, ``-`` difference.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, NamedTuple, Tuple

from repro.errors import ExpressionError
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
    Scope,
)
from repro.algebra.rewriting import substitute
from repro.algebra.simplify import simplify

INSERT_SUFFIX = "__ins"
DELETE_SUFFIX = "__del"


def ins_name(relation: str) -> str:
    """Name of the insert-delta relation for ``relation``."""
    return relation + INSERT_SUFFIX


def del_name(relation: str) -> str:
    """Name of the delete-delta relation for ``relation``."""
    return relation + DELETE_SUFFIX


class DeltaExpressions(NamedTuple):
    """The derived change of an expression: insert and delete expressions."""

    inserts: Expression
    deletes: Expression

    def map(self, func) -> "DeltaExpressions":
        """Apply ``func`` to both component expressions."""
        return DeltaExpressions(func(self.inserts), func(self.deletes))


def delta_scope(scope: Scope, updated: Iterable[str]) -> Dict[str, Tuple[str, ...]]:
    """``scope`` extended with the delta relation names for ``updated``."""
    extended = dict(scope)
    for name in updated:
        if name not in scope:
            raise ExpressionError(f"updated relation {name!r} not in scope")
        extended[ins_name(name)] = tuple(scope[name])
        extended[del_name(name)] = tuple(scope[name])
    return extended


def new_value_expression(expression: Expression, updated: Iterable[str]) -> Expression:
    """``expression`` over the *post-update* state.

    Every reference to an updated relation ``R`` is replaced by
    ``(R minus R__del) union R__ins``; references to unchanged relations stay.
    """
    replacements = {}
    for name in updated:
        replacements[name] = Union(
            Difference(RelationRef(name), RelationRef(del_name(name))),
            RelationRef(ins_name(name)),
        )
    return substitute(expression, replacements)


def _intersect(left: Expression, right: Expression) -> Expression:
    """Set intersection via double difference (no dedicated node needed)."""
    return Difference(left, Difference(left, right))


def derive_delta(
    expression: Expression,
    updated: Iterable[str],
    scope: Scope,
    simplified: bool = True,
) -> DeltaExpressions:
    """Derive symbolic insert/delete expressions for ``expression``.

    Parameters
    ----------
    expression:
        The (view) expression whose change is wanted.
    updated:
        Names of base relations that carry deltas. All other relations are
        treated as unchanged (their deltas are empty, and the simplifier
        erases the corresponding branches — which is why, in Example 4.1, an
        insertion into ``Sale`` yields maintenance expressions mentioning only
        ``s join Emp`` and not any ``Emp``-delta terms).
    scope:
        Name -> attribute tuple for every relation in ``expression``.
    simplified:
        Simplify the derived expressions (on by default).

    Returns
    -------
    DeltaExpressions
        Expressions over the old-state relation names plus the delta names
        ``R__ins`` / ``R__del`` for each updated relation. Given effective
        base deltas, ``inserts`` evaluates exactly to ``new - old`` and
        ``deletes`` to ``old - new``.
    """
    updated_set = frozenset(updated)
    unknown = updated_set - set(scope)
    if unknown:
        raise ExpressionError(f"updated relations {sorted(unknown)} not in scope")
    result = _derive(expression, updated_set, scope)
    if simplified:
        extended = delta_scope(scope, updated_set)
        result = result.map(lambda e: simplify(e, extended))
    return result


def _derive(
    expr: Expression, updated: FrozenSet[str], scope: Scope
) -> DeltaExpressions:
    if isinstance(expr, RelationRef):
        attrs = expr.attributes(scope)
        if expr.name in updated:
            return DeltaExpressions(
                RelationRef(ins_name(expr.name)), RelationRef(del_name(expr.name))
            )
        return DeltaExpressions(Empty(attrs), Empty(attrs))

    if isinstance(expr, Empty):
        return DeltaExpressions(Empty(expr.attrs), Empty(expr.attrs))

    if isinstance(expr, Select):
        child = _derive(expr.child, updated, scope)
        return DeltaExpressions(
            Select(child.inserts, expr.condition),
            Select(child.deletes, expr.condition),
        )

    if isinstance(expr, Project):
        child = _derive(expr.child, updated, scope)
        old_child = expr.child
        new_child = new_value_expression(expr.child, updated)
        return DeltaExpressions(
            Difference(Project(child.inserts, expr.attrs), Project(old_child, expr.attrs)),
            Difference(Project(child.deletes, expr.attrs), Project(new_child, expr.attrs)),
        )

    if isinstance(expr, Join):
        left = _derive(expr.left, updated, scope)
        right = _derive(expr.right, updated, scope)
        left_old, right_old = expr.left, expr.right
        left_new = new_value_expression(expr.left, updated)
        right_new = new_value_expression(expr.right, updated)
        inserts = Union(
            Join(left.inserts, right_new), Join(left_new, right.inserts)
        )
        deletes = Union(
            Join(left.deletes, right_old), Join(left_old, right.deletes)
        )
        return DeltaExpressions(inserts, deletes)

    if isinstance(expr, Union):
        left = _derive(expr.left, updated, scope)
        right = _derive(expr.right, updated, scope)
        old_value = Union(expr.left, expr.right)
        new_value = new_value_expression(old_value, updated)
        inserts = Difference(Union(left.inserts, right.inserts), old_value)
        deletes = Difference(Union(left.deletes, right.deletes), new_value)
        return DeltaExpressions(inserts, deletes)

    if isinstance(expr, Difference):
        left = _derive(expr.left, updated, scope)
        right = _derive(expr.right, updated, scope)
        left_old, right_old = expr.left, expr.right
        left_new = new_value_expression(expr.left, updated)
        right_new = new_value_expression(expr.right, updated)
        inserts = Union(
            Difference(left.inserts, right_new), _intersect(right.deletes, left_new)
        )
        deletes = Union(
            Difference(left.deletes, right_old), _intersect(right.inserts, left_old)
        )
        return DeltaExpressions(inserts, deletes)

    if isinstance(expr, Rename):
        child = _derive(expr.child, updated, scope)
        return DeltaExpressions(
            Rename(child.inserts, expr.mapping), Rename(child.deletes, expr.mapping)
        )

    raise ExpressionError(f"cannot derive deltas for {type(expr).__name__}")
