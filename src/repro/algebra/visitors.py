"""Path-aware traversal of expression trees.

The static analyses in :mod:`repro.analysis` must report *where* in an
expression a problem sits. Expressions are immutable trees without source
positions (most are built programmatically, not parsed), so the stable
address of a node is its **path**: the sequence of child indices from the
root. This module provides the shared traversal and formatting helpers:

* :func:`walk_with_path` — pre-order traversal yielding ``(path, node)``;
* :func:`node_at` — resolve a path back to its node;
* :func:`format_path` — render a path with the operator slot names
  (``left``/``right``/``child``), e.g. ``root.left.child``.

These complement :meth:`Expression.walk`, which yields nodes without
addresses.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import ExpressionError
from repro.algebra.expressions import (
    Difference,
    Expression,
    Join,
    Union,
)

Path = Tuple[int, ...]

_BINARY = (Join, Union, Difference)


def child_slot(node: Expression, index: int) -> str:
    """The human name of child ``index`` of ``node`` (``left``/``right``/``child``)."""
    if isinstance(node, _BINARY):
        return ("left", "right")[index]
    return "child"


def walk_with_path(expression: Expression) -> Iterator[Tuple[Path, Expression]]:
    """All nodes of the tree, pre-order, with their path from the root.

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> [(path, type(node).__name__)
    ...  for path, node in walk_with_path(parse("pi[a](R join S)"))]
    [((), 'Project'), ((0,), 'Join'), ((0, 0), 'RelationRef'), ((0, 1), 'RelationRef')]
    """
    stack: List[Tuple[Path, Expression]] = [((), expression)]
    while stack:
        path, node = stack.pop()
        yield path, node
        children = node.children()
        for index in range(len(children) - 1, -1, -1):
            stack.append((path + (index,), children[index]))


def node_at(expression: Expression, path: Path) -> Expression:
    """The node addressed by ``path`` (as produced by :func:`walk_with_path`)."""
    node = expression
    for index in path:
        children = node.children()
        if index >= len(children):
            raise ExpressionError(
                f"path {path} does not address a node of {expression}"
            )
        node = children[index]
    return node


def format_path(expression: Expression, path: Path) -> str:
    """Render ``path`` with slot names: ``root``, ``root.left.child``, ...

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> expr = parse("pi[a](R join S)")
    >>> format_path(expr, (0, 1))
    'root.child.right'
    """
    parts = ["root"]
    node = expression
    for index in path:
        parts.append(child_slot(node, index))
        node = node.children()[index]
    return ".".join(parts)
