"""Algebraic simplification of expression trees.

The rewriter applies standard set-algebra identities bottom-up until a fixed
point. Its job in this library is twofold:

* keep machine-built expressions readable — query translation (Section 3 of
  the paper) and symbolic maintenance derivation (Section 4) substitute and
  expand aggressively, producing trees with many trivial sub-expressions;
* realize the paper's empty-complement collapses — when constraint analysis
  proves a complement empty (Example 2.4), the complement expression is an
  :class:`~repro.algebra.expressions.Empty` leaf and the rules below erase it
  from every surrounding union, join, and difference.

All rules are sound for set semantics and preserve the output attribute set.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    Constant,
    FalseCondition,
    TrueCondition,
    conjoin,
)
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    Rename,
    Select,
    Union,
)

_MAX_PASSES = 50


def simplify(expression: Expression, scope=None) -> Expression:
    """Simplify ``expression`` to a fixed point.

    Parameters
    ----------
    expression:
        The tree to simplify.
    scope:
        Optional scope (name -> attribute tuple). When given, additional
        schema-aware rules fire (e.g. a projection onto *all* attributes of
        its input is dropped).

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> str(simplify(parse("(Sale minus empty[item, clerk]) union empty[item, clerk]")))
    'Sale'
    """
    current = expression
    for _ in range(_MAX_PASSES):
        simplified = _simplify_once(current, scope)
        if simplified == current:
            return simplified
        current = simplified
    return current


def _simplify_once(expr: Expression, scope) -> Expression:
    children = tuple(_simplify_once(child, scope) for child in expr.children())
    if children != expr.children():
        expr = expr.with_children(children)
    return _rewrite(expr, scope)


def _attrs(expr: Expression, scope) -> Optional[Tuple[str, ...]]:
    """Output attributes of ``expr``, or ``None`` when not derivable."""
    if isinstance(expr, Empty):
        return expr.attrs
    if scope is None:
        return None
    try:
        return expr.attributes(scope)
    except Exception:
        return None


def _is_empty(expr: Expression) -> bool:
    return isinstance(expr, Empty)


def _empty_like(expr: Expression, scope) -> Expression:
    attrs = _attrs(expr, scope)
    if attrs is None:
        return expr  # cannot prove the schema; leave untouched
    return Empty(attrs)


def _fold_constant_comparison(condition: Condition) -> Condition:
    """Evaluate comparisons between two constants."""
    if isinstance(condition, Comparison):
        if isinstance(condition.left, Constant) and isinstance(condition.right, Constant):
            from repro.algebra.conditions import FALSE, TRUE, _OPS

            try:
                holds = _OPS[condition.op](condition.left.value, condition.right.value)
            except TypeError:
                return condition
            return TRUE if holds else FALSE
    if isinstance(condition, And):
        return conjoin([_fold_constant_comparison(p) for p in condition.parts])
    return condition


def _union_parts(expr: Expression) -> list:
    """The leaves of a (possibly nested) union, left to right."""
    if isinstance(expr, Union):
        return _union_parts(expr.left) + _union_parts(expr.right)
    return [expr]


def _rewrite(expr: Expression, scope) -> Expression:
    if isinstance(expr, Select):
        condition = _fold_constant_comparison(expr.condition)
        if isinstance(condition, TrueCondition):
            return expr.child
        if isinstance(condition, FalseCondition) or _is_empty(expr.child):
            result = _empty_like(expr.child, scope)
            if isinstance(result, Empty):
                return result
            return Select(expr.child, condition) if condition is not expr.condition else expr
        # sigma[c1](sigma[c2](e)) -> sigma[c1 and c2](e)
        if isinstance(expr.child, Select):
            merged = conjoin([condition, expr.child.condition])
            return Select(expr.child.child, merged)
        if condition is not expr.condition:
            return Select(expr.child, condition)
        return expr

    if isinstance(expr, Project):
        # pi over Empty -> Empty over the projected attributes.
        if _is_empty(expr.child):
            return Empty(expr.attrs)
        # pi[Z1](pi[Z2](e)) -> pi[Z1](e)
        if isinstance(expr.child, Project):
            return Project(expr.child.child, expr.attrs)
        # pi onto all attributes of the child is the identity.
        child_attrs = _attrs(expr.child, scope)
        if child_attrs is not None and set(child_attrs) == set(expr.attrs):
            return expr.child
        # pi[Z](e1 union e2) -> pi[Z](e1) union pi[Z](e2): only useful when a
        # side is empty, which the Union rule already handles; skip.
        return expr

    if isinstance(expr, Join):
        # Joining with an empty relation is empty iff the empty side's
        # attributes do not vanish; with natural join the result is always
        # empty when one side is empty (even a cartesian product with the
        # empty set is empty).
        if _is_empty(expr.left) or _is_empty(expr.right):
            return _empty_like(expr, scope)
        # e join e -> e (idempotent for identical subtrees).
        if expr.left == expr.right:
            return expr.left
        return expr

    if isinstance(expr, Union):
        if _is_empty(expr.left):
            return expr.right
        if _is_empty(expr.right):
            return expr.left
        # Flatten nested unions and deduplicate structurally equal branches
        # (union is associative, commutative, idempotent).
        parts = _union_parts(expr)
        unique = []
        seen = set()
        for part in parts:
            key = part._key()
            if key not in seen:
                seen.add(key)
                unique.append(part)
        if len(unique) < len(parts):
            rebuilt = unique[0]
            for part in unique[1:]:
                rebuilt = Union(rebuilt, part)
            return rebuilt
        # (e1 minus e2) union e2 stays as-is: NOT equal to e1 in general
        # (it equals e1 union e2); no rule.
        return expr

    if isinstance(expr, Difference):
        if _is_empty(expr.right):
            return expr.left
        if _is_empty(expr.left):
            return _empty_like(expr, scope)
        if expr.left == expr.right:
            return _empty_like(expr, scope)
        # (e1 minus e2) minus e3 with e2 == e3 -> e1 minus e2
        if isinstance(expr.left, Difference) and expr.left.right == expr.right:
            return expr.left
        return expr

    if isinstance(expr, Rename):
        if _is_empty(expr.child):
            child_attrs = expr.child.attrs  # type: ignore[union-attr]
            return Empty(tuple(expr.mapping.get(a, a) for a in child_attrs))
        # rho(rho(e)) -> composed rho
        if isinstance(expr.child, Rename):
            inner = expr.child.mapping
            outer = expr.mapping
            composed = {}
            for old, mid in inner.items():
                composed[old] = outer.get(mid, mid)
            for old, new in outer.items():
                if old not in inner.values() and old not in composed:
                    composed[old] = new
            composed = {o: n for o, n in composed.items() if o != n}
            if not composed:
                return expr.child.child
            return Rename(expr.child.child, composed)
        return expr

    return expr
