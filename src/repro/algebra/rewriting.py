"""Substitution of relation references — the engine behind ``Q ∘ W⁻¹``.

The paper's query translation (Section 3, Step 3) and maintenance-expression
derivation (Section 4, Step 3 / Example 4.1) are both "replace every
reference to a base relation by its inverse expression". That is exactly
:func:`substitute`.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping

from repro.algebra.expressions import Expression, RelationRef


def base_relations(expression: Expression) -> FrozenSet[str]:
    """Names of all relation references in ``expression``.

    Alias of :meth:`Expression.relation_names`, exported under the paper's
    terminology.
    """
    return expression.relation_names()


def substitute(
    expression: Expression, replacements: Mapping[str, Expression]
) -> Expression:
    """Replace every :class:`RelationRef` named in ``replacements``.

    The replacement expressions are inserted as-is (no capture issues arise:
    relation names and attribute names live in separate namespaces, and
    replacement happens in a single pass, so names introduced by a
    replacement are never themselves replaced).

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> inverse = {"Emp": parse("pi[clerk, age](Sold) union C1")}
    >>> str(substitute(parse("pi[clerk](Emp)"), inverse))
    'pi[clerk](pi[clerk, age](Sold) union C1)'
    """
    if isinstance(expression, RelationRef):
        replacement = replacements.get(expression.name)
        return replacement if replacement is not None else expression
    children = expression.children()
    if not children:
        return expression
    new_children = tuple(substitute(child, replacements) for child in children)
    if new_children == children:
        return expression
    return expression.with_children(new_children)


def rename_relations(expression: Expression, mapping: Mapping[str, str]) -> Expression:
    """Rename relation references (not attributes) throughout the tree."""
    return substitute(
        expression, {old: RelationRef(new) for old, new in mapping.items()}
    )


def fold_occurrences(
    expression: Expression, replacements: Mapping[Expression, Expression]
) -> Expression:
    """Replace subtrees structurally equal to a key of ``replacements``.

    The inverse direction of :func:`substitute`: where substitution expands
    names into definitions, folding contracts definitions back into names.
    Used to recognize materialized views inside derived maintenance
    expressions (Example 4.1 keeps ``Sold`` as ``Sold`` instead of expanding
    it into ``Sale join Emp`` and then into inverse expressions).

    Matches top-down first (so the *largest* enclosing definition wins — a
    copy view like ``CustomerDim = Customer`` must not fold the ``Customer``
    leaf inside a bigger definition that also matches), then bottom-up on the
    rebuilt node (so occurrences that only appear after inner folds are still
    caught).
    """
    by_key = {key._key(): value for key, value in replacements.items()}

    def fold(node: Expression) -> Expression:
        replacement = by_key.get(node._key())
        if replacement is not None:
            return replacement
        children = node.children()
        if children:
            new_children = tuple(fold(child) for child in children)
            if new_children != children:
                node = node.with_children(new_children)
        replacement = by_key.get(node._key())
        return replacement if replacement is not None else node

    return fold(expression)
