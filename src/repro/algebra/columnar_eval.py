"""The columnar evaluation path: PSJ expressions over batch kernels.

This is the engine selected by ``REPRO_ENGINE=columnar`` (or an explicit
``engine="columnar"``): structurally the same evaluator as
:mod:`repro.algebra.evaluator` — per-call memo, cross-update
:class:`~repro.algebra.evaluator.EvaluationCache`, semi-/anti-join fast
paths, a zero-overhead untraced path with a tracing twin — but every
operator dispatches to a :class:`~repro.storage.columnar.ColumnarTable`
kernel instead of a tuple-set method:

* leaves encode through :meth:`Relation.columnar`, which caches the
  dictionary-coded twin on the relation instance (and the maintenance
  layer delta-patches it across refreshes, so big relations encode once);
* predicates evaluate over dictionary codes
  (:meth:`ColumnarTable.select`), joins hash on encoded key columns
  (:meth:`ColumnarTable.join`);
* results stay columnar through the whole expression tree — **late
  materialization**: value tuples are rebuilt only at the public API
  boundary (:func:`evaluate_columnar` returns ordinary ``Relation``
  objects, so ``repro.core.maintenance`` and every caller work unchanged).

Sharing one :class:`EvaluationCache` between both engines is safe: columnar
entries are stored under tagged keys, and both are validated by the same
:class:`~repro.algebra.evaluator.StateVersion` instance-identity check.

Identity contract (mirrored from the tuple engine): evaluating a bare
:class:`RelationRef` returns the state's bound ``Relation`` object itself,
and materialized results are cached per table, so unchanged sub-expressions
yield object-identical relations across refreshes — which is what keeps
``StateVersion`` checks and the warehouse's no-op detection working.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import EvaluationError
from repro.algebra.evaluator import (
    Cache,
    EvalStats,
    EvaluationCache,
    State,
    _SPAN_NAMES,
    _check_memo_state,
    _join_operands,
)
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.storage.columnar import ColumnarTable
from repro.storage.relation import Relation

#: Tag prefix keeping columnar memo/cache entries apart from tuple-engine
#: entries when one cache object is shared between both engines.
_TAG = "@columnar"

_SCOPE_KEY = ("@columnar", "__scope__")


def _memo_key(expr: Expression) -> tuple:
    return (_TAG, expr._key())


class _Context:
    """Per-call plumbing: memo, optional cache, stats, flags (columnar)."""

    __slots__ = ("state", "memo", "cache", "stats", "fastpath", "tracer")

    def __init__(
        self,
        state: State,
        memo: Dict[tuple, object],
        cache: Optional[EvaluationCache],
        stats: EvalStats,
        fastpath: bool,
        tracer=None,
    ) -> None:
        self.state = state
        self.memo = memo
        self.cache = cache
        self.stats = stats
        self.fastpath = fastpath
        self.tracer = tracer


def evaluate_columnar(
    expression: Expression,
    state: State,
    cache: Optional[Cache] = None,
    *,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    tracer=None,
) -> Relation:
    """Evaluate ``expression`` over ``state`` with the columnar kernels.

    Drop-in equivalent of :func:`repro.algebra.evaluator.evaluate` (same
    parameters, same result relation, same identity guarantees); only the
    physical execution differs. Normally reached via
    ``evaluate(..., engine="columnar")`` or ``REPRO_ENGINE=columnar``.
    """
    if stats is None:
        stats = EvalStats()
    if isinstance(cache, EvaluationCache):
        ctx = _Context(state, {}, cache, stats, fastpath, tracer)
    else:
        memo: Dict[tuple, object] = cache if cache is not None else {}
        _check_memo_state(memo, state)
        ctx = _Context(state, memo, None, stats, fastpath, tracer)
    return _materialize(expression, ctx)


def evaluate_all_columnar(
    expressions: Mapping[str, Expression],
    state: State,
    cache: Optional[Cache] = None,
    *,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    tracer=None,
) -> Dict[str, Relation]:
    """Evaluate several named expressions columnar-ly, sharing the memo."""
    if stats is None:
        stats = EvalStats()
    if isinstance(cache, EvaluationCache):
        ctx = _Context(state, {}, cache, stats, fastpath, tracer)
    else:
        memo: Dict[tuple, object] = cache if cache is not None else {}
        _check_memo_state(memo, state)
        ctx = _Context(state, memo, None, stats, fastpath, tracer)
    return {name: _materialize(expr, ctx) for name, expr in expressions.items()}


def _materialize(expr: Expression, ctx: _Context) -> Relation:
    """Run the columnar evaluation, then decode at the API boundary.

    A bare :class:`RelationRef` returns the bound relation object itself
    (identity parity with the tuple engine); everything else decodes via
    :meth:`ColumnarTable.to_relation`, which caches the materialized
    relation on the table so cross-update cache hits stay object-identical.
    """
    table = _eval(expr, ctx)
    if isinstance(expr, RelationRef):
        return ctx.state[expr.name]
    return table.to_relation()


def _eval(expr: Expression, ctx: _Context) -> ColumnarTable:
    if ctx.tracer is not None:
        return _eval_traced(expr, ctx)
    key = _memo_key(expr)
    hit = ctx.memo.get(key)
    if hit is not None:
        ctx.stats.memo_hits += 1
        return hit  # type: ignore[return-value]
    if ctx.cache is not None:
        cached = ctx.cache.lookup(key, ctx.state)
        if cached is not None:
            ctx.stats.cache_hits += 1
            ctx.memo[key] = cached
            return cached  # type: ignore[return-value]
        ctx.stats.cache_misses += 1
    result = _eval_node(expr, ctx)
    ctx.stats.nodes_evaluated += 1
    ctx.memo[key] = result
    if ctx.cache is not None:
        ctx.cache.store(key, ctx.state, expr, result)  # type: ignore[arg-type]
    return result


def _eval_traced(expr: Expression, ctx: _Context) -> ColumnarTable:
    """The tracing twin of :func:`_eval`: same logic, plus per-node spans.

    Span names and attributes mirror the tuple engine exactly — in
    particular every :class:`RelationRef` actually computed (or served
    from the cross-update cache) yields a ``read`` span carrying the
    ``relation`` attribute, which is what the ``REPRO_CHECK_INVARIANTS=1``
    dataflow sanitizer cross-checks against static read sets. The only
    additions are ``engine="columnar"`` on every span and kernel-level row
    counts on joins.
    """
    key = _memo_key(expr)
    hit = ctx.memo.get(key)
    if hit is not None:
        ctx.stats.memo_hits += 1
        return hit  # type: ignore[return-value]
    name = _SPAN_NAMES.get(type(expr), "node")
    if ctx.cache is not None:
        cached = ctx.cache.lookup(key, ctx.state)
        if cached is not None:
            ctx.stats.cache_hits += 1
            ctx.memo[key] = cached
            with ctx.tracer.span(
                name, cached=True, rows_out=len(cached), engine="columnar"
            ) as span:
                if isinstance(expr, RelationRef):
                    span.attributes["relation"] = expr.name
            return cached  # type: ignore[return-value]
        ctx.stats.cache_misses += 1
    with ctx.tracer.span(name, engine="columnar") as span:
        result = _eval_node(expr, ctx)
        span.attributes["rows_out"] = len(result)
        if isinstance(expr, RelationRef):
            span.attributes["relation"] = expr.name
    ctx.stats.nodes_evaluated += 1
    ctx.memo[key] = result
    if ctx.cache is not None:
        ctx.cache.store(key, ctx.state, expr, result)  # type: ignore[arg-type]
    return result


def _scope(ctx: _Context):
    scope = ctx.memo.get(_SCOPE_KEY)
    if scope is None:
        scope = {name: relation.attributes for name, relation in ctx.state.items()}
        ctx.memo[_SCOPE_KEY] = scope
    return scope


def _kernel_join(left: ColumnarTable, right: ColumnarTable, ctx: _Context) -> ColumnarTable:
    if ctx.tracer is not None:
        ctx.tracer.annotate(rows_in_left=len(left), rows_in_right=len(right))
    result = left.join(right)
    ctx.stats.joins += 1
    ctx.stats.rows_joined += len(result)
    return result


def _eval_project(expr: Project, ctx: _Context) -> ColumnarTable:
    child = expr.child
    if not (ctx.fastpath and isinstance(child, Join)):
        return _eval(child, ctx).project(expr.attrs)
    # Same fast path as the tuple engine: pi_Z(L join R) with Z inside one
    # operand's schema is a semi-join over encoded keys.
    if _memo_key(child) in ctx.memo:
        return _eval(child, ctx).project(expr.attrs)
    left = _eval(child.left, ctx)
    if not left:
        return ColumnarTable.empty(expr.attrs)
    right = _eval(child.right, ctx)
    if not right:
        return ColumnarTable.empty(expr.attrs)
    target = frozenset(expr.attrs)
    if target <= left.attribute_set:
        ctx.stats.semijoin_fastpaths += 1
        if ctx.tracer is not None:
            ctx.tracer.annotate(fastpath="semi_join")
        return left.semi_join(right).project(expr.attrs)
    if target <= right.attribute_set:
        ctx.stats.semijoin_fastpaths += 1
        if ctx.tracer is not None:
            ctx.tracer.annotate(fastpath="semi_join")
        return right.semi_join(left).project(expr.attrs)
    return _eval(child, ctx).project(expr.attrs)


def _eval_difference(
    expr: Difference, ctx: _Context, left: ColumnarTable
) -> ColumnarTable:
    right = expr.right
    if (
        ctx.fastpath
        and isinstance(right, Project)
        and isinstance(right.child, Join)
        and _memo_key(right) not in ctx.memo
        and frozenset(right.attrs) == left.attribute_set
    ):
        # Proposition 2.2's complement shape R - pi_{attr(R)}(R join S)
        # as a hash anti-join on encoded keys (two-operand joins only,
        # matching the tuple engine's restriction).
        operands = _join_operands(right.child)
        if len(operands) == 2:
            left_key = expr.left._key()
            for index, operand in enumerate(operands):
                if operand._key() == left_key:
                    other = _eval(operands[1 - index], ctx)
                    ctx.stats.antijoin_fastpaths += 1
                    if ctx.tracer is not None:
                        ctx.tracer.annotate(fastpath="anti_join")
                    return left.anti_join(other)
    return left.difference(_eval(right, ctx))


def _eval_node(expr: Expression, ctx: _Context) -> ColumnarTable:
    if isinstance(expr, RelationRef):
        relation = ctx.state.get(expr.name)
        if relation is None:
            raise EvaluationError(
                f"relation {expr.name!r} is not bound in the evaluation state "
                f"(bound: {sorted(ctx.state)})"
            )
        return relation.columnar()

    if isinstance(expr, Empty):
        return ColumnarTable.empty(expr.attrs)

    if isinstance(expr, Project):
        return _eval_project(expr, ctx)

    if isinstance(expr, Select):
        return _eval(expr.child, ctx).select(expr.condition)

    if isinstance(expr, Join):
        left = _eval(expr.left, ctx)
        if not left:
            return ColumnarTable.empty(expr.attributes(_scope(ctx)))
        right = _eval(expr.right, ctx)
        if not right:
            return ColumnarTable.empty(expr.attributes(_scope(ctx)))
        return _kernel_join(left, right, ctx)

    if isinstance(expr, Union):
        left = _eval(expr.left, ctx)
        right = _eval(expr.right, ctx)
        return left.union(right)

    if isinstance(expr, Difference):
        left = _eval(expr.left, ctx)
        if not left:
            return left
        return _eval_difference(expr, ctx, left)

    if isinstance(expr, Rename):
        return _eval(expr.child, ctx).rename(expr.mapping)

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")
