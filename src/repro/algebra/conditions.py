"""Selection conditions for the algebra's ``select`` operator.

Conditions are the usual boolean combinations of comparisons between
attribute references and constants. The PSJ views of the paper use
conjunctions of such comparisons; the full boolean language is supported so
that translated queries and maintenance expressions remain closed under
rewriting.

Conditions are immutable and structurally hashable, compile to fast
positional row predicates, and support attribute renaming (needed when a
rename operator is pushed through a selection).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.errors import ExpressionError

Row = Tuple[object, ...]

def _total(op: Callable[[object, object], bool]) -> Callable[[object, object], bool]:
    """Make an ordered comparison total across value types.

    Python 3 raises ``TypeError`` on e.g. ``"x" < 2``; a relational engine
    over untyped columns needs a deterministic answer instead. Values of
    incomparable types are ordered by type name first (so all ints sort
    against all strs consistently), then by their ``repr``.
    """

    def compare(left: object, right: object) -> bool:
        try:
            return op(left, right)
        except TypeError:
            return op(
                (type(left).__name__, repr(left)),
                (type(right).__name__, repr(right)),
            )

    return compare


_OPS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": _total(operator.lt),
    "<=": _total(operator.le),
    ">": _total(operator.gt),
    ">=": _total(operator.ge),
}

_NEGATED: Dict[str, str] = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

_FLIPPED: Dict[str, str] = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


class Operand:
    """Base class of comparison operands (attribute refs and constants).

    Provides comparison-builder sugar so conditions read naturally::

        attr("age") >= const(18)
    """

    __slots__ = ()

    def _compare(self, op: str, other: "Operand") -> "Comparison":
        if not isinstance(other, Operand):
            other = Constant(other)
        return Comparison(self, op, other)

    def __eq__(self, other: object):  # type: ignore[override]
        # Builder sugar: produces a Comparison, not a bool. Structural
        # equality is available via `same_as`.
        return self._compare("=", other)  # type: ignore[arg-type]

    def __ne__(self, other: object):  # type: ignore[override]
        return self._compare("!=", other)  # type: ignore[arg-type]

    def __lt__(self, other: "Operand") -> "Comparison":
        return self._compare("<", other)

    def __le__(self, other: "Operand") -> "Comparison":
        return self._compare("<=", other)

    def __gt__(self, other: "Operand") -> "Comparison":
        return self._compare(">", other)

    def __ge__(self, other: "Operand") -> "Comparison":
        return self._compare(">=", other)

    def __hash__(self) -> int:
        return hash(self._key())

    def same_as(self, other: "Operand") -> bool:
        """Structural equality (``==`` is overloaded as a builder)."""
        return type(self) is type(other) and self._key() == other._key()

    def _key(self) -> tuple:
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """Attribute names this operand refers to."""
        raise NotImplementedError

    def renamed(self, mapping: Mapping[str, str]) -> "Operand":
        """This operand with attribute names substituted."""
        raise NotImplementedError


class AttributeRef(Operand):
    """A reference to an attribute by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ExpressionError(f"attribute name must be a non-empty string: {name!r}")
        self.name = name

    def _key(self) -> tuple:
        return ("attr", self.name)

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def renamed(self, mapping: Mapping[str, str]) -> "AttributeRef":
        return AttributeRef(mapping.get(self.name, self.name))

    def __repr__(self) -> str:
        return f"attr({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant(Operand):
    """A literal value (string, number, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def _key(self) -> tuple:
        return ("const", type(self.value).__name__, self.value)

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def renamed(self, mapping: Mapping[str, str]) -> "Constant":
        return self

    def __repr__(self) -> str:
        return f"const({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "\\'")
            return f"'{escaped}'"
        return repr(self.value)


def attr(name: str) -> AttributeRef:
    """Shorthand for :class:`AttributeRef`."""
    return AttributeRef(name)


def const(value: object) -> Constant:
    """Shorthand for :class:`Constant`."""
    return Constant(value)


class Condition:
    """Base class of selection conditions."""

    __slots__ = ()

    def attributes(self) -> FrozenSet[str]:
        """All attribute names the condition refers to."""
        raise NotImplementedError

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        """A fast predicate over rows laid out in ``attributes`` order."""
        raise NotImplementedError

    def renamed(self, mapping: Mapping[str, str]) -> "Condition":
        """This condition with attribute names substituted."""
        raise NotImplementedError

    def negated(self) -> "Condition":
        """The logical negation, pushed inward where cheap."""
        return Not(self)

    def conjuncts(self) -> Tuple["Condition", ...]:
        """Top-level conjuncts (flattened over nested ``And``)."""
        return (self,)

    def same_as(self, other: "Condition") -> bool:
        """Structural equality."""
        return type(self) is type(other) and self._key() == other._key()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __hash__(self) -> int:
        return hash(self._key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Condition):
            return NotImplemented
        return self.same_as(other)

    # Builder sugar -----------------------------------------------------

    def __and__(self, other: "Condition") -> "Condition":
        return conjoin([self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return self.negated()


class TrueCondition(Condition):
    """The always-true condition (selection with it is the identity)."""

    __slots__ = ()

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        return lambda row: True

    def renamed(self, mapping: Mapping[str, str]) -> "TrueCondition":
        return self

    def negated(self) -> "Condition":
        return FalseCondition()

    def _key(self) -> tuple:
        return ("true",)

    def __repr__(self) -> str:
        return "TRUE"

    def __str__(self) -> str:
        return "true"


class FalseCondition(Condition):
    """The always-false condition (selection with it yields the empty set)."""

    __slots__ = ()

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        return lambda row: False

    def renamed(self, mapping: Mapping[str, str]) -> "FalseCondition":
        return self

    def negated(self) -> "Condition":
        return TRUE

    def _key(self) -> tuple:
        return ("false",)

    def __repr__(self) -> str:
        return "FALSE"

    def __str__(self) -> str:
        return "false"


TRUE = TrueCondition()
FALSE = FalseCondition()


class Comparison(Condition):
    """An atomic comparison ``left op right``."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Operand, op: str, right: Operand) -> None:
        if op not in _OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        if not isinstance(left, Operand) or not isinstance(right, Operand):
            raise ExpressionError("comparison operands must be AttributeRef or Constant")
        if isinstance(left, Constant) and isinstance(right, Constant):
            # Constant-constant comparisons are legal but pointless; keep them
            # (the simplifier folds them away).
            pass
        self.left = left
        self.op = op
        self.right = right

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        func = _OPS[self.op]
        attrs = tuple(attributes)

        def resolve(operand: Operand) -> Callable[[Row], object]:
            if isinstance(operand, AttributeRef):
                if operand.name not in attrs:
                    raise ExpressionError(
                        f"condition attribute {operand.name!r} not among {attrs}"
                    )
                pos = attrs.index(operand.name)
                return lambda row: row[pos]
            value = operand.value  # type: ignore[union-attr]
            return lambda row: value

        get_left = resolve(self.left)
        get_right = resolve(self.right)
        return lambda row: func(get_left(row), get_right(row))

    def renamed(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(self.left.renamed(mapping), self.op, self.right.renamed(mapping))

    def negated(self) -> "Condition":
        return Comparison(self.left, _NEGATED[self.op], self.right)

    def flipped(self) -> "Comparison":
        """The same comparison with operands swapped (``a < b`` -> ``b > a``)."""
        return Comparison(self.right, _FLIPPED[self.op], self.left)

    def canonical(self) -> "Comparison":
        """A canonical orientation: attribute refs before constants, sorted."""
        left_key, right_key = self.left._key(), self.right._key()
        if isinstance(self.left, Constant) and isinstance(self.right, AttributeRef):
            return self.flipped()
        if (
            isinstance(self.left, AttributeRef)
            and isinstance(self.right, AttributeRef)
            and right_key < left_key
        ):
            return self.flipped()
        return self

    def _key(self) -> tuple:
        canon = self.canonical()
        return ("cmp", canon.left._key(), canon.op, canon.right._key())

    def __repr__(self) -> str:
        return f"Comparison({self.left!r}, {self.op!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def _flatten(
    cls: type, parts: Iterable[Condition]
) -> Tuple[Condition, ...]:
    flat = []
    for part in parts:
        if isinstance(part, cls):
            flat.extend(part.parts)  # type: ignore[attr-defined]
        else:
            flat.append(part)
    # Deduplicate structurally while preserving order.
    seen = set()
    unique = []
    for part in flat:
        key = part._key()
        if key not in seen:
            seen.add(key)
            unique.append(part)
    return tuple(unique)


class And(Condition):
    """Conjunction of conditions (flattened, deduplicated)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Condition]) -> None:
        self.parts = _flatten(And, parts)
        if len(self.parts) < 2:
            raise ExpressionError("And requires at least two distinct conjuncts; use conjoin()")

    def attributes(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        preds = [part.compile(attributes) for part in self.parts]
        return lambda row: all(p(row) for p in preds)

    def renamed(self, mapping: Mapping[str, str]) -> "Condition":
        return conjoin([part.renamed(mapping) for part in self.parts])

    def negated(self) -> "Condition":
        return Or(tuple(part.negated() for part in self.parts))

    def conjuncts(self) -> Tuple[Condition, ...]:
        out = []
        for part in self.parts:
            out.extend(part.conjuncts())
        return tuple(out)

    def _key(self) -> tuple:
        return ("and", frozenset(part._key() for part in self.parts))

    def __repr__(self) -> str:
        return f"And({list(self.parts)!r})"

    def __str__(self) -> str:
        return " and ".join(
            f"({part})" if isinstance(part, Or) else str(part) for part in self.parts
        )


class Or(Condition):
    """Disjunction of conditions (flattened, deduplicated)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Condition]) -> None:
        self.parts = _flatten(Or, parts)
        if len(self.parts) < 2:
            raise ExpressionError("Or requires at least two distinct disjuncts")

    def attributes(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        preds = [part.compile(attributes) for part in self.parts]
        return lambda row: any(p(row) for p in preds)

    def renamed(self, mapping: Mapping[str, str]) -> "Condition":
        return Or(tuple(part.renamed(mapping) for part in self.parts))

    def negated(self) -> "Condition":
        return conjoin([part.negated() for part in self.parts])

    def _key(self) -> tuple:
        return ("or", frozenset(part._key() for part in self.parts))

    def __repr__(self) -> str:
        return f"Or({list(self.parts)!r})"

    def __str__(self) -> str:
        return " or ".join(str(part) for part in self.parts)


class Not(Condition):
    """Negation of a condition."""

    __slots__ = ("part",)

    def __init__(self, part: Condition) -> None:
        self.part = part

    def attributes(self) -> FrozenSet[str]:
        return self.part.attributes()

    def compile(self, attributes: Sequence[str]) -> Callable[[Row], bool]:
        pred = self.part.compile(attributes)
        return lambda row: not pred(row)

    def renamed(self, mapping: Mapping[str, str]) -> "Condition":
        return Not(self.part.renamed(mapping))

    def negated(self) -> "Condition":
        return self.part

    def _key(self) -> tuple:
        return ("not", self.part._key())

    def __repr__(self) -> str:
        return f"Not({self.part!r})"

    def __str__(self) -> str:
        return f"not ({self.part})"


def conjoin(parts: Iterable[Condition]) -> Condition:
    """The conjunction of ``parts``, collapsing trivial cases.

    Zero parts yield :data:`TRUE`; one part yields itself; ``TRUE`` conjuncts
    are dropped and a ``FALSE`` conjunct collapses the whole condition.
    """
    kept = []
    for part in parts:
        if isinstance(part, TrueCondition):
            continue
        if isinstance(part, FalseCondition):
            return FALSE
        kept.append(part)
    flat = _flatten(And, kept)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)
