"""The integration pipeline of Figure 1: sources, channels, integrators.

The paper's architecture decouples sources from the warehouse: sources
apply updates locally and *report* them; the integrator folds reported
updates into the warehouse. Crucially, "the warehouse is typically not in a
position to send queries back to the sources ... such queries can cause
warehouse maintenance anomalies [27, 28]" (Section 1).

This package makes that motivation executable:

* :class:`~repro.integrator.source.Source` — a named autonomous database
  that stamps every update with a sequence number and reports it;
* :class:`~repro.integrator.channel.Channel` — the loosely-coupled link:
  a FIFO queue with configurable delivery lag, so the integrator sees
  notifications *after* the source has moved on;
* :class:`~repro.integrator.integrator.ComplementIntegrator` — the paper's
  approach: maintain the warehouse from the notification alone (Theorem
  4.1); correct under any lag;
* :class:`~repro.integrator.integrator.NaiveIntegrator` — the strawman the
  paper argues against: on each notification it queries the *current*
  source state for join partners. Under lag this reproduces the classical
  Zhuge et al. maintenance anomalies (see
  ``tests/integrator/test_anomalies.py`` and
  ``examples/integrator_anomalies.py``).

The concurrent pipeline (:mod:`repro.integrator.async_integrator`) lifts
the same architecture onto ``asyncio``: per-source
:class:`~repro.integrator.async_integrator.AsyncChannel` FIFOs with
backpressure, lag-injecting
:class:`~repro.integrator.async_integrator.AsyncSource` databases, and the
:class:`~repro.integrator.async_integrator.AsyncConcurrentIntegrator`
folding net batches into a sharded warehouse under MVCC snapshot commits.
"""

from repro.integrator.async_integrator import (
    AsyncChannel,
    AsyncConcurrentIntegrator,
    AsyncSource,
)
from repro.integrator.channel import Channel, Notification
from repro.integrator.integrator import ComplementIntegrator, NaiveIntegrator
from repro.integrator.source import Source

__all__ = [
    "AsyncChannel",
    "AsyncConcurrentIntegrator",
    "AsyncSource",
    "Channel",
    "ComplementIntegrator",
    "NaiveIntegrator",
    "Notification",
    "Source",
]
