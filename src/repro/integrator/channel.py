"""Channels: the loosely-coupled link between sources and integrator.

A :class:`Channel` is a FIFO of :class:`Notification` objects. The crucial
knob is *lag*: the integrator drains the channel some time after the source
applied the update, during which the source may have applied further
updates. A naive integrator that queries the live source during that window
reads a state inconsistent with the notification it is processing — the
maintenance-anomaly mechanism of Zhuge et al. that the paper's Section 1
cites as motivation.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Iterator, List, NamedTuple, Optional

from repro.errors import WarehouseError
from repro.storage.update import Update


class Notification(NamedTuple):
    """One reported update: source name, global sequence number, update."""

    source: str
    sequence: int
    update: Update


class Channel:
    """A FIFO update channel shared by any number of sources.

    Sequence numbers are global per channel, so total order of publication
    is preserved; delivery order equals publication order (the anomaly does
    not require reordering — lag alone suffices).
    """

    def __init__(self) -> None:
        self._queue: Deque[Notification] = deque()
        self._sequence = itertools.count(1)
        self._delivered = 0

    def publish(self, source: str, update: Update) -> Notification:
        """Append a notification (called by sources)."""
        notification = Notification(source, next(self._sequence), update)
        self._queue.append(notification)
        return notification

    def pending(self) -> int:
        """Number of undelivered notifications."""
        return len(self._queue)

    def delivered(self) -> int:
        """Number of notifications delivered so far."""
        return self._delivered

    def poll(self) -> Optional[Notification]:
        """Deliver the oldest pending notification, or ``None``."""
        if not self._queue:
            return None
        self._delivered += 1
        return self._queue.popleft()

    def drain(self, limit: Optional[int] = None) -> List[Notification]:
        """Deliver up to ``limit`` pending notifications (all by default).

        Only notifications pending when the drain *starts* are delivered:
        anything published while the drain is in flight stays queued for the
        next pass, so a publish-while-draining feedback loop cannot keep a
        single drain alive forever.
        """
        if limit is not None and limit < 0:
            raise WarehouseError(f"drain limit must be non-negative: {limit}")
        pending = len(self._queue)
        if limit is not None:
            pending = min(pending, limit)
        out: List[Notification] = []
        for _ in range(pending):
            notification = self.poll()
            assert notification is not None
            out.append(notification)
        return out

    def __iter__(self) -> Iterator[Notification]:
        """Iterate by draining (consumes the queue).

        The pending count is snapshotted when iteration starts; notifications
        published during the drain are left for a later pass (see
        :meth:`drain`).
        """
        for _ in range(len(self._queue)):
            notification = self.poll()
            assert notification is not None
            yield notification

    def __repr__(self) -> str:
        return f"Channel({len(self._queue)} pending, {self._delivered} delivered)"
