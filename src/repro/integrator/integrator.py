"""Integrators: folding reported updates into the warehouse.

Two implementations of the integrator box in Figure 1:

* :class:`ComplementIntegrator` — the paper's design. At definition time it
  computes a complement and maintenance expressions; at run time each
  notification is folded in using warehouse relations and the notification
  only. Correct under arbitrary delivery lag, because nothing it reads can
  drift: the warehouse state *is* the (pre-update) source state, by
  invertibility.

* :class:`NaiveIntegrator` — the strawman: it materializes the views only,
  and when a notification arrives it computes the view change by joining
  the reported delta against the *live* source relations ("having the
  Company Database join the new tuple with all tuples in relation Emp",
  Section 1 — exactly what the paper says is not an option). If the sources
  have moved on since the notification was published (delivery lag), the
  integrator joins against a too-new state and the materialized view
  diverges — the classical maintenance anomaly (Zhuge et al.), reproduced
  in ``tests/integrator/test_anomalies.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import WarehouseError
from repro.algebra.deltas import derive_delta
from repro.algebra.evaluator import evaluate
from repro.schema.catalog import Catalog
from repro.storage.relation import Relation
from repro.views.psj import View
from repro.core.maintenance import delta_bindings
from repro.core.warehouse import Warehouse
from repro.integrator.channel import Channel, Notification
from repro.integrator.source import Source


def _source_state(sources: Sequence[Source]) -> Dict[str, Relation]:
    state: Dict[str, Relation] = {}
    for source in sources:
        for relation in source.relations:
            if relation in state:
                raise WarehouseError(
                    f"relation {relation!r} owned by more than one source"
                )
            state[relation] = source.relation(relation)
    return state


class ComplementIntegrator:
    """The paper's integrator: complement-based, source-free maintenance."""

    def __init__(self, catalog: Catalog, views: Sequence[View], **specify_options) -> None:
        self.warehouse = Warehouse.specify(catalog, views, **specify_options)
        self._processed = 0

    @classmethod
    def from_spec(cls, spec) -> "ComplementIntegrator":
        """Build an integrator from an existing spec (e.g. a star schema's).

        ``Warehouse.specify`` requires PSJ views; star specifications carry
        union-defined fact tables and are constructed by
        :func:`repro.core.star.star_specify` instead — this constructor
        accepts them directly.
        """
        integrator = cls.__new__(cls)
        integrator.warehouse = Warehouse(spec)
        integrator._processed = 0
        return integrator

    def initialize(self, sources: Sequence[Source]) -> None:
        """The initial extract: the only read of source data, ever."""
        self.warehouse.initialize(_source_state(sources))

    def process(self, notification: Notification) -> None:
        """Fold one reported update in — no source access."""
        self.warehouse.apply(notification.update)
        self._processed += 1
        self._count_notifications((notification,))

    def process_batch(self, notifications: Sequence[Notification]) -> int:
        """Fold a batch of notifications in with a *single* refresh.

        The notifications' updates are composed sequentially and applied as
        one net update (see :meth:`Warehouse.apply_batch`): one inverse
        normalization and one maintenance-expression evaluation per batch,
        instead of one per notification. Returns the batch size.
        """
        notifications = list(notifications)
        if not notifications:
            # An empty batch is a no-op: recording it would skew the
            # integrator.batches / *.batch_size histograms with zeros.
            return 0
        self.warehouse.apply_batch(n.update for n in notifications)
        self._processed += len(notifications)
        self._count_notifications(notifications)
        self.metrics.counter("integrator.batches").inc()
        self.metrics.histogram("integrator.batch_size").observe(len(notifications))
        return len(notifications)

    def _count_notifications(self, notifications: Sequence[Notification]) -> None:
        """Per-source update counters (`integrator.updates.<relation>`)."""
        metrics = self.metrics
        metrics.counter("integrator.notifications").inc(len(notifications))
        for notification in notifications:
            for delta in notification.update:
                metrics.counter(f"integrator.updates.{delta.relation}").inc()

    def process_all(self, channel: Channel, batch_size: Optional[int] = None) -> int:
        """Drain a channel; returns the number of notifications processed.

        With ``batch_size`` set, pending notifications are folded in groups
        via :meth:`process_batch` — the high-throughput path when sources
        report faster than refreshes are wanted.
        """
        if batch_size is None:
            count = 0
            for notification in channel:
                self.process(notification)
                count += 1
            return count
        if batch_size < 1:
            raise WarehouseError(f"batch_size must be positive: {batch_size}")
        count = 0
        pending: list = []
        for notification in channel:
            pending.append(notification)
            if len(pending) >= batch_size:
                count += self.process_batch(pending)
                pending = []
        if pending:
            count += self.process_batch(pending)
        return count

    def relation(self, name: str) -> Relation:
        """A materialized warehouse relation."""
        return self.warehouse.relation(name)

    @property
    def processed(self) -> int:
        """Notifications processed so far."""
        return self._processed

    @property
    def eval_stats(self):
        """Cumulative :class:`~repro.algebra.evaluator.EvalStats`."""
        return self.warehouse.eval_stats

    @property
    def metrics(self):
        """The underlying warehouse's :class:`~repro.obs.metrics.MetricsRegistry`.

        The integrator records its own family there: ``integrator.notifications``,
        ``integrator.batches``, ``integrator.batch_size``, and per-source
        ``integrator.updates.<relation>`` counters.
        """
        return self.warehouse.metrics

    def __repr__(self) -> str:
        return f"ComplementIntegrator({self._processed} notifications processed)"


class NaiveIntegrator:
    """The query-the-sources strawman (anomalous under delivery lag).

    Materializes only the views. Each notification's view-delta is computed
    by the standard delta rules, but with base relations bound to the *live*
    source state at processing time — correct only if nothing changed since
    publication.
    """

    def __init__(
        self, catalog: Catalog, views: Sequence[View], sources: Sequence[Source]
    ) -> None:
        self.catalog = catalog
        self.views = tuple(views)
        self.sources = tuple(sources)
        self._scope = {s.name: s.attributes for s in catalog.schemas()}
        self._state: Optional[Dict[str, Relation]] = None
        self._processed = 0

    def initialize(self) -> None:
        """Materialize the views from the current source state."""
        live = _source_state(self.sources)
        self._state = {
            view.name: evaluate(view.definition, live) for view in self.views
        }

    def process(self, notification: Notification) -> None:
        """Maintain the views by querying the live sources (anomalous)."""
        if self._state is None:
            raise WarehouseError("integrator not initialized")
        update = notification.update
        updated = tuple(update.relations())
        live = _source_state(self.sources)  # <- the bug the paper avoids:
        # this is the post-lag state, not the state the update applied to.
        for delta in update:
            if delta.relation not in live:
                raise WarehouseError(
                    f"notification {notification.sequence} from "
                    f"{notification.source!r} references relation "
                    f"{delta.relation!r}, which no configured source owns"
                )
        combined: Dict[str, Relation] = dict(live)
        # Undo this notification's own deltas so that, when the integrator
        # is tightly coupled (zero lag), the reconstructed pre-state is
        # exact and maintenance is correct. Under lag, other sources' (or
        # the same source's later) updates are already baked into `live`
        # and cannot be undone — that residue is the maintenance anomaly.
        for delta in update:
            combined[delta.relation] = delta.inverted().apply_to(
                live[delta.relation]
            )
        combined.update(delta_bindings(update, self._scope))
        for view in self.views:
            derived = derive_delta(view.definition, updated, self._scope)
            inserts = evaluate(derived.inserts, combined)
            deletes = evaluate(derived.deletes, combined)
            current = self._state[view.name]
            self._state[view.name] = current.difference(deletes).union(inserts)
        self._processed += 1

    def process_all(self, channel: Channel) -> int:
        """Drain a channel; returns the number of notifications processed."""
        count = 0
        for notification in channel:
            self.process(notification)
            count += 1
        return count

    def relation(self, name: str) -> Relation:
        """A materialized view."""
        if self._state is None or name not in self._state:
            raise WarehouseError(f"no materialized view named {name!r}")
        return self._state[name]

    @property
    def processed(self) -> int:
        """Notifications processed so far."""
        return self._processed

    def __repr__(self) -> str:
        return f"NaiveIntegrator({self._processed} notifications processed)"
