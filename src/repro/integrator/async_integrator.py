"""The concurrent integrator: async sources, sharded warehouse, snapshots.

This module lifts the Figure 1 pipeline onto ``asyncio``:

* :class:`AsyncChannel` — a per-source FIFO with bounded capacity.
  Publishing is available both synchronously (:meth:`AsyncChannel.publish`,
  source-compatible, fails fast when full) and asynchronously
  (:meth:`AsyncChannel.send`, suspends until space frees up —
  *backpressure*: a slow integrator throttles its sources instead of
  queueing unboundedly). Delivery lag (publish → deliver residence time) is
  measured per notification.

* :class:`AsyncSource` — a :class:`~repro.integrator.source.Source` whose
  async mutators report through :meth:`AsyncChannel.send` after an optional
  injected delay, modelling real delivery lag: by the time the integrator
  sees the notification, the source has long since moved on.

* :class:`AsyncConcurrentIntegrator` — the paper's complement integrator
  over a :class:`~repro.core.sharding.ShardedWarehouse`. One worker per
  source channel folds everything pending into a net batch with
  ``Update.compose``, locks exactly the shards the batch routes to (in
  sorted order — deadlock-free), refreshes them with explicit suspension
  points between shards, and publishes the batch with one synchronous MVCC
  commit. Readers resolve :meth:`AsyncConcurrentIntegrator.snapshot` and
  keep a consistent image no matter how refreshes interleave.

Why correctness survives the concurrency: Theorem 4.1 makes each fold
self-contained (warehouse relations + the notification, no source reads),
so delivery lag cannot poison a refresh; different sources own disjoint
relations, so their net batches commute and any interleaving the locks
admit serializes to the commit-log order; and the commit protocol never
exposes a half-applied multi-shard batch. The harness in
``tests/integrator/test_async_integrator.py`` checks exactly this by
replaying the commit log through a synchronous reference warehouse.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import WarehouseError
from repro.schema.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.update import Update
from repro.views.psj import View
from repro.core.sharding import ShardedSnapshot, ShardedWarehouse, ShardRouting
from repro.integrator.channel import Notification
from repro.integrator.integrator import _source_state
from repro.integrator.source import Source


class AsyncChannel:
    """A per-source FIFO with bounded capacity and async delivery.

    ``capacity=0`` means unbounded. With a bound, :meth:`publish` (the
    synchronous, source-compatible path) raises when full, while
    :meth:`send` suspends the producer until the integrator drains —
    backpressure instead of unbounded queueing. :meth:`close` ends the
    stream: pending notifications still deliver, then :meth:`get` returns
    ``None`` and async iteration stops.

    The synchronous read API (:meth:`poll`, :meth:`drain`, ``pending()``)
    mirrors :class:`~repro.integrator.channel.Channel`, so the channel also
    works under the synchronous integrators in tests.
    """

    def __init__(self, name: str = "", capacity: int = 0) -> None:
        if capacity < 0:
            raise WarehouseError(f"channel capacity must be non-negative: {capacity}")
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Tuple[Notification, float]] = deque()
        self._sequence = itertools.count(1)
        self._delivered = 0
        self._closed = False
        self._getters: Deque["asyncio.Future"] = deque()
        self._putters: Deque["asyncio.Future"] = deque()
        #: Times an async ``send`` had to wait for space (backpressure events).
        self.backpressure_waits = 0
        #: Optional callable observing each delivery's lag in seconds.
        self.lag_observer: Optional[Callable[[float], None]] = None

    # -- producing -----------------------------------------------------

    def publish(self, source: str, update: Update) -> Notification:
        """Append a notification synchronously (fails fast when full)."""
        if self._closed:
            raise WarehouseError(f"channel {self.name!r} is closed")
        if self.capacity and len(self._queue) >= self.capacity:
            raise WarehouseError(
                f"channel {self.name!r} is full (capacity {self.capacity}); "
                "use 'await send(...)' for backpressure"
            )
        notification = Notification(source, next(self._sequence), update)
        self._queue.append((notification, time.monotonic()))
        self._wake(self._getters)
        return notification

    async def send(self, source: str, update: Update) -> Notification:
        """Append a notification, suspending while the channel is full."""
        while (
            self.capacity
            and len(self._queue) >= self.capacity
            and not self._closed
        ):
            self.backpressure_waits += 1
            await self._wait(self._putters)
        return self.publish(source, update)

    def close(self) -> None:
        """End the stream: no more publishes; drained getters see ``None``."""
        self._closed = True
        self._wake(self._getters)
        self._wake(self._putters)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- consuming -----------------------------------------------------

    def pending(self) -> int:
        """Number of undelivered notifications."""
        return len(self._queue)

    def delivered(self) -> int:
        """Number of notifications delivered so far."""
        return self._delivered

    def poll(self) -> Optional[Notification]:
        """Deliver the oldest pending notification, or ``None``."""
        if not self._queue:
            return None
        notification, published = self._queue.popleft()
        self._delivered += 1
        if self.lag_observer is not None:
            self.lag_observer(time.monotonic() - published)
        self._wake(self._putters)
        return notification

    def drain(self, limit: Optional[int] = None) -> List[Notification]:
        """Deliver up to ``limit`` notifications pending *now* (all by default)."""
        if limit is not None and limit < 0:
            raise WarehouseError(f"drain limit must be non-negative: {limit}")
        count = len(self._queue)
        if limit is not None:
            count = min(count, limit)
        out: List[Notification] = []
        for _ in range(count):
            notification = self.poll()
            assert notification is not None
            out.append(notification)
        return out

    async def get(self) -> Optional[Notification]:
        """Await the next notification; ``None`` once closed and drained."""
        while not self._queue:
            if self._closed:
                return None
            await self._wait(self._getters)
        return self.poll()

    async def next_batch(self, limit: Optional[int] = None) -> Optional[List[Notification]]:
        """Await at least one notification, then take everything pending.

        The pending count is snapshotted after the first delivery, so a
        producer racing the drain cannot extend the batch unboundedly.
        Returns ``None`` once the channel is closed and drained.
        """
        first = await self.get()
        if first is None:
            return None
        batch = [first]
        if limit is None:
            batch.extend(self.drain())
        elif limit > 1:
            batch.extend(self.drain(limit - 1))
        return batch

    def __aiter__(self) -> "AsyncChannel":
        return self

    async def __anext__(self) -> Notification:
        notification = await self.get()
        if notification is None:
            raise StopAsyncIteration
        return notification

    def __iter__(self):
        """Synchronous drain-iteration (snapshot semantics, like Channel)."""
        for _ in range(len(self._queue)):
            notification = self.poll()
            assert notification is not None
            yield notification

    # -- waiter plumbing ----------------------------------------------

    @staticmethod
    async def _wait(waiters: "Deque[asyncio.Future]") -> None:
        future = asyncio.get_running_loop().create_future()
        waiters.append(future)
        try:
            await future
        finally:
            if not future.done():
                future.cancel()
            try:
                waiters.remove(future)
            except ValueError:
                pass

    @staticmethod
    def _wake(waiters: "Deque[asyncio.Future]") -> None:
        for future in waiters:
            if not future.done():
                future.set_result(None)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"AsyncChannel({self.name!r}, {len(self._queue)} pending, "
            f"{self._delivered} delivered, {state})"
        )


class AsyncSource(Source):
    """An autonomous source whose async mutators report with delivery lag.

    The synchronous :class:`~repro.integrator.source.Source` API still
    works (its ``apply`` publishes immediately via the channel's sync
    path); the ``*_async`` mutators apply locally *first*, then suspend for
    ``delay`` seconds before reporting through :meth:`AsyncChannel.send` —
    by delivery time the source state has moved on, which is exactly the
    window the naive integrator trips over and Theorem 4.1 does not.
    """

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        relations: Sequence[str],
        channel: Optional[AsyncChannel] = None,
        delay: float = 0.0,
    ) -> None:
        if delay < 0:
            raise WarehouseError(f"source {name!r}: delay must be non-negative")
        super().__init__(
            name,
            catalog,
            relations,
            channel if channel is not None else AsyncChannel(name=name),
        )
        self.delay = delay

    async def apply_async(self, update: Update) -> Update:
        """Apply locally, lag, then report the effective update."""
        for delta in update:
            self._require_owned(delta.relation)
        effective = self.database.apply(update)
        if not effective.is_empty():
            if self.delay:
                await asyncio.sleep(self.delay)
            await self.channel.send(self.name, effective)
        return effective

    async def insert_async(self, relation: str, rows) -> Update:
        """Insert rows; report asynchronously after the configured lag."""
        self._require_owned(relation)
        attrs = self._catalog[relation].attributes
        return await self.apply_async(Update.insert(relation, attrs, rows))

    async def delete_async(self, relation: str, rows) -> Update:
        """Delete rows; report asynchronously after the configured lag."""
        self._require_owned(relation)
        attrs = self._catalog[relation].attributes
        return await self.apply_async(Update.delete(relation, attrs, rows))

    def __repr__(self) -> str:
        return (
            f"AsyncSource({self.name!r}, relations={list(self.relations)}, "
            f"delay={self.delay})"
        )


class AsyncConcurrentIntegrator:
    """Complement integrator over a sharded warehouse, one worker per source.

    Workers fold each channel's pending notifications into one net update
    (``Update.compose``), then refresh only the shards that update routes
    to, holding those shards' locks for the whole fold-refresh-commit
    cycle. Locks are acquired in sorted shard order, so overlapping batches
    serialize without deadlock while disjoint batches proceed in parallel.
    An explicit ``await asyncio.sleep(0)`` between per-shard refreshes
    forces scheduling points mid-batch — adversarial interleavings in tests
    exercise exactly the window the MVCC commit protocol protects.
    """

    def __init__(
        self,
        catalog: Catalog,
        views: Sequence[View],
        routings: Sequence[ShardRouting] = (),
        shards: Optional[int] = None,
        **specify_options,
    ) -> None:
        self.warehouse = ShardedWarehouse.specify(
            catalog, views, routings=routings, shards=shards, **specify_options
        )
        self._channels: Dict[str, AsyncChannel] = {}
        self._locks: Optional[List["asyncio.Lock"]] = None
        self._processed = 0

    # -- setup ---------------------------------------------------------

    def attach(self, source: Source) -> None:
        """Supervise a source's channel (one drain worker in :meth:`run`)."""
        channel = source.channel
        if not isinstance(channel, AsyncChannel):
            raise WarehouseError(
                f"source {source.name!r} must report through an AsyncChannel"
            )
        if source.name in self._channels:
            raise WarehouseError(f"source {source.name!r} attached twice")
        metrics = self.metrics
        channel.lag_observer = metrics.histogram(
            "integrator.delivery_lag_seconds"
        ).observe
        self._channels[source.name] = channel

    def initialize(self, sources: Sequence[Source]) -> None:
        """The initial extract, plus channel attachment — the only source read."""
        self.warehouse.initialize(_source_state(sources))
        for source in sources:
            self.attach(source)

    def _shard_locks(self) -> List["asyncio.Lock"]:
        # Locks are created lazily inside the running loop (pre-3.10
        # asyncio primitives bind their event loop at construction).
        if self._locks is None:
            self._locks = [
                asyncio.Lock() for _ in range(self.warehouse.router.shards)
            ]
        return self._locks

    # -- folding -------------------------------------------------------

    async def process(self, notification: Notification) -> None:
        """Fold one reported update in — no source access."""
        await self.process_batch((notification,))

    async def process_batch(self, notifications: Sequence[Notification]) -> int:
        """Fold a batch as one net update under the touched shards' locks."""
        notifications = list(notifications)
        if not notifications:
            return 0
        net: Optional[Update] = None
        for notification in notifications:
            net = (
                notification.update
                if net is None
                else net.compose(notification.update)
            )
        assert net is not None
        metrics = self.metrics
        parts = self.warehouse.split(net)
        if parts:
            indices = sorted(parts)
            locks = self._shard_locks()
            # Under REPRO_CHECK_RACES=1 the tracker verifies the protocol
            # the W01xx lint states statically: ascending lock order, no
            # overlapping uncommitted refreshes, commit inside the locks.
            tracker = self.warehouse.race_tracker
            for index in indices:
                await locks[index].acquire()
                if tracker is not None:
                    tracker.note_acquire(index)
            try:
                for index in indices:
                    self.warehouse.apply_to_shard(index, parts[index])
                    # Scheduling point between shard refreshes: lets other
                    # workers and readers run mid-batch, which is exactly
                    # what the commit protocol must tolerate.
                    await asyncio.sleep(0)
                self.warehouse.commit(indices, net)
            finally:
                for index in indices:
                    locks[index].release()
                    if tracker is not None:
                        tracker.note_release(index)
        self._processed += len(notifications)
        metrics.counter("integrator.notifications").inc(len(notifications))
        for notification in notifications:
            for delta in notification.update:
                metrics.counter(f"integrator.updates.{delta.relation}").inc()
        metrics.counter("integrator.batches").inc()
        metrics.histogram("integrator.batch_size").observe(len(notifications))
        return len(notifications)

    async def _drain_loop(
        self, name: str, channel: AsyncChannel, max_batch: Optional[int]
    ) -> None:
        gauge = self.metrics.gauge(f"integrator.channel_pending.{name}")
        while True:
            batch = await channel.next_batch(max_batch)
            if batch is None:
                gauge.set(0)
                return
            await self.process_batch(batch)
            gauge.set(channel.pending())

    async def run(self, max_batch: Optional[int] = None) -> int:
        """Drain every attached channel until all are closed.

        One concurrent worker per source channel; returns the total number
        of notifications processed by this call.
        """
        if not self._channels:
            raise WarehouseError("no sources attached; call initialize()/attach()")
        before = self._processed
        await asyncio.gather(
            *(
                self._drain_loop(name, channel, max_batch)
                for name, channel in self._channels.items()
            )
        )
        return self._processed - before

    # -- reading -------------------------------------------------------

    def snapshot(self) -> ShardedSnapshot:
        """The newest committed cross-shard snapshot (MVCC read handle)."""
        return self.warehouse.snapshot()

    def relation(self, name: str) -> Relation:
        """The assembled global image of one warehouse relation."""
        return self.warehouse.relation(name)

    @property
    def processed(self) -> int:
        """Notifications processed so far."""
        return self._processed

    @property
    def metrics(self):
        """The sharded warehouse's cross-shard metrics registry.

        The integrator's own family lives here: ``integrator.notifications``,
        ``integrator.batches``, ``integrator.batch_size``, per-relation
        ``integrator.updates.<relation>``, per-source
        ``integrator.channel_pending.<source>`` gauges, and the
        ``integrator.delivery_lag_seconds`` histogram.
        """
        return self.warehouse.metrics

    def __repr__(self) -> str:
        return (
            f"AsyncConcurrentIntegrator({len(self._channels)} sources, "
            f"{self.warehouse.router.shards} shards, "
            f"{self._processed} notifications processed)"
        )
