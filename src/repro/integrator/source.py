"""Sources: autonomous databases that report their changes.

A :class:`Source` owns a :class:`~repro.storage.database.Database` (possibly
covering only a subset of the global catalog's relations — the paper's
Figure 1 has a Sales database and a Company database over one conceptual
schema) and publishes every applied update to a channel as a
:class:`~repro.integrator.channel.Notification`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import SchemaError
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.update import Update
from repro.integrator.channel import Channel


class Source:
    """A named, autonomous source database.

    Parameters
    ----------
    name:
        Source name (appears in notifications).
    catalog:
        The *global* catalog; the source hosts ``relations`` of it.
    relations:
        The relation names this source owns. Constraint checking at the
        source is restricted to constraints fully local to these relations —
        autonomy means a source cannot validate cross-source inclusions.
    channel:
        Where applied updates are reported.
    """

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        relations: Sequence[str],
        channel: Optional[Channel] = None,
    ) -> None:
        self.name = name
        self.relations = tuple(relations)
        for relation in self.relations:
            if relation not in catalog:
                raise SchemaError(f"source {name!r}: unknown relation {relation!r}")
        self._catalog = _restrict_catalog(catalog, self.relations)
        self.database = Database(self._catalog)
        self.channel = channel if channel is not None else Channel()

    # ------------------------------------------------------------------

    def load(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        """Bulk-load initial data (not reported — part of the initial extract)."""
        self._require_owned(relation)
        self.database.load(relation, rows)

    def relation(self, name: str) -> Relation:
        """Current contents of an owned relation."""
        self._require_owned(name)
        return self.database[name]

    def apply(self, update: Update) -> Update:
        """Apply an update locally and report its effective form."""
        for delta in update:
            self._require_owned(delta.relation)
        effective = self.database.apply(update)
        if not effective.is_empty():
            self.channel.publish(self.name, effective)
        return effective

    def insert(self, relation: str, rows: Iterable[Sequence[object]]) -> Update:
        """Insert rows and report the effective update."""
        self._require_owned(relation)
        attrs = self._catalog[relation].attributes
        return self.apply(Update.insert(relation, attrs, rows))

    def delete(self, relation: str, rows: Iterable[Sequence[object]]) -> Update:
        """Delete rows and report the effective update."""
        self._require_owned(relation)
        attrs = self._catalog[relation].attributes
        return self.apply(Update.delete(relation, attrs, rows))

    def _require_owned(self, relation: str) -> None:
        if relation not in self.relations:
            raise SchemaError(
                f"source {self.name!r} does not own relation {relation!r}"
            )

    def __repr__(self) -> str:
        return f"Source({self.name!r}, relations={list(self.relations)})"


def _restrict_catalog(catalog: Catalog, relations: Sequence[str]) -> Catalog:
    """The sub-catalog a source can see: its relations and local constraints."""
    owned = set(relations)
    restricted = Catalog()
    for schema in catalog.schemas():
        if schema.name in owned:
            restricted.add_relation(schema)
    for ind in catalog.inclusions():
        if ind.lhs in owned and ind.rhs in owned:
            restricted.add_inclusion(ind)
    for name in relations:
        for check in catalog.checks(name):
            restricted.add_check(name, check)
    return restricted
