"""Dict-encoded columnar storage and batch-at-a-time kernels.

The tuple-set :class:`~repro.storage.relation.Relation` stores a relation as
a ``frozenset`` of value tuples; every operator then pays Python-level work
*per row* (a compiled predicate call, a key-tuple allocation, a hash probe).
This module is the physical layer that removes that cost: a
:class:`ColumnarTable` stores the same relation as

* one **code column** per attribute — a flat ``list`` of small ints,
* a process-wide **dictionary** interning every value ever seen
  (``value -> code``), so equal values always carry equal codes and joins,
  unions, differences, and equality selections compare plain ints,
* an optional **row-validity bitmap** — deletions patched into a cached
  table mark rows dead in O(delta) instead of rebuilding the columns.

Kernels are *batch-at-a-time*: each one processes whole columns with
comprehensions and C-level primitives (``zip``, ``set``, ``dict.fromkeys``)
— never a Python ``for`` statement over rows. ``scripts/check_hotpath.py``
enforces this structurally (rules C1/C2): loop statements are confined to
the facade (encode / decode / patch), and value tuples are materialized
only at the :meth:`ColumnarTable.to_relation` boundary.

Set semantics are preserved throughout: every live row of a table is
distinct, mirroring the frozenset representation exactly. The Hypothesis
suite ``tests/storage/test_columnar_equivalence.py`` asserts extensional
equality of every kernel against the tuple-set implementation.

Engine selection
----------------
``REPRO_ENGINE=columnar`` (read once at import; see :func:`resolve_engine`)
routes :func:`repro.algebra.evaluator.evaluate` through the columnar
kernels by default. Callers can also pass ``engine="columnar"`` explicitly
(e.g. ``Warehouse(spec, engine="columnar")``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, ExpressionError
from repro.algebra.conditions import (
    _OPS,
    And,
    AttributeRef,
    Comparison,
    Condition,
    Constant,
    FalseCondition,
    Not,
    Or,
    TrueCondition,
)
from repro.storage.relation import Relation

# Engine selection lives in the leaf module repro.storage.engine (no
# import cycle); re-exported here because "the columnar engine" is where
# callers naturally look for it.
from repro.storage.engine import (  # noqa: F401  (re-exports)
    DEFAULT_ENGINE,
    ENGINE_COLUMNAR,
    ENGINE_ENV,
    ENGINE_TUPLE,
    resolve_engine,
)

# ----------------------------------------------------------------------
# The process-wide dictionary (value interning pool)
# ----------------------------------------------------------------------

#: value -> code. Append-only; equal values share one code process-wide,
#: which is what lets every kernel compare codes instead of values.
_CODES: Dict[object, int] = {}
#: code -> value (the decode side of the dictionary).
_VALUES: List[object] = []

#: Sentinel code returned for values never interned (matches no real code).
_UNKNOWN = -1


def intern_value(value: object) -> int:
    """The dictionary code of ``value``, assigning a fresh one if new."""
    code = _CODES.get(value)
    if code is None:
        code = len(_VALUES)
        _CODES[value] = code
        _VALUES.append(value)
    return code


def dictionary_size() -> int:
    """Distinct values interned so far (a process-wide gauge)."""
    return len(_VALUES)


# ----------------------------------------------------------------------
# Kernel invocation counters (fed into ``evaluator.columnar.*`` metrics)
# ----------------------------------------------------------------------

KERNEL_CALLS: Dict[str, int] = {}


def _count(kernel: str) -> None:
    KERNEL_CALLS[kernel] = KERNEL_CALLS.get(kernel, 0) + 1


def kernel_totals() -> Dict[str, int]:
    """A snapshot of cumulative kernel invocation counts."""
    return dict(KERNEL_CALLS)


_NO_POSITIONS: Tuple[int, ...] = ()


def _group(keys: Sequence[object]) -> Dict[object, List[int]]:
    """Positions grouped by key — the hash side of a join.

    Built with a consumed comprehension: one C-level ``dict.setdefault``
    per key, no Python loop statement on the kernel path.
    """
    buckets: Dict[object, List[int]] = {}
    setdefault = buckets.setdefault
    [setdefault(key, []).append(position) for position, key in enumerate(keys)]
    return buckets


class ColumnarTable:
    """A relation as dictionary-coded columns (set semantics, immutable).

    Parameters
    ----------
    attributes:
        Attribute names, order-significant for column layout.
    columns:
        One code list per attribute, all the same length.
    live:
        Number of valid rows (equals the column length when ``valid`` is
        ``None``).
    valid:
        Optional row-validity bitmap (``bytearray`` of 0/1). ``None`` means
        every physical row is live. Kernels always densify first; the
        bitmap exists so facade-level delta patching can delete in
        O(delta).

    Invariant: the live rows are pairwise distinct (set semantics).
    """

    __slots__ = (
        "attributes",
        "columns",
        "valid",
        "_live",
        "_dense",
        "_positions",
        "_relation",
    )

    def __init__(
        self,
        attributes: Sequence[str],
        columns: Sequence[List[int]],
        live: int,
        valid: Optional[bytearray] = None,
    ) -> None:
        self.attributes = tuple(attributes)
        self.columns: Tuple[List[int], ...] = tuple(columns)
        self.valid = valid
        self._live = live
        self._dense: Optional["ColumnarTable"] = None
        self._positions: Optional[Dict[Tuple[int, ...], int]] = None
        self._relation: Optional[Relation] = None

    # ------------------------------------------------------------------
    # Facade: encode / decode / patch (row loops live here, nowhere else)
    # ------------------------------------------------------------------

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarTable":
        """Encode a tuple-set relation into dictionary-coded columns."""
        attrs = relation.attributes
        rows = list(relation.rows)
        if not attrs:
            table = cls(attrs, (), len(rows))
            table._relation = relation
            return table
        if not rows:
            table = cls(attrs, tuple([] for _ in attrs), 0)
            table._relation = relation
            return table
        codes = _CODES
        values = _VALUES
        columns: List[List[int]] = []
        for column_values in zip(*rows):
            column: List[int] = []
            append = column.append
            for value in column_values:
                code = codes.get(value)
                if code is None:
                    code = len(values)
                    codes[value] = code
                    values.append(value)
                append(code)
            columns.append(column)
        table = cls(attrs, tuple(columns), len(rows))
        table._relation = relation
        return table

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "ColumnarTable":
        """The empty table over ``attributes``."""
        attrs = tuple(attributes)
        return cls(attrs, tuple([] for _ in attrs), 0)

    def to_relation(self) -> Relation:
        """Late materialization: decode back to a tuple-set ``Relation``.

        The result is cached on the (dense) table and carries this table as
        its columnar twin, so repeated materialization of a cached
        sub-expression result is free and the twin survives into delta
        patching.
        """
        dense = self._as_dense()
        relation = dense._relation
        if relation is not None:
            return relation
        values = _VALUES
        if not dense.attributes:
            rows = frozenset([()]) if dense._live else frozenset()
        else:
            decoded = [[values[code] for code in column] for column in dense.columns]
            rows = frozenset(zip(*decoded))
        relation = Relation._raw(dense.attributes, rows)
        if relation._columnar is None:
            relation._columnar = dense
        dense._relation = relation
        return relation

    def patched(
        self,
        added_rows: Iterable[Sequence[object]],
        removed_rows: Iterable[Sequence[object]],
    ) -> "ColumnarTable":
        """Copy-on-patch: a new table with a row delta folded in.

        ``added_rows`` / ``removed_rows`` are value rows aligned to this
        table's attribute order (the shape ``Relation._derive_caches``
        passes). Deletions flip the validity bitmap (O(delta) after the
        position index is warm); insertions append. When more than half of
        the physical rows are dead the result is compacted.
        """
        attrs = self.attributes
        if not attrs:
            live = self._live
            live -= sum(1 for _ in removed_rows) if live else 0
            live = min(1, max(live, 0) + sum(1 for _ in added_rows))
            return ColumnarTable(attrs, (), live)
        total = len(self.columns[0])
        index = dict(self._ensure_positions())
        columns = [list(column) for column in self.columns]
        valid = (
            bytearray(self.valid)
            if self.valid is not None
            else bytearray(b"\x01" * total)
        )
        live = self._live
        codes = _CODES
        values = _VALUES
        for row in removed_rows:
            key = tuple(codes.get(value, _UNKNOWN) for value in row)
            position = index.pop(key, None)
            if position is not None and valid[position]:
                valid[position] = 0
                live -= 1
        for row in added_rows:
            key_list: List[int] = []
            for value in row:
                code = codes.get(value)
                if code is None:
                    code = len(values)
                    codes[value] = code
                    values.append(value)
                key_list.append(code)
            key = tuple(key_list)
            existing = index.get(key)
            if existing is not None and valid[existing]:
                continue
            for column, code in zip(columns, key):
                column.append(code)
            valid.append(1)
            index[key] = len(valid) - 1
            live += 1
        total = len(valid)
        if live == total:
            patched = ColumnarTable(attrs, tuple(columns), live)
            patched._positions = index
            return patched
        if live * 2 < total:
            keep = [i for i, flag in enumerate(valid) if flag]
            compacted = tuple([column[i] for i in keep] for column in columns)
            return ColumnarTable(attrs, compacted, live)
        patched = ColumnarTable(attrs, tuple(columns), live, valid)
        patched._positions = index
        return patched

    def _ensure_positions(self) -> Dict[Tuple[int, ...], int]:
        """The row-key -> physical-position index (built lazily, cached)."""
        positions = self._positions
        if positions is None:
            cols = self.columns
            if not cols:
                positions = {}
            elif self.valid is None:
                positions = dict(zip(zip(*cols), range(len(cols[0]))))
            else:
                valid = self.valid
                positions = {}
                for i, key in enumerate(zip(*cols)):
                    if valid[i]:
                        positions[key] = i
            self._positions = positions
        return positions

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attribute_set(self) -> frozenset:
        """Attribute names as a frozen set."""
        return frozenset(self.attributes)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return bool(self._live)

    def physical_rows(self) -> int:
        """Physical row slots, including bitmap-dead ones."""
        if not self.columns:
            return self._live
        return len(self.columns[0])

    def has_dead_rows(self) -> bool:
        """Whether a validity bitmap with dead rows is present."""
        return self.valid is not None and self._live != len(self.valid)

    def __repr__(self) -> str:
        dead = self.physical_rows() - self._live
        suffix = f", {dead} dead" if dead else ""
        return f"ColumnarTable({self.attributes}, {self._live} rows{suffix})"

    # ------------------------------------------------------------------
    # Dense view (kernels never see the bitmap)
    # ------------------------------------------------------------------

    def _as_dense(self) -> "ColumnarTable":
        """This table with dead rows dropped (cached; identity when clean)."""
        if self.valid is None:
            return self
        dense = self._dense
        if dense is None:
            if self._live == len(self.valid):
                dense = ColumnarTable(self.attributes, self.columns, self._live)
            else:
                valid = self.valid
                keep = [i for i, flag in enumerate(valid) if flag]
                columns = tuple([column[i] for i in keep] for column in self.columns)
                dense = ColumnarTable(self.attributes, columns, len(keep))
            self._dense = dense
        return dense

    def _take(self, positions: Sequence[int]) -> "ColumnarTable":
        """A new table of the given row positions (dense tables only)."""
        columns = tuple([column[i] for i in positions] for column in self.columns)
        return ColumnarTable(self.attributes, columns, len(positions))

    def _column(self, name: str) -> List[int]:
        try:
            return self.columns[self.attributes.index(name)]
        except ValueError:
            raise ExpressionError(
                f"condition attribute {name!r} not among {self.attributes}"
            ) from None

    def _row_keys(self) -> Sequence[object]:
        """One hashable key per row: the code itself for single columns,
        a code tuple otherwise (dense tables only)."""
        cols = self.columns
        if not cols:
            return [()] * self._live
        if len(cols) == 1:
            return cols[0]
        return list(zip(*cols))

    def _key_column(self, attrs: Sequence[str]) -> Sequence[object]:
        """Join keys over ``attrs`` (dense tables only; sorted-attr order)."""
        cols = [self.columns[self.attributes.index(a)] for a in attrs]
        if len(cols) == 1:
            return cols[0]
        return list(zip(*cols))

    def _aligned_to(self, target: "ColumnarTable") -> "ColumnarTable":
        """This table with columns re-laid-out in ``target``'s order."""
        dense = self._as_dense()
        if dense.attributes == target.attributes:
            return dense
        if frozenset(dense.attributes) != frozenset(target.attributes):
            raise ExpressionError(
                "attribute sets differ: "
                f"{sorted(target.attributes)} vs {sorted(dense.attributes)}"
            )
        index = dense.attributes.index
        columns = tuple(dense.columns[index(a)] for a in target.attributes)
        aligned = ColumnarTable(target.attributes, columns, dense._live)
        return aligned

    # ------------------------------------------------------------------
    # Kernels (batch-at-a-time; no per-row loop statements — rule C1)
    # ------------------------------------------------------------------

    def select(self, condition: Condition) -> "ColumnarTable":
        """Selection: predicate evaluation over dictionary codes.

        Equality against a constant is one dictionary probe plus an int
        filter; ordered comparisons are decided once per *distinct* code
        and rows are filtered by code membership.
        """
        _count("select")
        dense = self._as_dense()
        positions = _matching_positions(dense, condition)
        if positions is None:
            return dense
        return dense._take(sorted(positions))

    def project(self, attributes: Sequence[str]) -> "ColumnarTable":
        """Projection ``pi_Z`` (set semantics; dedupe via ``dict.fromkeys``)."""
        _count("project")
        dense = self._as_dense()
        attrs = tuple(attributes)
        missing = set(attrs) - set(dense.attributes)
        if missing:
            raise ExpressionError(
                f"cannot project onto {sorted(missing)}: not attributes of "
                f"{dense.attributes}"
            )
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in projection {attrs}")
        if attrs == dense.attributes:
            return dense
        index = dense.attributes.index
        cols = [dense.columns[index(a)] for a in attrs]
        if len(attrs) == len(dense.attributes):
            # A permutation: rows stay distinct, no dedupe needed.
            return ColumnarTable(attrs, tuple(cols), dense._live)
        if len(cols) == 1:
            unique = list(dict.fromkeys(cols[0]))
            return ColumnarTable(attrs, (unique,), len(unique))
        unique_rows = list(dict.fromkeys(zip(*cols)))
        if not unique_rows:
            return ColumnarTable.empty(attrs)
        columns = tuple(list(column) for column in zip(*unique_rows))
        return ColumnarTable(attrs, columns, len(unique_rows))

    def select_project(
        self, condition: Condition, attributes: Sequence[str]
    ) -> "ColumnarTable":
        """Fused ``pi_Z(sigma_c(e))`` in one pass (the compiler's kernel).

        The predicate is decided over dictionary codes exactly as in
        :meth:`select`, but instead of materializing the filtered table the
        surviving positions are gathered straight into the projected
        columns — the intermediate selection result is never built.
        """
        _count("select_project")
        dense = self._as_dense()
        attrs = tuple(attributes)
        missing = set(attrs) - set(dense.attributes)
        if missing:
            raise ExpressionError(
                f"cannot project onto {sorted(missing)}: not attributes of "
                f"{dense.attributes}"
            )
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in projection {attrs}")
        positions = _matching_positions(dense, condition)
        if positions is None:
            return dense.project(attrs)
        taken = sorted(positions)
        index = dense.attributes.index
        cols = [dense.columns[index(a)] for a in attrs]
        if len(attrs) == len(dense.attributes):
            # A permutation: rows stay distinct, no dedupe needed.
            picked = tuple([column[i] for i in taken] for column in cols)
            return ColumnarTable(attrs, picked, len(taken))
        if len(cols) == 1:
            column = cols[0]
            unique = list(dict.fromkeys(column[i] for i in taken))
            return ColumnarTable(attrs, (unique,), len(unique))
        unique_rows = list(
            dict.fromkeys(tuple(column[i] for column in cols) for i in taken)
        )
        if not unique_rows:
            return ColumnarTable.empty(attrs)
        columns = tuple(list(column) for column in zip(*unique_rows))
        return ColumnarTable(attrs, columns, len(unique_rows))

    def rename(self, mapping: Mapping[str, str]) -> "ColumnarTable":
        """Attribute renaming (columns are shared, never copied)."""
        _count("rename")
        unknown = set(mapping) - set(self.attributes)
        if unknown:
            raise ExpressionError(
                f"cannot rename {sorted(unknown)}: not attributes of {self.attributes}"
            )
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        if len(set(new_attrs)) != len(new_attrs):
            raise ExpressionError(f"renaming {dict(mapping)} collides on {new_attrs}")
        renamed = ColumnarTable(new_attrs, self.columns, self._live, self.valid)
        return renamed

    def join(self, other: "ColumnarTable") -> "ColumnarTable":
        """Natural hash join on encoded key columns.

        Builds positional buckets on the smaller side, probes with the
        larger, then gathers output columns by position — value tuples are
        never formed. Single shared attributes use the raw code column as
        the key (no tuple allocation at all).
        """
        _count("join")
        left = self._as_dense()
        right = other._as_dense()
        lattrs, rattrs = left.attributes, right.attributes
        left_set = frozenset(lattrs)
        right_set = frozenset(rattrs)
        shared = tuple(a for a in lattrs if a in right_set)
        extras = tuple(a for a in rattrs if a not in left_set)
        out_attrs = lattrs + extras
        n_left, n_right = left._live, right._live
        if n_left == 0 or n_right == 0:
            return ColumnarTable.empty(out_attrs)
        if not shared:
            # Cartesian product (standard natural-join degeneration).
            left_idx: List[int] = [i for i in range(n_left) for _ in range(n_right)]
            right_idx: List[int] = list(range(n_right)) * n_left
        else:
            shared_sorted = tuple(sorted(shared))
            left_keys = left._key_column(shared_sorted)
            right_keys = right._key_column(shared_sorted)
            if n_left <= n_right:
                get = _group(left_keys).get
                left_idx = [j for k in right_keys for j in get(k, _NO_POSITIONS)]
                right_idx = [
                    i for i, k in enumerate(right_keys) for _ in get(k, _NO_POSITIONS)
                ]
            else:
                get = _group(right_keys).get
                left_idx = [
                    i for i, k in enumerate(left_keys) for _ in get(k, _NO_POSITIONS)
                ]
                right_idx = [j for k in left_keys for j in get(k, _NO_POSITIONS)]
        left_columns = [[column[i] for i in left_idx] for column in left.columns]
        rindex = rattrs.index
        right_columns = [
            [right.columns[rindex(a)][j] for j in right_idx] for a in extras
        ]
        return ColumnarTable(
            out_attrs, tuple(left_columns + right_columns), len(left_idx)
        )

    def semi_join(self, other: "ColumnarTable") -> "ColumnarTable":
        """Semi-join ``self ⋉ other`` on encoded keys (never materializes)."""
        _count("semi_join")
        left = self._as_dense()
        right = other._as_dense()
        shared = tuple(a for a in left.attributes if a in frozenset(right.attributes))
        if not shared:
            return left if right._live else left._take(())
        shared_sorted = tuple(sorted(shared))
        keys = set(right._key_column(shared_sorted))
        left_keys = left._key_column(shared_sorted)
        return left._take([i for i, k in enumerate(left_keys) if k in keys])

    def anti_join(self, other: "ColumnarTable") -> "ColumnarTable":
        """Anti-join ``self ▷ other`` on encoded keys."""
        _count("anti_join")
        left = self._as_dense()
        right = other._as_dense()
        shared = tuple(a for a in left.attributes if a in frozenset(right.attributes))
        if not shared:
            return left._take(()) if right._live else left
        shared_sorted = tuple(sorted(shared))
        keys = set(right._key_column(shared_sorted))
        left_keys = left._key_column(shared_sorted)
        return left._take([i for i, k in enumerate(left_keys) if k not in keys])

    def union(self, other: "ColumnarTable") -> "ColumnarTable":
        """Set union; an ineffective union returns ``self`` (identity)."""
        _count("union")
        left = self._as_dense()
        if not left.attributes:
            return left if left._live else other._as_dense()
        right = other._aligned_to(left)
        if right._live == 0:
            return left
        left_keys = left._row_keys()
        seen = set(left_keys)
        added = [k for k in dict.fromkeys(right._row_keys()) if k not in seen]
        if not added:
            return left
        if len(left.columns) == 1:
            column = left.columns[0] + added
            return ColumnarTable(left.attributes, (column,), len(column))
        extra_columns = list(zip(*added))
        columns = tuple(
            list(column) + list(extra)
            for column, extra in zip(left.columns, extra_columns)
        )
        return ColumnarTable(left.attributes, columns, left._live + len(added))

    def difference(self, other: "ColumnarTable") -> "ColumnarTable":
        """Set difference; an ineffective difference returns ``self``."""
        _count("difference")
        left = self._as_dense()
        if not left.attributes:
            right_zero = other._as_dense()
            return left._take(()) if (left._live and right_zero._live) else left
        right = other._aligned_to(left)
        if right._live == 0 or left._live == 0:
            return left
        doomed = set(right._row_keys())
        keep = [i for i, k in enumerate(left._row_keys()) if k not in doomed]
        if len(keep) == left._live:
            return left
        return left._take(keep)

    def intersection(self, other: "ColumnarTable") -> "ColumnarTable":
        """Set intersection; attribute sets must agree."""
        _count("intersection")
        left = self._as_dense()
        if not left.attributes:
            right_zero = other._as_dense()
            return left if (left._live and right_zero._live) else left._take(())
        right = other._aligned_to(left)
        wanted = set(right._row_keys())
        keep = [i for i, k in enumerate(left._row_keys()) if k in wanted]
        if len(keep) == left._live:
            return left
        return left._take(keep)


# ----------------------------------------------------------------------
# Predicate evaluation over dictionary codes
# ----------------------------------------------------------------------


def _matching_positions(
    table: ColumnarTable, condition: Condition
) -> Optional[Set[int]]:
    """Live row positions satisfying ``condition`` (``None`` means *all*).

    Boolean structure maps to set algebra over position sets; atomic
    comparisons are decided over dictionary codes (see
    :func:`_comparison_positions`).
    """
    if isinstance(condition, TrueCondition):
        return None
    if isinstance(condition, FalseCondition):
        return set()
    if isinstance(condition, Comparison):
        return _comparison_positions(table, condition)
    if isinstance(condition, And):
        parts = [_matching_positions(table, part) for part in condition.parts]
        narrowed = [part for part in parts if part is not None]
        if not narrowed:
            return None
        return set.intersection(*narrowed)
    if isinstance(condition, Or):
        parts = [_matching_positions(table, part) for part in condition.parts]
        if any(part is None for part in parts):
            return None
        return set.union(*parts)  # type: ignore[arg-type]
    if isinstance(condition, Not):
        inner = _matching_positions(table, condition.part)
        if inner is None:
            return set()
        return set(range(len(table))) - inner
    raise EvaluationError(
        f"unknown condition node {type(condition).__name__} in columnar select"
    )


def _comparison_positions(
    table: ColumnarTable, comparison: Comparison
) -> Optional[Set[int]]:
    """Positions satisfying one atomic comparison, via codes.

    ``attr = const`` is a single dictionary probe plus an int filter;
    ordered comparisons are evaluated once per distinct code (the
    dictionary-encoding win: cost scales with the column's cardinality,
    not its length). Comparison semantics — including the total-order
    fallback for mixed types — are exactly the tuple path's ``_OPS``.
    """
    left, op, right = comparison.left, comparison.op, comparison.right
    if isinstance(left, Constant) and isinstance(right, Constant):
        return None if _OPS[op](left.value, right.value) else set()
    if isinstance(left, Constant):
        return _comparison_positions(table, comparison.flipped())
    assert isinstance(left, AttributeRef)
    column = table._column(left.name)
    if isinstance(right, Constant):
        value = right.value
        if op == "=":
            code = _CODES.get(value)
            if code is None:
                return set()
            return {i for i, c in enumerate(column) if c == code}
        if op == "!=":
            code = _CODES.get(value)
            if code is None:
                return None
            return {i for i, c in enumerate(column) if c != code}
        compare = _OPS[op]
        values = _VALUES
        good = {c for c in set(column) if compare(values[c], value)}
        return {i for i, c in enumerate(column) if c in good}
    other = table._column(right.name)
    if op == "=":
        return {i for i, pair in enumerate(zip(column, other)) if pair[0] == pair[1]}
    if op == "!=":
        return {i for i, pair in enumerate(zip(column, other)) if pair[0] != pair[1]}
    compare = _OPS[op]
    values = _VALUES
    good = {
        pair
        for pair in set(zip(column, other))
        if compare(values[pair[0]], values[pair[1]])
    }
    return {i for i, pair in enumerate(zip(column, other)) if pair in good}
