"""Storage layer: in-memory relations, database states, and updates.

This package is the relational substrate the paper presupposes. Everything is
set-semantics (the paper works in plain relational algebra over sets):

* :class:`~repro.storage.relation.Relation` — an immutable relation instance
  (attribute schema + set of tuples) with the usual algebra operations;
* :class:`~repro.storage.database.Database` — a database state over a
  :class:`~repro.schema.catalog.Catalog`, enforcing keys and INDs;
* :class:`~repro.storage.update.Update` / :class:`~repro.storage.update.Delta`
  — the change notifications sources report to the integrator.
"""

from repro.storage.relation import Relation
from repro.storage.columnar import ColumnarTable, resolve_engine
from repro.storage.database import Database
from repro.storage.snapshot import SnapshotView
from repro.storage.update import Delta, Update
from repro.storage.persist import load_warehouse, save_warehouse

__all__ = [
    "ColumnarTable",
    "Database",
    "Delta",
    "Relation",
    "SnapshotView",
    "Update",
    "load_warehouse",
    "resolve_engine",
    "save_warehouse",
]
