"""Immutable set-semantics relation instances and their algebra.

A :class:`Relation` couples an attribute tuple (the schema, order-significant
for presentation only) with a ``frozenset`` of value tuples aligned to that
order. All operations are *named* relational algebra: unions and differences
require equal attribute sets (and re-align column order as needed), joins are
natural joins over shared attribute names.

The class is deliberately immutable: every operation returns a new relation.
That makes relations safe to share between a database state, a warehouse
state, and memoized evaluation caches.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.errors import ExpressionError

Row = Tuple[object, ...]


class Relation:
    """An immutable relation: attribute names plus a set of rows.

    Parameters
    ----------
    attributes:
        Attribute names, order-significant for row layout.
    rows:
        Iterable of tuples (or lists), each as long as ``attributes``.

    Examples
    --------
    >>> r = Relation(("item", "clerk"), [("TV", "Mary"), ("PC", "John")])
    >>> len(r)
    2
    >>> r.project(("clerk",)).to_set() == {("Mary",), ("John",)}
    True
    """

    __slots__ = (
        "_attributes",
        "_rows",
        "_attribute_set",
        "_index_cache",
        "_projection_cache",
        "_columnar",
    )

    # A union/difference result inherits (patches) the base relation's hash
    # indexes when the other side is at most 1/_PATCH_RATIO of the base --
    # the incremental-maintenance regime, where the base is a big warehouse
    # relation and the other side is a delta.
    _PATCH_RATIO = 4

    def __init__(self, attributes: Sequence[str], rows: Iterable[Sequence[object]] = ()) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in relation schema {attrs}")
        self._attributes = attrs
        self._attribute_set = frozenset(attrs)
        width = len(attrs)
        materialized = set()
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ExpressionError(
                    f"row {tup!r} has {len(tup)} values, schema {attrs} expects {width}"
                )
            materialized.add(tup)
        self._rows: FrozenSet[Row] = frozenset(materialized)
        self._index_cache: Dict[frozenset, Dict[Row, List[Row]]] = {}
        self._projection_cache: Dict[Tuple[str, ...], FrozenSet[Row]] = {}
        self._columnar = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "Relation":
        """The empty relation over ``attributes``."""
        return cls(attributes, ())

    @classmethod
    def from_dicts(
        cls, attributes: Sequence[str], dicts: Iterable[Mapping[str, object]]
    ) -> "Relation":
        """Build a relation from mappings ``{attribute: value}``."""
        attrs = tuple(attributes)
        return cls(attrs, (tuple(d[a] for a in attrs) for d in dicts))

    def _with_rows(self, rows: Iterable[Row]) -> "Relation":
        rel = Relation.__new__(Relation)
        rel._attributes = self._attributes
        rel._attribute_set = self._attribute_set
        rel._rows = frozenset(rows)
        rel._index_cache = {}
        rel._projection_cache = {}
        rel._columnar = None
        return rel

    @classmethod
    def _raw(cls, attributes: Tuple[str, ...], rows: FrozenSet[Row]) -> "Relation":
        """Internal constructor from already-validated parts (no copying)."""
        rel = cls.__new__(cls)
        rel._attributes = attributes
        rel._attribute_set = frozenset(attributes)
        rel._rows = rows
        rel._index_cache = {}
        rel._projection_cache = {}
        rel._columnar = None
        return rel

    def _derive_caches(
        self, result: "Relation", added: FrozenSet[Row], removed: FrozenSet[Row]
    ) -> None:
        """Patch this relation's caches onto ``result`` (rows differ by a delta).

        Hash-join buckets are patched per touched key (untouched buckets are
        shared -- they are never mutated after construction). Projection
        results distribute over row insertion (``pi(R + I) = pi(R) + pi(I)``)
        but not over deletion under set semantics, so cached projections are
        carried forward only when nothing was removed. The columnar twin,
        when present, is patched in O(delta) too: deletions flip its
        row-validity bitmap, insertions append to its code columns.
        """
        if self._columnar is not None:
            result._columnar = self._columnar.patched(added, removed)
        for shared_set, buckets in self._index_cache.items():
            positions = tuple(
                self._attributes.index(a) for a in sorted(shared_set)
            )
            patched = dict(buckets)
            for row in added:
                key = tuple(row[p] for p in positions)
                bucket = list(patched.get(key, ()))
                bucket.append(row)
                patched[key] = bucket
            for row in removed:
                key = tuple(row[p] for p in positions)
                bucket = [r for r in patched.get(key, ()) if r != row]
                if bucket:
                    patched[key] = bucket
                else:
                    patched.pop(key, None)
            result._index_cache[shared_set] = patched
        if not removed:
            for attrs, projected in self._projection_cache.items():
                positions = tuple(self._attributes.index(a) for a in attrs)
                result._projection_cache[attrs] = projected | frozenset(
                    tuple(row[p] for p in positions) for row in added
                )

    def _is_delta_sized(self, other: "Relation") -> bool:
        has_caches = bool(
            self._index_cache or self._projection_cache or self._columnar is not None
        )
        return has_caches and len(other._rows) * self._PATCH_RATIO <= len(self._rows)

    def columnar(self):
        """This relation's columnar twin (built lazily, then cached).

        The twin is a :class:`repro.storage.columnar.ColumnarTable` holding
        the same rows as dictionary-coded columns. It rides along through
        delta-sized unions/differences via :meth:`_derive_caches` — under
        the *same* staleness guard (:meth:`_is_delta_sized`) as the hash
        indexes — so in incremental maintenance the columnar engine never
        re-encodes a big warehouse relation from scratch.
        """
        twin = self._columnar
        if twin is None:
            from repro.storage.columnar import ColumnarTable

            twin = ColumnarTable.from_relation(self)
            self._columnar = twin
        return twin

    def has_columnar_twin(self) -> bool:
        """Whether a columnar twin is already attached (observability)."""
        return self._columnar is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names in row-layout order."""
        return self._attributes

    @property
    def attribute_set(self) -> frozenset:
        """Attribute names as a frozen set."""
        return self._attribute_set

    @property
    def rows(self) -> FrozenSet[Row]:
        """The rows, as a frozenset of value tuples."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def to_set(self) -> FrozenSet[Row]:
        """Alias of :attr:`rows`, reading better in assertions."""
        return self._rows

    def to_dicts(self) -> List[Dict[str, object]]:
        """The rows as a list of ``{attribute: value}`` dicts (sorted)."""
        return [dict(zip(self._attributes, row)) for row in sorted(self._rows, key=repr)]

    def row_dict(self, row: Row) -> Dict[str, object]:
        """A single row as a ``{attribute: value}`` dict."""
        return dict(zip(self._attributes, row))

    # ------------------------------------------------------------------
    # Alignment helpers
    # ------------------------------------------------------------------

    def reorder(self, attributes: Sequence[str]) -> "Relation":
        """This relation with columns re-laid-out in the given order.

        ``attributes`` must be a permutation of this relation's attributes.
        """
        attrs = tuple(attributes)
        if attrs == self._attributes:
            return self
        if frozenset(attrs) != self._attribute_set:
            raise ExpressionError(
                f"cannot reorder {self._attributes} as {attrs}: attribute sets differ"
            )
        positions = tuple(self._attributes.index(a) for a in attrs)
        return Relation(attrs, (tuple(row[p] for p in positions) for row in self._rows))

    def _aligned_rows(self, other: "Relation") -> FrozenSet[Row]:
        """``other``'s rows re-laid-out in ``self``'s column order."""
        if other._attributes == self._attributes:
            return other._rows
        if other._attribute_set != self._attribute_set:
            raise ExpressionError(
                "attribute sets differ: "
                f"{sorted(self._attribute_set)} vs {sorted(other._attribute_set)}"
            )
        positions = tuple(other._attributes.index(a) for a in self._attributes)
        return frozenset(tuple(row[p] for p in positions) for row in other._rows)

    # ------------------------------------------------------------------
    # Relational algebra
    # ------------------------------------------------------------------

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection ``pi_Z`` onto the given attributes (set semantics)."""
        attrs = tuple(attributes)
        missing = set(attrs) - self._attribute_set
        if missing:
            raise ExpressionError(
                f"cannot project onto {sorted(missing)}: not attributes of "
                f"{self._attributes}"
            )
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in projection {attrs}")
        cached = self._projection_cache.get(attrs)
        if cached is None:
            positions = tuple(self._attributes.index(a) for a in attrs)
            cached = frozenset(
                tuple(row[p] for p in positions) for row in self._rows
            )
            self._projection_cache[attrs] = cached
        return Relation._raw(attrs, cached)

    def project_or_empty(self, attributes: Sequence[str]) -> "Relation":
        """The paper's projection convention (Section 2).

        ``pi_Z(R)`` is the usual projection if ``Z subseteq attr(R)``, and the
        *empty relation over Z* otherwise.
        """
        if set(attributes) <= self._attribute_set:
            return self.project(attributes)
        return Relation.empty(tuple(attributes))

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Selection by a row predicate (rows are value tuples)."""
        return self._with_rows(row for row in self._rows if predicate(row))

    def union(self, other: "Relation") -> "Relation":
        """Set union; attribute sets must agree.

        A union with nothing new returns ``self`` unchanged (preserving
        object identity, and with it every derived cache); a delta-sized
        union patches the hash indexes instead of discarding them.
        """
        aligned = self._aligned_rows(other)
        added = aligned - self._rows
        if not added:
            return self
        result = self._with_rows(self._rows | added)
        if self._is_delta_sized(other):
            self._derive_caches(result, added, frozenset())
        return result

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; attribute sets must agree.

        Like :meth:`union`, an ineffective difference returns ``self``
        itself and a delta-sized one patches the hash indexes.
        """
        aligned = self._aligned_rows(other)
        removed = aligned & self._rows
        if not removed:
            return self
        result = self._with_rows(self._rows - removed)
        if self._is_delta_sized(other):
            self._derive_caches(result, frozenset(), removed)
        return result

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; attribute sets must agree."""
        return self._with_rows(self._rows & self._aligned_rows(other))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes; ``mapping`` sends old names to new names."""
        unknown = set(mapping) - self._attribute_set
        if unknown:
            raise ExpressionError(
                f"cannot rename {sorted(unknown)}: not attributes of {self._attributes}"
            )
        new_attrs = tuple(mapping.get(a, a) for a in self._attributes)
        if len(set(new_attrs)) != len(new_attrs):
            raise ExpressionError(f"renaming {dict(mapping)} collides on {new_attrs}")
        return Relation(new_attrs, self._rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join over shared attribute names (hash join).

        With no shared attributes this degenerates to the cartesian product,
        matching standard natural-join semantics.
        """
        shared = tuple(a for a in self._attributes if a in other._attribute_set)
        other_extra = tuple(a for a in other._attributes if a not in self._attribute_set)
        out_attrs = self._attributes + other_extra

        # Bucket keys use the *sorted* shared attribute order so cached
        # buckets are valid regardless of either operand's column order.
        shared_sorted = tuple(sorted(shared))
        self_shared_pos = tuple(self._attributes.index(a) for a in shared_sorted)
        other_shared_pos = tuple(other._attributes.index(a) for a in shared_sorted)
        other_extra_pos = tuple(other._attributes.index(a) for a in other_extra)
        shared_set = frozenset(shared)

        # Probe the side that already has (or will get) a cached hash table.
        # Relations are immutable, so join buckets are cached per shared
        # attribute set; in incremental maintenance the big, unchanged side
        # keeps its buckets across updates and delta-sized probes dominate.
        probe_other = (
            shared_set in other._index_cache
            or (
                shared_set not in self._index_cache
                and len(self._rows) <= len(other._rows)
            )
        )
        out_rows = []
        if probe_other:
            buckets = other._join_buckets(shared_set, other_shared_pos)
            for row in self._rows:
                key = tuple(row[p] for p in self_shared_pos)
                for match in buckets.get(key, ()):
                    out_rows.append(row + tuple(match[p] for p in other_extra_pos))
        else:
            buckets = self._join_buckets(shared_set, self_shared_pos)
            for row in other._rows:
                key = tuple(row[p] for p in other_shared_pos)
                extra = tuple(row[p] for p in other_extra_pos)
                for match in buckets.get(key, ()):
                    out_rows.append(match + extra)
        return Relation(out_attrs, out_rows)

    def semi_join(self, other: "Relation") -> "Relation":
        """Semi-join ``self ⋉ other``: rows of ``self`` with a join partner.

        Equals ``pi_{attr(self)}(self natural_join other)`` but never
        materializes the join. With no shared attributes the join is a
        cartesian product, so the result is ``self`` when ``other`` is
        non-empty and the empty relation otherwise.

        Examples
        --------
        >>> r = Relation(("a", "b"), [(1, 10), (2, 20)])
        >>> s = Relation(("b", "c"), [(10, "x")])
        >>> r.semi_join(s).to_set() == {(1, 10)}
        True
        """
        shared = tuple(a for a in self._attributes if a in other._attribute_set)
        if not shared:
            return self if other._rows else self._with_rows(())
        shared_sorted = tuple(sorted(shared))
        self_pos = tuple(self._attributes.index(a) for a in shared_sorted)
        other_pos = tuple(other._attributes.index(a) for a in shared_sorted)
        # Reuse join buckets: semi/anti joins only need key membership, but
        # sharing one index per attribute set with natural_join means a
        # relation probed both ways builds its hash table exactly once.
        keys = other._join_buckets(frozenset(shared), other_pos)
        return self._with_rows(
            row for row in self._rows if tuple(row[p] for p in self_pos) in keys
        )

    def anti_join(self, other: "Relation") -> "Relation":
        """Anti-join ``self ▷ other``: rows of ``self`` with no join partner.

        Equals ``self - (self semi_join other)``; this is the evaluation
        shape of the paper's complements ``C_i = R_i - pi_{R_i}(V_j)``
        (Proposition 2.2) when ``V_j`` joins ``R_i`` with other relations.

        Examples
        --------
        >>> r = Relation(("a", "b"), [(1, 10), (2, 20)])
        >>> s = Relation(("b", "c"), [(10, "x")])
        >>> r.anti_join(s).to_set() == {(2, 20)}
        True
        """
        shared = tuple(a for a in self._attributes if a in other._attribute_set)
        if not shared:
            return self._with_rows(()) if other._rows else self
        shared_sorted = tuple(sorted(shared))
        self_pos = tuple(self._attributes.index(a) for a in shared_sorted)
        other_pos = tuple(other._attributes.index(a) for a in shared_sorted)
        keys = other._join_buckets(frozenset(shared), other_pos)
        return self._with_rows(
            row
            for row in self._rows
            if tuple(row[p] for p in self_pos) not in keys
        )

    def _join_buckets(
        self, shared_set: frozenset, positions: Tuple[int, ...]
    ) -> Dict[Row, List[Row]]:
        """Rows grouped by their projection onto ``shared_set`` (cached)."""
        cached = self._index_cache.get(shared_set)
        if cached is not None:
            return cached
        buckets: Dict[Row, List[Row]] = {}
        for row in self._rows:
            key = tuple(row[p] for p in positions)
            buckets.setdefault(key, []).append(row)
        self._index_cache[shared_set] = buckets
        return buckets

    def has_join_index(self, attributes: Iterable[str]) -> bool:
        """Whether a join index over ``attributes`` is already built.

        Storage-level observability: the evaluator annotates join spans
        with ``index_hit`` by asking this *before* joining, which makes
        the persistent-index layer (indexes surviving delta-patched
        unions/differences across refreshes) visible in traces. Read-only
        — it never builds the index.
        """
        return frozenset(attributes) in self._index_cache

    def cached_index_count(self) -> int:
        """How many join indexes this instance currently holds (metrics)."""
        return len(self._index_cache)

    # ------------------------------------------------------------------
    # Constraint-oriented helpers
    # ------------------------------------------------------------------

    def key_violations(self, key: Sequence[str]) -> List[Tuple[Row, Row]]:
        """Pairs of distinct rows agreeing on ``key`` (empty iff key holds)."""
        positions = tuple(self._attributes.index(a) for a in key)
        seen: Dict[Row, Row] = {}
        violations = []
        for row in sorted(self._rows, key=repr):
            key_value = tuple(row[p] for p in positions)
            if key_value in seen:
                violations.append((seen[key_value], row))
            else:
                seen[key_value] = row
        return violations

    def index_on(self, key: Sequence[str]) -> Dict[Row, Row]:
        """A unique index ``key value -> row``; requires the key to hold."""
        positions = tuple(self._attributes.index(a) for a in key)
        index: Dict[Row, Row] = {}
        for row in self._rows:
            key_value = tuple(row[p] for p in positions)
            if key_value in index:
                raise ExpressionError(f"key {tuple(key)} does not hold: {key_value!r}")
            index[key_value] = row
        return index

    # ------------------------------------------------------------------
    # Equality & display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self._attribute_set != other._attribute_set:
            return False
        return self._rows == self._aligned_rows(other)

    def __hash__(self) -> int:
        canonical = tuple(sorted(self._attribute_set))
        return hash((canonical, self.reorder(canonical)._rows if self._rows else frozenset()))

    def __repr__(self) -> str:
        return f"Relation({self._attributes}, {len(self._rows)} rows)"

    def pretty(self, max_rows: int = 20) -> str:
        """A small fixed-width table rendering (for examples and docs)."""
        header = list(self._attributes)
        body = [[repr(v) for v in row] for row in sorted(self._rows, key=repr)[:max_rows]]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: List[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        lines = [fmt(header), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in body)
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)
