"""Persistence: JSON snapshots of catalogs, specs, and warehouse states.

Expressions and conditions serialize through their textual form (the
parser/printer round-trip is property-tested), so snapshots are small,
diff-able, and human-readable. A warehouse snapshot carries everything
needed to resume operation — catalog, view definitions, complement
definitions, inverses, and the materialized relations — so a warehouse can
be shut down and restarted without touching the sources (independence
extends across restarts).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.errors import SchemaError
from repro.algebra.parser import parse, parse_condition
from repro.schema.catalog import Catalog
from repro.schema.schema import RelationSchema
from repro.storage.relation import Relation

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------


def catalog_to_dict(catalog: Catalog) -> Dict[str, Any]:
    """A JSON-ready description of a catalog."""
    return {
        "version": FORMAT_VERSION,
        "relations": [
            {
                "name": schema.name,
                "attributes": list(schema.attributes),
                "key": list(schema.key) if schema.key is not None else None,
            }
            for schema in catalog.schemas()
        ],
        "inclusions": [
            {
                "lhs": ind.lhs,
                "lhs_attributes": list(ind.lhs_attributes),
                "rhs": ind.rhs,
                "rhs_attributes": list(ind.rhs_attributes),
            }
            for ind in catalog.inclusions()
        ],
        "checks": {
            schema.name: [str(check) for check in catalog.checks(schema.name)]
            for schema in catalog.schemas()
            if catalog.checks(schema.name)
        },
    }


def catalog_from_dict(data: Mapping[str, Any]) -> Catalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    catalog = Catalog()
    for entry in data["relations"]:
        catalog.add_relation(
            RelationSchema(entry["name"], entry["attributes"], key=entry.get("key"))
        )
    for entry in data.get("inclusions", ()):
        catalog.inclusion(
            entry["lhs"],
            entry["lhs_attributes"],
            entry["rhs"],
            entry["rhs_attributes"],
        )
    for relation, checks in data.get("checks", {}).items():
        for text in checks:
            catalog.add_check(relation, parse_condition(text))
    return catalog


# ----------------------------------------------------------------------
# Relations / states
# ----------------------------------------------------------------------


def relation_to_dict(relation: Relation) -> Dict[str, Any]:
    """A JSON-ready relation (rows sorted for stable diffs)."""
    return {
        "attributes": list(relation.attributes),
        "rows": [list(row) for row in sorted(relation.rows, key=repr)],
    }


def relation_from_dict(data: Mapping[str, Any]) -> Relation:
    """Rebuild a relation from :func:`relation_to_dict` output.

    JSON has no tuples; row values survive as strings/numbers/bools/None,
    which covers every value the library's generators and examples use.
    """
    return Relation(
        tuple(data["attributes"]), [tuple(row) for row in data["rows"]]
    )


def state_to_dict(state: Mapping[str, Relation]) -> Dict[str, Any]:
    """A JSON-ready state (name -> relation)."""
    return {name: relation_to_dict(rel) for name, rel in state.items()}


def state_from_dict(data: Mapping[str, Any]) -> Dict[str, Relation]:
    """Rebuild a state from :func:`state_to_dict` output."""
    return {name: relation_from_dict(entry) for name, entry in data.items()}


# ----------------------------------------------------------------------
# Warehouse specs and whole warehouses
# ----------------------------------------------------------------------


def spec_to_dict(spec) -> Dict[str, Any]:
    """A JSON-ready warehouse specification."""
    return {
        "version": FORMAT_VERSION,
        "method": spec.method,
        "catalog": catalog_to_dict(spec.catalog),
        "views": [
            {"name": view.name, "definition": str(view.definition)}
            for view in spec.views
        ],
        "complements": [
            {
                "name": complement.name,
                "relation": complement.relation,
                "definition": str(complement.definition),
                "provably_empty": complement.provably_empty,
            }
            for complement in spec.complements.values()
        ],
        "inverses": {
            relation: str(expression)
            for relation, expression in spec.inverses.items()
        },
    }


def spec_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`~repro.core.complement.WarehouseSpec`."""
    from repro.core.complement import ComplementView, WarehouseSpec
    from repro.views.psj import View

    catalog = catalog_from_dict(data["catalog"])
    views = [View(v["name"], parse(v["definition"])) for v in data["views"]]
    complements = {
        c["relation"]: ComplementView(
            c["name"], c["relation"], parse(c["definition"]), c["provably_empty"]
        )
        for c in data["complements"]
    }
    inverses = {
        relation: parse(text) for relation, text in data["inverses"].items()
    }
    return WarehouseSpec(catalog, views, complements, inverses, data["method"])


def warehouse_to_dict(warehouse) -> Dict[str, Any]:
    """Snapshot a (possibly initialized) warehouse."""
    snapshot: Dict[str, Any] = {"spec": spec_to_dict(warehouse.spec)}
    try:
        state = warehouse.state
    except Exception:
        state = None
    if state is not None:
        snapshot["state"] = state_to_dict(state)
    return snapshot


def warehouse_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`~repro.core.warehouse.Warehouse` from a snapshot."""
    from repro.core.warehouse import Warehouse

    warehouse = Warehouse(spec_from_dict(data["spec"]))
    if "state" in data:
        warehouse._state = state_from_dict(data["state"])
    return warehouse


def save_warehouse(warehouse, path: str) -> None:
    """Write a warehouse snapshot to a JSON file."""
    with open(path, "w") as handle:
        json.dump(warehouse_to_dict(warehouse), handle, indent=1, sort_keys=True)


def load_warehouse(path: str):
    """Load a warehouse snapshot written by :func:`save_warehouse`."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("spec", {}).get("version") not in (FORMAT_VERSION,):
        raise SchemaError(
            f"unsupported snapshot version in {path!r}; expected {FORMAT_VERSION}"
        )
    return warehouse_from_dict(data)
