"""Database states over a catalog, with integrity enforcement.

A :class:`Database` binds every relation name of a
:class:`~repro.schema.catalog.Catalog` to a
:class:`~repro.storage.relation.Relation` instance and checks the declared
constraints (keys and inclusion dependencies). It stands in for the paper's
autonomous sources: the warehouse-side code never reads a ``Database``
directly — it only consumes the :class:`~repro.storage.update.Update` objects
the database reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ConstraintViolation, SchemaError
from repro.schema.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.update import Update


class Database:
    """A mutable database state over a catalog.

    Examples
    --------
    >>> from repro.schema import Catalog, RelationSchema
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> db = Database(catalog)
    >>> db.load("Emp", [("Mary", 23), ("John", 25)])
    >>> len(db["Emp"])
    2
    """

    def __init__(
        self,
        catalog: Catalog,
        state: Optional[Mapping[str, Relation]] = None,
        check: bool = True,
    ) -> None:
        self._catalog = catalog
        self._state: Dict[str, Relation] = {}
        for schema in catalog.schemas():
            self._state[schema.name] = Relation.empty(schema.attributes)
        if state is not None:
            for name, relation in state.items():
                self._bind(name, relation)
        if check:
            self.check_constraints()

    @property
    def catalog(self) -> Catalog:
        """The catalog this state is over."""
        return self._catalog

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def _bind(self, name: str, relation: Relation) -> None:
        schema = self._catalog.get(name)
        if schema is None:
            raise SchemaError(f"unknown relation {name!r}")
        if relation.attribute_set != schema.attribute_set:
            raise SchemaError(
                f"relation {name!r} expects attributes {schema.attributes}, "
                f"got {relation.attributes}"
            )
        self._state[name] = relation.reorder(schema.attributes)

    def __getitem__(self, name: str) -> Relation:
        if name not in self._state:
            raise SchemaError(f"unknown relation {name!r}")
        return self._state[name]

    def __contains__(self, name: str) -> bool:
        return name in self._state

    def load(self, name: str, rows: Iterable[Sequence[object]], check: bool = True) -> None:
        """Replace the contents of ``name`` with ``rows`` (value tuples)."""
        schema = self._catalog[name]
        self._bind(name, Relation(schema.attributes, rows))
        if check:
            self.check_constraints()

    def state(self) -> Dict[str, Relation]:
        """A snapshot of the full state (name -> relation)."""
        return dict(self._state)

    def total_rows(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(rel) for rel in self._state.values())

    def copy(self) -> "Database":
        """An independent copy of this database (relations are immutable)."""
        return Database(self._catalog, self._state, check=False)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def constraint_violations(self) -> List[str]:
        """Human-readable descriptions of all violated constraints."""
        problems: List[str] = []
        for schema in self._catalog.schemas():
            if schema.key is None:
                continue
            violations = self._state[schema.name].key_violations(schema.key)
            for first, second in violations:
                problems.append(
                    f"key {schema.key} of {schema.name} violated by "
                    f"{first!r} and {second!r}"
                )
        for ind in self._catalog.inclusions():
            lhs = self._state[ind.lhs].project(ind.lhs_attributes)
            rhs = self._state[ind.rhs].project(ind.rhs_attributes)
            dangling = lhs.rows - frozenset(rhs.rows)
            for row in sorted(dangling, key=repr):
                problems.append(f"inclusion {ind} violated by {row!r}")
        for schema in self._catalog.schemas():
            relation = self._state[schema.name]
            for condition in self._catalog.checks(schema.name):
                predicate = condition.compile(relation.attributes)
                for row in sorted(relation.rows, key=repr):
                    if not predicate(row):
                        problems.append(
                            f"check [{condition}] on {schema.name} violated by {row!r}"
                        )
        return problems

    def check_constraints(self) -> None:
        """Raise :class:`ConstraintViolation` if any constraint is violated."""
        problems = self.constraint_violations()
        if problems:
            raise ConstraintViolation("; ".join(problems))

    def satisfies_constraints(self) -> bool:
        """Whether the current state satisfies all declared constraints."""
        return not self.constraint_violations()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply(self, update: Update, check: bool = True) -> Update:
        """Apply ``update`` and return its effective (normalized) form.

        The returned update is what the source would report to the
        integrator: per-relation effective inserts and deletes. If ``check``
        is true and the new state violates a constraint, the update is rolled
        back and :class:`ConstraintViolation` is raised.
        """
        effective = update.normalized(self._state)
        before = dict(self._state)
        for delta in effective:
            self._bind(delta.relation, delta.apply_to(self._state[delta.relation]))
        if check:
            problems = self.constraint_violations()
            if problems:
                self._state = before
                raise ConstraintViolation("; ".join(problems))
        return effective

    def insert(
        self, name: str, rows: Iterable[Sequence[object]], check: bool = True
    ) -> Update:
        """Insert ``rows`` into ``name``; returns the effective update."""
        schema = self._catalog[name]
        return self.apply(Update.insert(name, schema.attributes, rows), check=check)

    def delete(
        self, name: str, rows: Iterable[Sequence[object]], check: bool = True
    ) -> Update:
        """Delete ``rows`` from ``name``; returns the effective update."""
        schema = self._catalog[name]
        return self.apply(Update.delete(name, schema.attributes, rows), check=check)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}={len(rel)}" for name, rel in self._state.items())
        return f"Database({sizes})"

    def describe(self) -> str:
        """All relations rendered as small tables."""
        blocks = []
        for name, relation in self._state.items():
            blocks.append(f"{name}:\n{relation.pretty()}")
        return "\n\n".join(blocks)
