"""Immutable, versioned snapshot views over warehouse state.

A :class:`SnapshotView` is a read-only image of a ``{name: Relation}``
state at one commit version. Because :class:`~repro.storage.relation.Relation`
is immutable and every refresh *replaces* the state mapping instead of
mutating it, a snapshot is nothing more than a pinned set of references —
taking one is O(relations), holding one costs nothing, and any number of
concurrent readers can keep reading a snapshot while later refreshes land
(MVCC with structural sharing: unchanged relations are the same objects in
every subsequent version).

This is what makes the concurrent integrator's readers safe: a reader
resolves ``snapshot()`` once and then sees one consistent image — never a
half-applied batch — no matter how many refreshes commit underneath it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import WarehouseError
from repro.storage.relation import Relation


class SnapshotView:
    """A read-only, versioned image of a warehouse (or shard) state.

    Parameters
    ----------
    relations:
        The state mapping to pin. The mapping is copied (shallowly — the
        relations themselves are immutable), so later state swaps in the
        producer never show through.
    version:
        The commit version this image corresponds to. Monotonically
        increasing per producer; two snapshots with equal versions from the
        same producer are images of the same state.
    label:
        Optional producer tag (e.g. ``"shard0"``) for diagnostics.

    Examples
    --------
    >>> from repro.storage.relation import Relation
    >>> snap = SnapshotView({"R": Relation(("x",), [(1,)])}, version=3)
    >>> snap.version, len(snap), "R" in snap
    (3, 1, True)
    >>> snap.relation("R").rows
    frozenset({(1,)})
    """

    __slots__ = ("_relations", "_version", "_label")

    def __init__(
        self,
        relations: Mapping[str, Relation],
        version: int,
        label: str = "",
    ) -> None:
        self._relations: Dict[str, Relation] = dict(relations)
        self._version = version
        self._label = label

    @property
    def version(self) -> int:
        """The commit version this snapshot pins."""
        return self._version

    @property
    def label(self) -> str:
        """The producer tag given at construction (may be empty)."""
        return self._label

    def names(self) -> Tuple[str, ...]:
        """The relation names visible in this snapshot, sorted."""
        return tuple(sorted(self._relations))

    def relation(self, name: str) -> Relation:
        """The pinned image of one relation."""
        try:
            return self._relations[name]
        except KeyError:
            raise WarehouseError(
                f"snapshot (version {self._version}) has no relation {name!r}"
            ) from None

    def state(self) -> Dict[str, Relation]:
        """A fresh ``{name: Relation}`` mapping of the pinned image.

        Suitable for handing to evaluators (the relations are shared, the
        mapping is the caller's to mutate).
        """
        return dict(self._relations)

    def total_rows(self) -> int:
        """Total pinned tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        tag = f" {self._label}" if self._label else ""
        return (
            f"SnapshotView(version={self._version},{tag} "
            f"{len(self._relations)} relations)"
        )
