"""Updates: the change notifications sources report to the integrator.

The paper's update model (Section 4) is a state transition ``d -> d'`` caused
by an update ``u``; the warehouse sees only ``u`` (never ``d``). We model
``u`` as an :class:`Update` — a set of per-relation :class:`Delta` objects,
each carrying inserted and deleted tuple sets. Modifications are expressed as
delete+insert, as footnote 1 of the paper also assumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.storage.relation import Relation


class Delta:
    """Inserted and deleted tuples for one relation.

    A delta is *effective* w.r.t. a relation instance ``r`` when its inserts
    are disjoint from ``r`` and its deletes are contained in ``r`` (and the
    two sets are mutually disjoint). The maintenance machinery normalizes
    deltas to effective form before propagating them.
    """

    __slots__ = ("_relation", "_inserts", "_deletes")

    def __init__(
        self,
        relation: str,
        inserts: Optional[Relation] = None,
        deletes: Optional[Relation] = None,
    ) -> None:
        if inserts is None and deletes is None:
            raise ExpressionError(f"delta for {relation!r} must insert or delete")
        # Note: an empty Relation is falsy, so `inserts or deletes` would be
        # wrong here — test identity against None explicitly.
        attrs = (inserts if inserts is not None else deletes).attributes
        self._relation = relation
        self._inserts = inserts if inserts is not None else Relation.empty(attrs)
        self._deletes = deletes if deletes is not None else Relation.empty(attrs)
        if self._inserts.attribute_set != self._deletes.attribute_set:
            raise ExpressionError(
                f"delta for {relation!r}: insert and delete schemata differ"
            )

    @property
    def relation(self) -> str:
        """Name of the updated relation."""
        return self._relation

    @property
    def inserts(self) -> Relation:
        """The inserted tuples."""
        return self._inserts

    @property
    def deletes(self) -> Relation:
        """The deleted tuples."""
        return self._deletes

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names of the updated relation."""
        return self._inserts.attributes

    def is_effective_for(self, current: Relation) -> bool:
        """Whether this delta is effective w.r.t. ``current`` (see class doc)."""
        return (
            not self._inserts.intersection(current)
            and self._deletes == self._deletes.intersection(current)
            and not self._inserts.intersection(self._deletes)
        )

    def normalized(self, current: Relation) -> "Delta":
        """The effective form of this delta w.r.t. ``current``.

        With apply order delete-then-insert, the new state is
        ``(current - D) union I``, so the tuples actually added are
        ``I - current`` and the tuples actually removed are
        ``(D intersect current) - I``.
        """
        inserts = self._inserts.difference(current)
        deletes = self._deletes.intersection(current).difference(self._inserts)
        return Delta(self._relation, inserts, deletes)

    def apply_to(self, current: Relation) -> Relation:
        """``(current - deletes) union inserts``."""
        return current.difference(self._deletes).union(self._inserts)

    def inverted(self) -> "Delta":
        """The delta undoing this one (valid if this one was effective)."""
        return Delta(self._relation, inserts=self._deletes, deletes=self._inserts)

    def is_empty(self) -> bool:
        """Whether this delta changes nothing."""
        return not self._inserts and not self._deletes

    def __repr__(self) -> str:
        return (
            f"Delta({self._relation!r}, +{len(self._inserts)} rows, "
            f"-{len(self._deletes)} rows)"
        )


class Update:
    """A transaction: one :class:`Delta` per updated relation.

    Examples
    --------
    >>> u = Update.insert("Sale", ("item", "clerk"), [("Computer", "Paula")])
    >>> [d.relation for d in u]
    ['Sale']
    """

    __slots__ = ("_deltas",)

    def __init__(self, deltas: Iterable[Delta] = ()) -> None:
        self._deltas: Dict[str, Delta] = {}
        for delta in deltas:
            self._merge(delta)

    def _merge(self, delta: Delta) -> None:
        existing = self._deltas.get(delta.relation)
        if existing is None:
            self._deltas[delta.relation] = delta
            return
        self._deltas[delta.relation] = Delta(
            delta.relation,
            inserts=existing.inserts.union(delta.inserts),
            deletes=existing.deletes.union(delta.deletes),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def insert(
        cls, relation: str, attributes: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> "Update":
        """An update inserting ``rows`` (given as value tuples) into ``relation``."""
        return cls([Delta(relation, inserts=Relation(attributes, rows))])

    @classmethod
    def delete(
        cls, relation: str, attributes: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> "Update":
        """An update deleting ``rows`` from ``relation``."""
        return cls([Delta(relation, deletes=Relation(attributes, rows))])

    @classmethod
    def modify(
        cls,
        relation: str,
        attributes: Sequence[str],
        old_rows: Iterable[Sequence[object]],
        new_rows: Iterable[Sequence[object]],
    ) -> "Update":
        """A modification, expressed as delete-then-insert.

        The paper treats modifications this way throughout (footnote 1:
        "for simplicity, we do not consider modifications here" — because
        they decompose). ``old_rows`` are removed and ``new_rows`` added in
        one transaction.
        """
        return cls(
            [
                Delta(
                    relation,
                    inserts=Relation(attributes, new_rows),
                    deletes=Relation(attributes, old_rows),
                )
            ]
        )

    @classmethod
    def of(cls, *deltas: Delta) -> "Update":
        """An update from explicit deltas (merged per relation)."""
        return cls(deltas)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Delta]:
        return iter(self._deltas.values())

    def __len__(self) -> int:
        return len(self._deltas)

    def __contains__(self, relation: str) -> bool:
        return relation in self._deltas

    def delta_for(self, relation: str) -> Optional[Delta]:
        """The delta touching ``relation``, or ``None``."""
        return self._deltas.get(relation)

    def relations(self) -> Tuple[str, ...]:
        """Names of the relations this update touches."""
        return tuple(self._deltas)

    def normalized(self, state: Mapping[str, Relation]) -> "Update":
        """Per-relation effective form w.r.t. the relations in ``state``."""
        deltas = []
        for delta in self._deltas.values():
            current = state[delta.relation]
            effective = delta.normalized(current)
            if not effective.is_empty():
                deltas.append(effective)
        return Update(deltas)

    def is_empty(self) -> bool:
        """Whether no relation is changed."""
        return all(d.is_empty() for d in self._deltas.values())

    def then(self, other: "Update") -> "Update":
        """This update merged with ``other`` (set-union of deltas)."""
        return Update(list(self._deltas.values()) + list(other._deltas.values()))

    def compose(self, later: "Update") -> "Update":
        """Sequential composition: one update equivalent to ``self; later``.

        For every state ``s``, ``self.compose(later)`` applied to ``s``
        (delete-then-insert order) equals applying ``self`` and then
        ``later``. Per relation, the net inserts are
        ``(I1 - D2) union I2`` and the net deletes ``(D1 union D2) - I``:
        a tuple inserted and later deleted cancels, a tuple deleted and
        later re-inserted survives. This is what lets a batch of source
        notifications be folded into the warehouse with *one* refresh
        (one invalidation pass) instead of one per notification.

        Examples
        --------
        >>> a = Update.delete("R", ("x",), [(1,)])
        >>> b = Update.insert("R", ("x",), [(1,)])
        >>> net = a.compose(b)
        >>> sorted(net.delta_for("R").inserts.rows), len(net.delta_for("R").deletes)
        ([(1,)], 0)
        """
        deltas = []
        for name in {*self._deltas, *later._deltas}:
            first = self._deltas.get(name)
            second = later._deltas.get(name)
            if first is None:
                deltas.append(second)
                continue
            if second is None:
                deltas.append(first)
                continue
            inserts = first.inserts.difference(second.deletes).union(second.inserts)
            deletes = first.deletes.union(second.deletes).difference(inserts)
            deltas.append(Delta(name, inserts=inserts, deletes=deletes))
        return Update(deltas)

    def __repr__(self) -> str:
        return f"Update({list(self._deltas.values())!r})"
