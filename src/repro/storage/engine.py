"""Physical execution engine selection (``REPRO_ENGINE``).

Kept in its own leaf module (imports only the standard library and
:mod:`repro.errors`) so both the evaluator and the columnar storage layer
can resolve the engine without creating an import cycle between
``repro.algebra`` and ``repro.storage``.

Two engines exist:

* ``"tuple"`` — the frozenset operators on
  :class:`~repro.storage.relation.Relation` (the PR-1 engine);
* ``"columnar"`` — dictionary-coded batch kernels
  (:mod:`repro.storage.columnar`, dispatched by
  :mod:`repro.algebra.columnar_eval`).

The environment variable is read **once at import** — never on the
evaluator hot path (``scripts/check_hotpath.py`` rule R5). Tests that need
to flip the process default monkeypatch :data:`DEFAULT_ENGINE`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import EvaluationError

ENGINE_ENV = "REPRO_ENGINE"
ENGINE_TUPLE = "tuple"
ENGINE_COLUMNAR = "columnar"


def _engine_from_environment() -> str:
    """The engine the environment selects (anything but tuple means columnar).

    The columnar kernels have been the production path since the sharded
    integrator landed; the tuple engine remains as the differential
    reference, opted into with ``REPRO_ENGINE=tuple``.
    """
    value = os.environ.get(ENGINE_ENV, "").strip().lower()
    return ENGINE_TUPLE if value == ENGINE_TUPLE else ENGINE_COLUMNAR


#: The process default, read once at import (tests may monkeypatch it).
DEFAULT_ENGINE = _engine_from_environment()


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an engine request: ``None`` means the process default.

    Raises :class:`~repro.errors.EvaluationError` for unknown names, so a
    typo in an explicit ``engine=`` argument fails loudly instead of
    silently falling back to the tuple path.

    Examples
    --------
    >>> resolve_engine("tuple")
    'tuple'
    >>> resolve_engine("columnar")
    'columnar'
    """
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in (ENGINE_TUPLE, ENGINE_COLUMNAR):
        raise EvaluationError(
            f"unknown evaluation engine {engine!r} "
            f"(expected {ENGINE_TUPLE!r} or {ENGINE_COLUMNAR!r})"
        )
    return engine
