"""repro — reproduction of "Complements for Data Warehouses" (ICDE 1999).

A data warehouse is a set of materialized views over autonomous sources.
Storing a **view complement** (Bancilhon/Spyratos) alongside the views makes
the warehouse mapping invertible, which renders the warehouse

* **query-independent** — any source query is answerable from warehouse
  relations alone (Theorem 3.1), and
* **update-independent** (self-maintainable) — any reported source update is
  folded in without querying the sources (Theorem 4.1).

Quickstart
----------
>>> from repro import Catalog, Relation, View, Warehouse, parse
>>> catalog = Catalog()
>>> _ = catalog.relation("Sale", ("item", "clerk"))
>>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
>>> wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
>>> _ = wh.initialize({
...     "Sale": Relation(("item", "clerk"), [("TV", "Mary")]),
...     "Emp": Relation(("clerk", "age"), [("Mary", 23), ("Paula", 32)]),
... })
>>> sorted(wh.answer("pi[clerk](Sale) union pi[clerk](Emp)").rows)
[('Mary',), ('Paula',)]

See README.md for the architecture overview and DESIGN.md for the mapping
from paper results to modules.
"""

from repro.errors import (
    ConstraintViolation,
    EvaluationError,
    ExpressionError,
    ParseError,
    ReproError,
    SchemaError,
    WarehouseError,
)
from repro.schema import Catalog, InclusionDependency, KeyConstraint, RelationSchema
from repro.storage import Database, Delta, Relation, Update
from repro.algebra import (
    TRUE,
    EvalStats,
    EvaluationCache,
    StateVersion,
    attr,
    const,
    difference,
    empty,
    evaluate,
    evaluate_all,
    join,
    parse,
    parse_condition,
    project,
    rel,
    rename,
    select,
    simplify,
    substitute,
    union,
)
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    RingBufferCollector,
    Span,
    Tracer,
)
from repro.views import PSJView, View, as_psj
from repro.analysis import (
    Diagnostic,
    Severity,
    SourceSpan,
    lint_spec,
    lint_views,
    typecheck_expression,
)
from repro.core import (
    ComplementView,
    Warehouse,
    WarehouseSpec,
    answer_query,
    complement_prop22,
    complement_thm22,
    complement_trivial,
    maintenance_expressions,
    specify,
    translate_query,
    verify_complement,
    verify_one_to_one,
)

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "ComplementView",
    "ConstraintViolation",
    "Database",
    "Delta",
    "Diagnostic",
    "EvalStats",
    "EvaluationCache",
    "EvaluationError",
    "ExpressionError",
    "InclusionDependency",
    "JsonlSink",
    "KeyConstraint",
    "MetricsRegistry",
    "PSJView",
    "ParseError",
    "Relation",
    "RelationSchema",
    "ReproError",
    "RingBufferCollector",
    "SchemaError",
    "Severity",
    "SourceSpan",
    "Span",
    "StateVersion",
    "Tracer",
    "TRUE",
    "Update",
    "View",
    "Warehouse",
    "WarehouseError",
    "WarehouseSpec",
    "answer_query",
    "as_psj",
    "attr",
    "complement_prop22",
    "complement_thm22",
    "complement_trivial",
    "const",
    "difference",
    "empty",
    "evaluate",
    "evaluate_all",
    "join",
    "lint_spec",
    "lint_views",
    "maintenance_expressions",
    "parse",
    "parse_condition",
    "project",
    "rel",
    "rename",
    "select",
    "simplify",
    "specify",
    "translate_query",
    "typecheck_expression",
    "union",
    "verify_complement",
    "verify_one_to_one",
]
