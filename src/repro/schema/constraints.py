"""Integrity constraints: keys and inclusion dependencies.

The paper's complement minimization (Theorem 2.2) exploits exactly two kinds
of constraints:

* **key constraints** — at most one key per relation schema, declared on the
  :class:`~repro.schema.schema.RelationSchema` itself and mirrored here as
  :class:`KeyConstraint` objects for uniform constraint handling;
* **inclusion dependencies** ``pi_X(R_i) subseteq pi_Y(R_j)`` where ``X`` and
  ``Y`` are equally long attribute sequences. The common case ``X = Y``
  (identical attribute names, as in the paper's body text) needs no renaming;
  differing names realize footnote 3's remark that general INDs "could be
  incorporated by a suitable application of the renaming operator".

A *foreign key* in the usual sense is the combination of an IND whose
right-hand side is the key of the referenced relation — the paper notes that
Theorem 2.2 handles these combinations directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.errors import SchemaError
from repro.schema.schema import check_name


class KeyConstraint:
    """Key constraint ``K -> attr(R)`` on relation ``relation``.

    Stored redundantly with :attr:`RelationSchema.key`; the catalog keeps the
    two in sync. Equality is structural.
    """

    __slots__ = ("_relation", "_attributes")

    def __init__(self, relation: str, attributes: Iterable[str]) -> None:
        self._relation = check_name(relation, "relation")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("key constraint must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError("key constraint attributes must be distinct")
        self._attributes = attrs

    @property
    def relation(self) -> str:
        """Name of the constrained relation."""
        return self._relation

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The key attributes."""
        return self._attributes

    @property
    def attribute_set(self) -> FrozenSet[str]:
        """The key attributes as a frozen set."""
        return frozenset(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyConstraint):
            return NotImplemented
        return self._relation == other._relation and frozenset(
            self._attributes
        ) == frozenset(other._attributes)

    def __hash__(self) -> int:
        return hash((self._relation, frozenset(self._attributes)))

    def __repr__(self) -> str:
        return f"KeyConstraint({self._relation!r}, {list(self._attributes)})"

    def __str__(self) -> str:
        return f"key({self._relation}: {', '.join(self._attributes)})"


class InclusionDependency:
    """An inclusion dependency ``pi_X(lhs) subseteq pi_Y(rhs)``.

    Parameters
    ----------
    lhs, rhs:
        Names of the left- and right-hand relations (``R_i`` and ``R_j``).
    lhs_attributes, rhs_attributes:
        Equally long attribute sequences; position ``p`` of the left sequence
        corresponds to position ``p`` of the right one. If ``rhs_attributes``
        is omitted, it defaults to ``lhs_attributes`` (the paper's
        same-name case ``pi_X(R_i) subseteq pi_X(R_j)``).

    Examples
    --------
    >>> ind = InclusionDependency("Sale", ("clerk",), "Emp")
    >>> ind.is_identity()
    True
    >>> str(ind)
    'Sale[clerk] <= Emp[clerk]'
    """

    __slots__ = ("_lhs", "_rhs", "_lhs_attributes", "_rhs_attributes")

    def __init__(
        self,
        lhs: str,
        lhs_attributes: Iterable[str],
        rhs: str,
        rhs_attributes: Optional[Iterable[str]] = None,
    ) -> None:
        self._lhs = check_name(lhs, "relation")
        self._rhs = check_name(rhs, "relation")
        lhs_attrs = tuple(lhs_attributes)
        rhs_attrs = tuple(rhs_attributes) if rhs_attributes is not None else lhs_attrs
        if not lhs_attrs:
            raise SchemaError("inclusion dependency must involve at least one attribute")
        if len(lhs_attrs) != len(rhs_attrs):
            raise SchemaError(
                "inclusion dependency sides must have equally many attributes: "
                f"{lhs_attrs} vs {rhs_attrs}"
            )
        if len(set(lhs_attrs)) != len(lhs_attrs) or len(set(rhs_attrs)) != len(rhs_attrs):
            raise SchemaError("inclusion dependency attributes must be distinct per side")
        self._lhs_attributes = lhs_attrs
        self._rhs_attributes = rhs_attrs

    @property
    def lhs(self) -> str:
        """Name of the contained relation (``R_i``)."""
        return self._lhs

    @property
    def rhs(self) -> str:
        """Name of the containing relation (``R_j``)."""
        return self._rhs

    @property
    def lhs_attributes(self) -> Tuple[str, ...]:
        """Attribute sequence on the contained side."""
        return self._lhs_attributes

    @property
    def rhs_attributes(self) -> Tuple[str, ...]:
        """Attribute sequence on the containing side."""
        return self._rhs_attributes

    def is_identity(self) -> bool:
        """Whether both sides use identical attribute names (no renaming)."""
        return self._lhs_attributes == self._rhs_attributes

    def renaming(self) -> Dict[str, str]:
        """Mapping from lhs attribute names to the corresponding rhs names."""
        return dict(zip(self._lhs_attributes, self._rhs_attributes))

    def inverse_renaming(self) -> Dict[str, str]:
        """Mapping from rhs attribute names back to the lhs names."""
        return dict(zip(self._rhs_attributes, self._lhs_attributes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InclusionDependency):
            return NotImplemented
        return (
            self._lhs == other._lhs
            and self._rhs == other._rhs
            and self._lhs_attributes == other._lhs_attributes
            and self._rhs_attributes == other._rhs_attributes
        )

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs, self._lhs_attributes, self._rhs_attributes))

    def __repr__(self) -> str:
        return (
            f"InclusionDependency({self._lhs!r}, {list(self._lhs_attributes)}, "
            f"{self._rhs!r}, {list(self._rhs_attributes)})"
        )

    def __str__(self) -> str:
        return (
            f"{self._lhs}[{', '.join(self._lhs_attributes)}] <= "
            f"{self._rhs}[{', '.join(self._rhs_attributes)}]"
        )
