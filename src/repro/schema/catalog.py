"""The catalog: the paper's set ``D`` of relation schemata plus constraints.

A :class:`Catalog` owns the relation schemata, the (at most one per relation)
key constraints, and the set of inclusion dependencies, and it enforces the
paper's structural assumptions at definition time:

* relation names are unique,
* every constraint refers to declared relations/attributes,
* the set of inclusion dependencies is **acyclic** (Section 2 requires this;
  it is what makes the recursive substitution in Theorem 2.2 / footnote 3
  terminate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import SchemaError
from repro.schema.constraints import InclusionDependency, KeyConstraint
from repro.schema.schema import RelationSchema

if TYPE_CHECKING:
    from repro.algebra.conditions import Condition


class Catalog:
    """A set of relation schemata with key and inclusion constraints.

    Examples
    --------
    >>> catalog = Catalog()
    >>> _ = catalog.add_relation(RelationSchema("Sale", ("item", "clerk")))
    >>> _ = catalog.add_relation(RelationSchema("Emp", ("clerk", "age"), key=("clerk",)))
    >>> _ = catalog.add_inclusion(InclusionDependency("Sale", ("clerk",), "Emp"))
    >>> sorted(catalog.relation_names())
    ['Emp', 'Sale']
    """

    def __init__(self) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        self._inclusions: List[InclusionDependency] = []
        self._checks: Dict[str, List[Condition]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_relation(self, schema: RelationSchema) -> RelationSchema:
        """Register a relation schema; returns it for chaining."""
        if schema.name in self._relations:
            raise SchemaError(f"relation {schema.name!r} already declared")
        self._relations[schema.name] = schema
        return schema

    def relation(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[Iterable[str]] = None,
    ) -> RelationSchema:
        """Convenience: build and register a :class:`RelationSchema`."""
        return self.add_relation(RelationSchema(name, attributes, key=key))

    def add_inclusion(self, ind: InclusionDependency) -> InclusionDependency:
        """Register an inclusion dependency, preserving IND-acyclicity."""
        for side, attrs in ((ind.lhs, ind.lhs_attributes), (ind.rhs, ind.rhs_attributes)):
            schema = self._require(side)
            missing = set(attrs) - schema.attribute_set
            if missing:
                raise SchemaError(
                    f"inclusion dependency {ind} mentions attributes "
                    f"{sorted(missing)} not in relation {side!r}"
                )
        if ind.lhs == ind.rhs:
            raise SchemaError(f"inclusion dependency {ind} relates a relation to itself")
        if ind in self._inclusions:
            return ind
        self._inclusions.append(ind)
        try:
            self.inclusion_order()
        except SchemaError:
            self._inclusions.pop()
            raise
        return ind

    def inclusion(
        self,
        lhs: str,
        lhs_attributes: Iterable[str],
        rhs: str,
        rhs_attributes: Optional[Iterable[str]] = None,
    ) -> InclusionDependency:
        """Convenience: build and register an :class:`InclusionDependency`."""
        return self.add_inclusion(
            InclusionDependency(lhs, lhs_attributes, rhs, rhs_attributes)
        )

    def foreign_key(
        self, lhs: str, attributes: Iterable[str], rhs: str
    ) -> InclusionDependency:
        """Register a foreign key: an IND into the *key* of ``rhs``.

        The attribute sequence on the referencing side maps positionally onto
        the declared key of the referenced relation.
        """
        rhs_schema = self._require(rhs)
        if rhs_schema.key is None:
            raise SchemaError(f"foreign key target {rhs!r} has no declared key")
        return self.add_inclusion(
            InclusionDependency(lhs, attributes, rhs, rhs_schema.key)
        )

    def add_check(self, relation: str, condition: Condition) -> None:
        """Declare a check constraint: every tuple of ``relation`` satisfies
        ``condition`` (equivalently, ``sigma_condition(R) = R``).

        Section 5 of the paper relies on such invariants implicitly: a
        per-location source's tuples all carry that location's dimension
        value, which is what lets the fact table's member selections be
        recognized as no-ops (see :mod:`repro.core.star`).
        """
        schema = self._require(relation)
        missing = condition.attributes() - schema.attribute_set
        if missing:
            raise SchemaError(
                f"check constraint on {relation!r} mentions unknown attributes "
                f"{sorted(missing)}"
            )
        self._checks.setdefault(relation, []).append(condition)

    def checks(self, relation: str) -> Tuple[Condition, ...]:
        """The declared check constraints of ``relation`` (possibly empty)."""
        self._require(relation)
        return tuple(self._checks.get(relation, ()))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _require(self, name: str) -> RelationSchema:
        schema = self._relations.get(name)
        if schema is None:
            raise SchemaError(f"unknown relation {name!r}")
        return schema

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        return self._require(name)

    def get(self, name: str) -> Optional[RelationSchema]:
        """The schema named ``name``, or ``None``."""
        return self._relations.get(name)

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names, in declaration order."""
        return tuple(self._relations)

    def schemas(self) -> Tuple[RelationSchema, ...]:
        """All relation schemata, in declaration order."""
        return tuple(self._relations.values())

    def attributes(self, name: str) -> FrozenSet[str]:
        """``attr(R)`` for the relation named ``name``."""
        return self._require(name).attribute_set

    def key(self, name: str) -> Optional[Tuple[str, ...]]:
        """The declared key of ``name``, or ``None``."""
        return self._require(name).key

    def key_constraints(self) -> Tuple[KeyConstraint, ...]:
        """All declared keys as :class:`KeyConstraint` objects."""
        return tuple(
            KeyConstraint(schema.name, schema.key)
            for schema in self._relations.values()
            if schema.key is not None
        )

    def inclusions(self) -> Tuple[InclusionDependency, ...]:
        """All declared inclusion dependencies."""
        return tuple(self._inclusions)

    def inclusions_into(self, rhs: str) -> Tuple[InclusionDependency, ...]:
        """INDs whose containing (right-hand) relation is ``rhs``."""
        return tuple(ind for ind in self._inclusions if ind.rhs == rhs)

    def inclusions_from(self, lhs: str) -> Tuple[InclusionDependency, ...]:
        """INDs whose contained (left-hand) relation is ``lhs``."""
        return tuple(ind for ind in self._inclusions if ind.lhs == lhs)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def inclusion_order(self) -> Tuple[str, ...]:
        """A topological order of relations w.r.t. the IND graph.

        The returned order lists ``lhs`` before ``rhs`` for every IND
        ``pi_X(lhs) subseteq pi_Y(rhs)``. Theorem 2.2 uses this order when it
        replaces IND-derived views ``pi_X(R_i)`` by ``R_i``'s representation
        over warehouse views (footnote 3): processing relations in this order
        guarantees the representation of ``R_i`` exists before it is needed.

        Raises :class:`~repro.errors.SchemaError` if the IND set is cyclic,
        which the paper excludes by assumption.
        """
        # Kahn's algorithm over edges lhs -> rhs.
        successors: Dict[str, List[str]] = {name: [] for name in self._relations}
        indegree: Dict[str, int] = {name: 0 for name in self._relations}
        for ind in self._inclusions:
            successors[ind.lhs].append(ind.rhs)
            indegree[ind.rhs] += 1
        ready = [name for name in self._relations if indegree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._relations):
            cyclic = sorted(name for name in self._relations if indegree[name] > 0)
            raise SchemaError(
                f"inclusion dependencies are cyclic (involving {cyclic}); "
                "the paper requires an acyclic IND set"
            )
        return tuple(order)

    def __repr__(self) -> str:
        return (
            f"Catalog(relations={list(self._relations)}, "
            f"inclusions={[str(i) for i in self._inclusions]})"
        )

    def describe(self) -> str:
        """A human-readable, multi-line description of the catalog."""
        lines = [str(schema) for schema in self._relations.values()]
        lines.extend(str(ind) for ind in self._inclusions)
        return "\n".join(lines)
