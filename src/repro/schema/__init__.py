"""Schema layer: relation schemata, integrity constraints, and catalogs.

This package models the paper's set ``D = {R_1, ..., R_n}`` of relation
schemata together with the two constraint classes the paper exploits when
minimizing complements (Section 2):

* at most one **key** per relation schema, and
* an **acyclic** set of **inclusion dependencies**
  ``pi_X(R_i) subseteq pi_Y(R_j)``.

Public API:

* :class:`~repro.schema.schema.RelationSchema`
* :class:`~repro.schema.constraints.KeyConstraint`
* :class:`~repro.schema.constraints.InclusionDependency`
* :class:`~repro.schema.catalog.Catalog`
"""

from repro.schema.constraints import InclusionDependency, KeyConstraint
from repro.schema.catalog import Catalog
from repro.schema.schema import RelationSchema

__all__ = [
    "Catalog",
    "InclusionDependency",
    "KeyConstraint",
    "RelationSchema",
]
