"""Relation schemata.

A :class:`RelationSchema` is a named, ordered list of attribute names,
optionally with one declared key (the paper assumes "at most one key is
declared for every relation schema", Section 2). Attribute order is kept for
presentation; all semantics are attribute-*set* based, as in the paper's
named-attribute relational algebra with natural joins.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.errors import SchemaError

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_VALID_REST = _VALID_FIRST | set("0123456789")


def check_name(name: str, kind: str) -> str:
    """Validate an identifier (relation or attribute name) and return it.

    Names must be non-empty, start with a letter or underscore, and contain
    only letters, digits, and underscores. This keeps the textual expression
    syntax (``repro.algebra.parser``) unambiguous.
    """
    if not isinstance(name, str) or not name:
        raise SchemaError(f"{kind} name must be a non-empty string, got {name!r}")
    if name[0] not in _VALID_FIRST or any(ch not in _VALID_REST for ch in name[1:]):
        raise SchemaError(f"{kind} name {name!r} is not a valid identifier")
    return name


class RelationSchema:
    """A relation schema ``R(A_1, ..., A_m)`` with an optional key.

    Parameters
    ----------
    name:
        Relation name, unique within a :class:`~repro.schema.catalog.Catalog`.
    attributes:
        Ordered attribute names; duplicates are rejected.
    key:
        Optional key attributes (a subset of ``attributes``). Following the
        paper, at most one key may be declared per relation.

    Examples
    --------
    >>> emp = RelationSchema("Emp", ("clerk", "age"), key=("clerk",))
    >>> emp.attribute_set == frozenset({"clerk", "age"})
    True
    >>> emp.key
    ('clerk',)
    """

    __slots__ = ("_name", "_attributes", "_attribute_set", "_key")

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[Iterable[str]] = None,
    ) -> None:
        self._name = check_name(name, "relation")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        seen = set()
        for attr in attrs:
            check_name(attr, "attribute")
            if attr in seen:
                raise SchemaError(f"duplicate attribute {attr!r} in relation {name!r}")
            seen.add(attr)
        self._attributes = attrs
        self._attribute_set = frozenset(attrs)
        if key is None:
            self._key: Optional[Tuple[str, ...]] = None
        else:
            key_attrs = tuple(key)
            if not key_attrs:
                raise SchemaError(f"key of relation {name!r} must be non-empty")
            if len(set(key_attrs)) != len(key_attrs):
                raise SchemaError(f"key of relation {name!r} has duplicate attributes")
            missing = set(key_attrs) - self._attribute_set
            if missing:
                raise SchemaError(
                    f"key attributes {sorted(missing)} not in relation {name!r}"
                )
            # Canonical order: the order in which attributes appear in the schema.
            self._key = tuple(a for a in attrs if a in set(key_attrs))

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names in declaration order."""
        return self._attributes

    @property
    def attribute_set(self) -> FrozenSet[str]:
        """Attribute names as a frozen set (``attr(R)`` in the paper)."""
        return self._attribute_set

    @property
    def key(self) -> Optional[Tuple[str, ...]]:
        """The declared key attributes, or ``None`` if no key was declared."""
        return self._key

    @property
    def key_set(self) -> Optional[FrozenSet[str]]:
        """The declared key as a frozen set, or ``None``."""
        return frozenset(self._key) if self._key is not None else None

    def has_key(self) -> bool:
        """Whether a key is declared for this schema."""
        return self._key is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self._name == other._name
            and self._attributes == other._attributes
            and self._key == other._key
        )

    def __hash__(self) -> int:
        return hash((self._name, self._attributes, self._key))

    def __repr__(self) -> str:
        key_part = f", key={list(self._key)}" if self._key is not None else ""
        return f"RelationSchema({self._name!r}, {list(self._attributes)}{key_part})"

    def __str__(self) -> str:
        cols = []
        key = set(self._key or ())
        for attr in self._attributes:
            cols.append(f"{attr}*" if attr in key else attr)
        return f"{self._name}({', '.join(cols)})"
