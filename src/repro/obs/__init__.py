"""Observability for the maintenance engine: traces, metrics, explain.

Three pieces, all optional and all zero-cost when unused:

* :mod:`repro.obs.trace` — hierarchical :class:`Span` trees built by a
  :class:`Tracer` and delivered to pluggable collectors
  (:class:`RingBufferCollector` in memory, :class:`JsonlSink` on disk);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters/gauges/histograms; the evaluator's ``EvalStats`` remains as the
  hot-path facade and is folded in under ``evaluator.*`` names;
* :mod:`repro.obs.explain` / :mod:`repro.obs.report` — rendering the last
  refresh's trace as an annotated operator tree
  (:meth:`Warehouse.explain`) and summarizing JSONL trace files
  (``python -m repro obs report``).

See ``docs/observability.md`` for the span model, the metric catalog, and
a worked Figure 1 walkthrough.
"""

from repro.obs.trace import (
    JsonlSink,
    RingBufferCollector,
    Span,
    TraceCollector,
    Tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.explain import explain_refresh, render_trace, source_relations_read
from repro.obs.report import report_file, summarize

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferCollector",
    "Span",
    "TraceCollector",
    "Tracer",
    "explain_refresh",
    "render_trace",
    "report_file",
    "source_relations_read",
    "summarize",
]
