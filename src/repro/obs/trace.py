"""Hierarchical trace spans for the maintenance engine.

A *span* records one timed unit of work — a refresh, an update
normalization, a single operator evaluation — together with attributes
(rows in/out, the relation read, whether a fast path fired) and child
spans. Spans form trees: the maintenance engine opens a ``refresh`` span,
``normalize_update`` and per-relation ``maintain`` spans nest inside it,
and the evaluator opens one span per operator it actually computes.

Tracing is strictly opt-in. The engine holds ``tracer=None`` by default
and every instrumented code path guards on that, so the disabled path
allocates no spans and stays within noise of the untraced engine
(asserted by ``tests/obs/test_zero_overhead.py``). When enabled, finished
root spans are handed to one or more :class:`TraceCollector`\\ s — an
in-memory :class:`RingBufferCollector` by default, optionally a
:class:`JsonlSink` that streams every span to a JSON-lines file for
offline analysis (``python -m repro obs report``).

Examples
--------
>>> collector = RingBufferCollector()
>>> tracer = Tracer([collector])
>>> with tracer.span("refresh", relations=["Sale"]) as root:
...     with tracer.span("normalize_update") as inner:
...         _ = inner.set(rows=1)
>>> trace = collector.last("refresh")
>>> [child.name for child in trace.children]
['normalize_update']
>>> trace.children[0].attributes["rows"]
1
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence


class Span:
    """One timed, attributed node of a trace tree.

    Attributes
    ----------
    name:
        What the span measures (``"refresh"``, ``"join"``, ``"read"``, ...).
    attributes:
        Free-form ``{key: value}`` annotations — rows in/out, relation
        names, ``fastpath``/``cached``/``index_hit`` markers.
    started_at / ended_at:
        Clock readings (seconds; ``ended_at`` is ``None`` while open).
    children:
        Nested spans, in completion order.
    span_id / parent_id:
        Tracer-local identifiers (``parent_id`` is ``None`` for roots);
        they key the flattened JSONL representation.
    """

    __slots__ = (
        "name",
        "attributes",
        "started_at",
        "ended_at",
        "children",
        "span_id",
        "parent_id",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
        started_at: float = 0.0,
        span_id: int = 0,
        parent_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes) if attributes else {}
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.children: List["Span"] = []
        self.span_id = span_id
        self.parent_id = parent_id

    @property
    def duration(self) -> float:
        """Wall-clock seconds this span covered (0.0 while still open)."""
        if self.ended_at is None:
            return 0.0
        return self.ended_at - self.started_at

    def set(self, **attributes: object) -> "Span":
        """Attach attributes to this span (returns self for chaining)."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> Optional["Span"]:
        """The first span named ``name`` in this subtree (pre-order)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, pre-order."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, object]:
        """A flat JSON-serializable record (children via ``parent_id``)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.started_at,
            "duration_ms": round(self.duration * 1e3, 6),
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in self.attributes.items())
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms"
            f"{', ' + attrs if attrs else ''}, {len(self.children)} children)"
        )


class TraceCollector:
    """Where finished root spans go. Subclasses override :meth:`collect`."""

    def collect(self, root: Span) -> None:
        """Receive one finished root span (with its full subtree)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (no-op by default)."""


class RingBufferCollector(TraceCollector):
    """Keeps the last ``capacity`` root spans in memory (the default sink).

    Bounded by construction, so a long-lived warehouse can leave tracing on
    without growing without limit. ``Warehouse.explain()`` reads the newest
    ``refresh`` root from here.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._roots: deque = deque(maxlen=capacity)

    def collect(self, root: Span) -> None:
        self._roots.append(root)

    @property
    def roots(self) -> List[Span]:
        """The buffered root spans, oldest first."""
        return list(self._roots)

    def last(self, name: Optional[str] = None) -> Optional[Span]:
        """The newest root span (optionally: the newest one named ``name``)."""
        for root in reversed(self._roots):
            if name is None or root.name == name:
                return root
        return None

    def clear(self) -> None:
        """Drop every buffered trace."""
        self._roots.clear()

    def __len__(self) -> int:
        return len(self._roots)

    def __repr__(self) -> str:
        return f"RingBufferCollector({len(self._roots)}/{self.capacity} traces)"


class JsonlSink(TraceCollector):
    """Streams every span of every finished trace to a JSON-lines file.

    One JSON object per span (see :meth:`Span.to_dict`); trees are
    flattened and reconstructable via ``span_id``/``parent_id``. The file
    is line-buffered-appended per trace, so a crashed process loses at most
    the in-flight trace. Summarize a file with
    ``python -m repro obs report FILE``.
    """

    def __init__(self, path: str, mode: str = "a") -> None:
        self.path = path
        self._handle = open(path, mode, encoding="utf-8")

    def collect(self, root: Span) -> None:
        lines = [json.dumps(span.to_dict(), sort_keys=True) for span in root.walk()]
        self._handle.write("\n".join(lines) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JsonlSink({self.path!r})"


class Tracer:
    """Builds span trees: a context-manager stack feeding collectors.

    A tracer is single-threaded by design (the engine is); it keeps the
    stack of open spans, assigns ids, stamps start/end times from ``clock``
    (injectable for deterministic tests), and hands finished *root* spans
    to every collector.

    The engine treats ``tracer=None`` as "tracing disabled" — there is no
    null-object tracer on the hot path, so disabling really is free.
    """

    def __init__(
        self,
        collectors: Optional[Iterable[TraceCollector]] = None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.collectors: List[TraceCollector] = list(collectors or ())
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open a child span of the current span (or a new root).

        Yields the :class:`Span` so the body can :meth:`Span.set` result
        attributes. On exit the span is closed, attached to its parent, and
        — if it was a root — delivered to every collector.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            attributes,
            started_at=self._clock(),
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            span.ended_at = self._clock()
            self._stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                for collector in self.collectors:
                    collector.collect(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attributes: object) -> None:
        """Attach attributes to the innermost open span (no-op outside one).

        This is how the evaluator marks fast-path firings and index hits on
        the operator span it is currently inside.
        """
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def __repr__(self) -> str:
        return f"Tracer({len(self._stack)} open, {len(self.collectors)} collectors)"
