"""Summarizing JSONL trace files (``python -m repro obs report``).

A :class:`~repro.obs.trace.JsonlSink` flattens every finished trace into
one JSON object per span. This module aggregates such a file back into a
per-operator table — span count, total/mean wall time, rows produced,
cache hits, fast-path firings — the offline counterpart of the in-process
:meth:`Warehouse.explain`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple


class SpanAggregate:
    """Accumulated statistics for one span group (one table row)."""

    __slots__ = ("key", "count", "total_ms", "rows_out", "cached", "fastpaths")

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.total_ms = 0.0
        self.rows_out = 0
        self.cached = 0
        self.fastpaths = 0

    def add(self, record: Dict[str, object]) -> None:
        """Fold one span record into the aggregate."""
        self.count += 1
        self.total_ms += float(record.get("duration_ms", 0.0))
        attributes = record.get("attributes") or {}
        rows = attributes.get("rows_out")
        if isinstance(rows, int):
            self.rows_out += rows
        if attributes.get("cached"):
            self.cached += 1
        if attributes.get("fastpath"):
            self.fastpaths += 1

    @property
    def mean_ms(self) -> float:
        """Mean duration per span (milliseconds)."""
        return self.total_ms / self.count if self.count else 0.0


def load_spans(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace file into span records (blank lines skipped)."""
    records: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not a JSON span record: {exc}")
    return records


def group_key(record: Dict[str, object]) -> str:
    """The aggregation key for one span record.

    Operator name, refined by the attributes that matter for a summary:
    ``read`` spans split per relation, fast-path spans split per rewrite
    (``difference[anti_join]``), so the table separates "anti-join fired"
    from "plain difference".
    """
    name = str(record.get("name", "?"))
    attributes = record.get("attributes") or {}
    relation = attributes.get("relation")
    if relation is not None and name in ("read", "reconstruct", "maintain"):
        return f"{name}:{relation}"
    fastpath = attributes.get("fastpath")
    if fastpath:
        return f"{name}[{fastpath}]"
    return name


def summarize(records: Iterable[Dict[str, object]]) -> List[SpanAggregate]:
    """Aggregate span records by :func:`group_key`."""
    groups: Dict[str, SpanAggregate] = {}
    for record in records:
        key = group_key(record)
        aggregate = groups.get(key)
        if aggregate is None:
            aggregate = groups[key] = SpanAggregate(key)
        aggregate.add(record)
    return list(groups.values())


def render_report(
    aggregates: List[SpanAggregate],
    sort: str = "total",
    limit: Optional[int] = None,
) -> str:
    """Render aggregates as a fixed-width table.

    ``sort`` is one of ``total`` (total time, default), ``count``, or
    ``name``; ``limit`` keeps only the first N rows after sorting.
    """
    orders = {
        "total": lambda a: (-a.total_ms, a.key),
        "count": lambda a: (-a.count, a.key),
        "name": lambda a: a.key,
    }
    if sort not in orders:
        raise ValueError(f"unknown sort order {sort!r} (use total, count, or name)")
    rows = sorted(aggregates, key=orders[sort])
    truncated = 0
    if limit is not None and len(rows) > limit:
        truncated = len(rows) - limit
        rows = rows[:limit]

    headers = ("span", "count", "total ms", "mean ms", "rows out", "cached", "fastpath")
    table: List[Tuple[str, ...]] = [headers]
    for aggregate in rows:
        table.append(
            (
                aggregate.key,
                str(aggregate.count),
                f"{aggregate.total_ms:.3f}",
                f"{aggregate.mean_ms:.4f}",
                str(aggregate.rows_out),
                str(aggregate.cached),
                str(aggregate.fastpaths),
            )
        )
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(widths[i]) for i, cell in enumerate(row) if i > 0]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    if truncated:
        lines.append(f"... {truncated} more row(s); raise --limit to see them")
    return "\n".join(lines)


def report_file(path: str, sort: str = "total", limit: Optional[int] = None) -> str:
    """Load, aggregate, and render one JSONL trace file (the CLI body)."""
    records = load_spans(path)
    if not records:
        return f"{path}: no spans recorded"
    traces = sum(1 for record in records if record.get("parent_id") is None)
    total_ms = sum(
        float(record.get("duration_ms", 0.0))
        for record in records
        if record.get("parent_id") is None
    )
    header = (
        f"{path}: {len(records)} spans in {traces} trace(s), "
        f"{total_ms:.3f}ms traced\n"
    )
    return header + render_report(summarize(records), sort=sort, limit=limit)
