"""Rendering traces as annotated operator trees (``Warehouse.explain()``).

A refresh trace *is* the operator tree the maintenance engine executed:
the ``refresh`` root span contains ``normalize_update`` (one
``reconstruct`` per updated relation) and one ``maintain`` span per
warehouse relation, whose children are the evaluator's per-operator spans
(``join``, ``project``, ``difference``, ``read``, ...). This module turns
that tree into the text report behind :meth:`Warehouse.explain` —
annotated with wall time, row counts, cache hits, and fast-path markers,
so claims like "the Prop 2.2 anti-join rewrite fired" or "this refresh
read zero source relations" are visible rather than inferred.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.trace import Span

# Attribute keys rendered first, in this order; the rest follow sorted.
_LEADING_ATTRS = ("relation", "relations", "fastpath", "cached", "index_hit")


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(str(v) for v in value) + "]"
    return str(value)


def _format_attributes(span: Span) -> str:
    attrs = span.attributes
    if not attrs:
        return ""
    keys = [k for k in _LEADING_ATTRS if k in attrs]
    keys += sorted(k for k in attrs if k not in _LEADING_ATTRS)
    return "  " + " ".join(f"{key}={_format_value(attrs[key])}" for key in keys)


def _format_line(span: Span) -> str:
    label = span.name
    if span.attributes.get("fastpath"):
        label = f"{label}*"  # the fast-path marker; legend in the header
    return f"{label} [{span.duration * 1e3:.3f}ms]{_format_attributes(span)}"


def render_trace(root: Span, max_depth: Optional[int] = None) -> str:
    """Render ``root``'s subtree as an indented, box-drawn operator tree.

    Spans whose ``fastpath`` attribute is set are starred (``join*``,
    ``difference*``); ``max_depth`` truncates deep operator trees (a
    ``...`` line marks the cut).
    """
    lines: List[str] = [_format_line(root)]

    def emit(span: Span, prefix: str, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            if span.children:
                lines.append(prefix + "└─ ...")
            return
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            connector = "└─ " if last else "├─ "
            lines.append(prefix + connector + _format_line(child))
            emit(child, prefix + ("   " if last else "│  "), depth + 1)

    emit(root, "", 1)
    return "\n".join(lines)


def explain_refresh(root: Span, max_depth: Optional[int] = None) -> str:
    """The full ``explain()`` report for one refresh trace.

    Prepends a summary header (total time, operator/span counts, fast-path
    firings, relations read) to the rendered tree.
    """
    spans = list(root.walk())
    fastpaths = [s for s in spans if "fastpath" in s.attributes]
    cached = [s for s in spans if s.attributes.get("cached")]
    reads = sorted(
        {
            str(s.attributes["relation"])
            for s in spans
            if s.name == "read" and "relation" in s.attributes
        }
    )
    header = [
        f"== {root.name} trace: {root.duration * 1e3:.3f}ms, "
        f"{len(spans)} spans ==",
        f"fast paths fired: {len(fastpaths)}"
        + (
            " ("
            + ", ".join(
                sorted({str(s.attributes['fastpath']) for s in fastpaths})
            )
            + ")"
            if fastpaths
            else ""
        ),
        f"cached sub-results served: {len(cached)}",
        f"relations read: {', '.join(reads) if reads else '(none)'}",
        "(* = fast-path span)",
        "",
    ]
    return "\n".join(header) + render_trace(root, max_depth=max_depth)


def source_relations_read(root: Span, source_names) -> List[str]:
    """Which of ``source_names`` this trace read (``read`` spans).

    The paper's update independence (Theorem 4.1), made checkable: a
    complement-based refresh trace must return ``[]`` here — every
    ``read`` span names a warehouse relation or a delta binding, never a
    source relation. (Source and warehouse relation names are disjoint:
    warehouse relations are views and ``C_``-prefixed complements.)
    """
    sources = frozenset(source_names)
    return sorted(
        {
            str(span.attributes["relation"])
            for span in root.walk()
            if span.name == "read" and span.attributes.get("relation") in sources
        }
    )
