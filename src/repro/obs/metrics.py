"""Named counters, gauges, and histograms for the warehouse runtime.

A :class:`MetricsRegistry` is the engine's one place for numeric
observability: the warehouse folds the evaluator's per-refresh
:class:`~repro.algebra.evaluator.EvalStats` counters into it
(``evaluator.*``), records refresh latencies and batch sizes, tracks
storage gauges (total / view / complement rows, per-complement sizes),
and the integrator counts notifications and per-source updates. The full
metric catalog — every name, type, and unit — is documented in
``docs/observability.md``.

``EvalStats`` itself survives as the *compatibility facade*: it is the
zero-dependency counter struct the evaluator increments on its hot path,
and :meth:`MetricsRegistry.merge_eval_stats` is the bridge that publishes
a snapshot of it under stable metric names. New code should read the
registry; ``Warehouse.eval_stats`` keeps working for old code.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("warehouse.refreshes").inc()
>>> registry.histogram("warehouse.refresh_seconds").observe(0.002)
>>> registry.counter("warehouse.refreshes").value
1
>>> registry.snapshot()["warehouse.refresh_seconds"]["count"]
1
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count (events, rows, hits)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (by {amount})")
        self.value += amount

    def snapshot(self) -> int:
        """The current count."""
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that can move both ways (rows, cache entries)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount

    def snapshot(self) -> float:
        """The current value."""
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A distribution summary: count, sum, min, max, optional buckets.

    ``buckets`` is an increasing sequence of upper bounds; each observation
    increments the first bucket whose bound is >= the value (observations
    above every bound land in the implicit overflow bucket, reported under
    ``inf``). With no buckets the histogram is a plain summary.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets", "bucket_counts")

    kind = "histogram"

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Tuple[float, ...] = tuple(buckets) if buckets else ()
        if self.buckets and list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {name!r} buckets must be increasing")
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.buckets:
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """The mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Bucket counts are only merged when the bucket bounds agree;
        otherwise the summary fields merge and the finer bucket detail of
        ``other`` is dropped (count/sum/min/max stay exact either way).
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.minimum is None or (
            other.minimum is not None and other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if self.maximum is None or (
            other.maximum is not None and other.maximum > self.maximum
        ):
            self.maximum = other.maximum
        if self.buckets and self.buckets == other.buckets:
            self.bucket_counts = [
                a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
            ]

    def snapshot(self) -> Dict[str, object]:
        """Summary dict: count/sum/min/max/mean (+ buckets when configured)."""
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }
        if self.buckets:
            labels = [f"le_{bound:g}" for bound in self.buckets] + ["inf"]
            out["buckets"] = dict(zip(labels, self.bucket_counts))
        return out

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"
        )


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted paths (``layer.metric`` or ``layer.metric.<relation>``
    for per-relation families); units are part of the name by convention
    (``*_seconds``, ``*_rows``). Re-requesting a name returns the existing
    instrument; requesting it as a different kind raises ``ValueError``.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("integrator.notifications").inc(3)
    >>> registry.gauge("warehouse.rows").set(42)
    >>> sorted(registry)
    ['integrator.notifications', 'warehouse.rows']
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"not {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram named ``name`` (``buckets`` applies on creation only)."""
        return self._get(name, Histogram, buckets)

    def get(self, name: str):
        """The instrument named ``name``, or ``None``."""
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0):
        """Shortcut: the counter/gauge value under ``name`` (or ``default``)."""
        instrument = self._instruments.get(name)
        if instrument is None or isinstance(instrument, Histogram):
            return default
        return instrument.value

    def ratio(self, numerator: str, denominator_extra: str) -> float:
        """``n / (n + d)`` over two counters — e.g. a cache hit ratio.

        ``registry.ratio("evaluator.cache_hits", "evaluator.cache_misses")``
        is the fraction of cross-update lookups served from cache. Returns
        0.0 when both counters are zero or missing.
        """
        n = self.value(numerator)
        d = self.value(denominator_extra)
        return n / (n + d) if (n + d) else 0.0

    def merge_eval_stats(self, stats, prefix: str = "evaluator.") -> None:
        """Fold an :class:`~repro.algebra.evaluator.EvalStats` snapshot in.

        Each ``EvalStats`` field becomes the counter ``prefix + field`` —
        the bridge between the evaluator's hot-path counter struct (kept as
        a compatibility facade) and the canonical metric names.
        """
        for field, amount in stats.snapshot().items():
            if amount:
                self.counter(prefix + field).inc(amount)

    def merge_registry(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold every instrument of ``other`` into this registry.

        Counters and gauges add, histograms merge (see
        :meth:`Histogram.merge`); ``prefix`` is prepended to each incoming
        name. This is how a sharded warehouse aggregates its per-shard
        registries into one cross-shard view: fold each shard's registry in
        (optionally under ``shard<i>.``) without disturbing the shards' own
        instruments.
        """
        for name, instrument in other._instruments.items():
            target = prefix + name
            if isinstance(instrument, Counter):
                self.counter(target).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(target).inc(instrument.value)
            else:
                self.histogram(target, instrument.buckets or None).merge(instrument)

    def snapshot(self) -> Dict[str, object]:
        """``{name: value-or-summary}`` for every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def describe(self) -> str:
        """A human-readable table of every instrument."""
        lines = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                rendered = (
                    f"count={instrument.count} sum={instrument.total:.6g} "
                    f"mean={instrument.mean:.6g}"
                )
            else:
                rendered = f"{instrument.value:g}"
            lines.append(f"{name:<44} {instrument.kind:<9} {rendered}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
