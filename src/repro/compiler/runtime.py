"""Compiled refresh closures: specialized, certificate-trusting execution.

Where the interpreter walks the maintenance ASTs on every refresh —
re-dispatching on node types, re-hashing memo keys, re-deciding fast
paths — the runtime here walks each AST **once**, at compile time, and
emits a tree of plain Python closures over the columnar kernels
(:class:`repro.storage.columnar.ColumnarTable`). All per-refresh work is
then closure calls and kernel calls:

* structural decisions (semi-join and Prop 2.2 anti-join recognition,
  ``pi(sigma(e))`` fusion into the single-pass ``select_project`` kernel,
  empty-branch short-circuit layout) happen at compile time;
* common sub-expressions are resolved at compile time into shared *frame
  slots* — one list index per distinct sub-expression, filled at most
  once per refresh;
* delta-free sub-expressions additionally carry a cross-refresh cell:
  if every input relation is the identical object as last time, the held
  result is reused — the compiled analogue of the interpreter's
  :class:`~repro.algebra.evaluator.EvaluationCache`.

:class:`RefreshCompiler` is the per-spec entry point: it certifies the
spec (:func:`repro.compiler.certificate.certify` — no PROVED certificate,
no compilation), compiles the Equation (4) inverses for update
normalization, and caches one :class:`CompiledRefresh` per update shape.
:meth:`RefreshCompiler.refresh` is a drop-in replacement for
:func:`repro.core.maintenance.refresh_state`: same ``(new_state,
applied)`` contract, including the keep-the-identical-object rule for
untouched relations.

This module is a ``scripts/check_hotpath.py`` target: the untraced path
reads no clocks and no environment and builds no spans; tracing lives
only in the ``_run_traced`` twins, which emit the same ``reconstruct`` /
``maintain`` / ``read`` span vocabulary as the interpreters so
``Warehouse.explain()`` and the ``REPRO_CHECK_INVARIANTS`` sanitizer work
unchanged on compiled refreshes.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.errors import CompileError, WarehouseError
from repro.algebra.evaluator import _join_operands
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Scope,
    Select,
    Union,
)
from repro.storage.columnar import ColumnarTable
from repro.storage.relation import Relation
from repro.storage.update import Delta, Update
from repro.core.complement import WarehouseSpec
from repro.core.maintenance import State, delta_bindings
from repro.compiler.certificate import TrustedCertificate, certify
from repro.compiler.fuse import fused_inverses, fused_plan, new_value_name

#: A compiled sub-expression: ``(env, frame) -> ColumnarTable``.
TableFn = Callable[[Dict[str, Relation], List[object]], ColumnarTable]
#: A compiled root: ``(env, frame) -> Relation``.
RootFn = Callable[[Dict[str, Relation], List[object]], Relation]


class _Cell:
    """Cross-refresh memo for one delta-free sub-expression.

    ``inputs`` snapshots the input relation objects at fill time; the
    held ``value`` is valid exactly while every input is *identical* (by
    ``is``) — the same staleness rule the interpreter's persistent cache
    uses, made safe by ``refresh_state``'s keep-identity contract for
    untouched relations.
    """

    __slots__ = ("inputs", "value")

    def __init__(self) -> None:
        self.inputs: Optional[Tuple[Relation, ...]] = None
        self.value: Optional[ColumnarTable] = None


class _Builder:
    """Compiles expressions to closures, sharing frame slots via CSE.

    ``cells`` is an optional cross-builder registry of the delta-free
    memo cells, keyed by expression key: when the inverse runners and
    every per-shape program share one registry, a reconstruction
    computed during update normalization is reused by the maintenance
    program of the same refresh (and vice versa) instead of being
    recomputed from scratch.
    """

    def __init__(
        self,
        scope: Scope,
        delta_names: FrozenSet[str],
        cells: Optional[Dict[tuple, "_Cell"]] = None,
    ) -> None:
        self.scope = scope
        self.delta_names = delta_names
        self.cells = {} if cells is None else cells
        self.size = 0  # number of frame slots allocated so far
        self._compiled: Dict[tuple, Tuple[TableFn, FrozenSet[str]]] = {}

    def compile(self, expr: Expression) -> Tuple[TableFn, FrozenSet[str]]:
        """The closure and relation-name dependency set for ``expr``."""
        key = expr._key()
        hit = self._compiled.get(key)
        if hit is not None:
            return hit
        built = self._build(expr)
        self._compiled[key] = built
        return built

    def _memoize(
        self, compute: TableFn, deps: FrozenSet[str], key: tuple
    ) -> Tuple[TableFn, FrozenSet[str]]:
        slot = self.size
        self.size += 1
        names = tuple(sorted(deps))
        if names and not (deps & self.delta_names):
            cell = self.cells.setdefault(key, _Cell())

            def fn(env, frame):
                value = frame[slot]
                if value is not None:
                    return value
                held = cell.inputs
                if held is not None and all(
                    env[name] is source for name, source in zip(names, held)
                ):
                    value = cell.value
                else:
                    value = compute(env, frame)
                    cell.inputs = tuple(env[name] for name in names)
                    cell.value = value
                frame[slot] = value
                return value

        else:

            def fn(env, frame):
                value = frame[slot]
                if value is None:
                    value = compute(env, frame)
                    frame[slot] = value
                return value

        return fn, deps

    def _build(self, expr: Expression) -> Tuple[TableFn, FrozenSet[str]]:
        key = expr._key()
        if isinstance(expr, RelationRef):
            name = expr.name
            if name not in self.scope:
                raise CompileError(
                    f"compiled plan references unknown relation {name!r}"
                )

            def compute(env, frame):
                return env[name].columnar()

            return self._memoize(compute, frozenset((name,)), key)

        if isinstance(expr, Empty):
            constant = ColumnarTable.empty(expr.attrs)

            def constant_fn(env, frame):
                return constant

            return constant_fn, frozenset()

        if isinstance(expr, Select):
            child_fn, deps = self.compile(expr.child)
            condition = expr.condition

            def compute(env, frame):
                return child_fn(env, frame).select(condition)

            return self._memoize(compute, deps, key)

        if isinstance(expr, Project):
            return self._build_project(expr)

        if isinstance(expr, Join):
            left_fn, left_deps = self.compile(expr.left)
            right_fn, right_deps = self.compile(expr.right)
            empty = ColumnarTable.empty(expr.attributes(self.scope))

            def compute(env, frame):
                left = left_fn(env, frame)
                if not left:
                    return empty
                right = right_fn(env, frame)
                if not right:
                    return empty
                return left.join(right)

            return self._memoize(compute, left_deps | right_deps, key)

        if isinstance(expr, Union):
            left_fn, left_deps = self.compile(expr.left)
            right_fn, right_deps = self.compile(expr.right)

            def compute(env, frame):
                return left_fn(env, frame).union(right_fn(env, frame))

            return self._memoize(compute, left_deps | right_deps, key)

        if isinstance(expr, Difference):
            return self._build_difference(expr)

        if isinstance(expr, Rename):
            child_fn, deps = self.compile(expr.child)
            mapping = dict(expr.mapping)

            def compute(env, frame):
                return child_fn(env, frame).rename(mapping)

            return self._memoize(compute, deps, key)

        raise CompileError(f"cannot compile {type(expr).__name__} nodes")

    def _build_project(self, expr: Project) -> Tuple[TableFn, FrozenSet[str]]:
        key = expr._key()
        child = expr.child
        attrs = expr.attrs
        if isinstance(child, Join):
            # pi_Z(L join R) with Z inside one operand's schema is a
            # semi-join — the same fast path the evaluators decide per
            # refresh, here decided once at compile time.
            target = frozenset(attrs)
            keep_side = other_side = None
            if target <= child.left.attribute_set(self.scope):
                keep_side, other_side = child.left, child.right
            elif target <= child.right.attribute_set(self.scope):
                keep_side, other_side = child.right, child.left
            if keep_side is not None:
                keep_fn, keep_deps = self.compile(keep_side)
                other_fn, other_deps = self.compile(other_side)
                empty = ColumnarTable.empty(attrs)

                def compute(env, frame):
                    keep = keep_fn(env, frame)
                    if not keep:
                        return empty
                    other = other_fn(env, frame)
                    if not other:
                        return empty
                    return keep.semi_join(other).project(attrs)

                return self._memoize(compute, keep_deps | other_deps, key)
        if isinstance(child, Select):
            # The chain pi_Z(sigma_c(e)) runs as the fused single-pass
            # select_project kernel: matching rows are gathered straight
            # into the projected columns.
            grand_fn, deps = self.compile(child.child)
            condition = child.condition

            def compute(env, frame):
                return grand_fn(env, frame).select_project(condition, attrs)

            return self._memoize(compute, deps, key)
        if isinstance(child, RelationRef):
            # pi_A over a bound relation runs in tuple world:
            # Relation.project keeps a per-relation projection cache that
            # delta-sized insert patches carry forward (so re-projecting a
            # patched warehouse relation is O(delta)), and the columnar
            # encode is patched from the previously held table instead of
            # being rebuilt whenever the row diff is small.
            name = child.name
            holder: List[object] = [None, None]  # (row set, encoded table)

            def compute(env, frame):
                projected = env[name].project(attrs)
                rows = projected.rows
                held_rows, held_table = holder
                if held_rows:
                    added = rows - held_rows
                    removed = held_rows - rows
                    if (len(added) + len(removed)) * 4 <= len(held_rows):
                        table = held_table.patched(added, removed)
                    else:
                        table = projected.columnar()
                else:
                    table = projected.columnar()
                holder[0] = rows
                holder[1] = table
                return table

            return self._memoize(compute, frozenset((name,)), key)
        child_fn, deps = self.compile(child)

        def compute(env, frame):
            return child_fn(env, frame).project(attrs)

        return self._memoize(compute, deps, key)

    def _build_difference(
        self, expr: Difference
    ) -> Tuple[TableFn, FrozenSet[str]]:
        key = expr._key()
        left_fn, left_deps = self.compile(expr.left)
        right = expr.right
        if (
            isinstance(right, Project)
            and isinstance(right.child, Join)
            and frozenset(right.attrs) == expr.left.attribute_set(self.scope)
        ):
            # Proposition 2.2's complement shape L - pi_{attr(L)}(L join S)
            # as a hash anti-join (two-operand joins only, matching the
            # interpreters' restriction).
            operands = _join_operands(right.child)
            if len(operands) == 2:
                left_key = expr.left._key()
                for index, operand in enumerate(operands):
                    if operand._key() == left_key:
                        other_fn, other_deps = self.compile(operands[1 - index])

                        def compute(env, frame):
                            keep = left_fn(env, frame)
                            if not keep:
                                return keep
                            return keep.anti_join(other_fn(env, frame))

                        return self._memoize(compute, left_deps | other_deps, key)
        right_fn, right_deps = self.compile(right)

        def compute(env, frame):
            keep = left_fn(env, frame)
            if not keep:
                return keep
            return keep.difference(right_fn(env, frame))

        return self._memoize(compute, left_deps | right_deps, key)


def _root_runner(
    expr: Expression, builder: _Builder
) -> Tuple[RootFn, FrozenSet[str]]:
    """A closure producing a tuple-world ``Relation`` for a plan root.

    Bare relation references return the bound object itself (identity
    matters: a ``patch`` program's inserts *are* the delta binding), a
    constant ``Empty`` root returns one shared empty relation, and
    everything else late-materializes the compiled table.
    """
    if isinstance(expr, RelationRef):
        name = expr.name

        def ref_fn(env, frame):
            return env[name]

        return ref_fn, frozenset((name,))
    if isinstance(expr, Empty):
        constant = Relation.empty(expr.attrs)

        def empty_fn(env, frame):
            return constant

        return empty_fn, frozenset()
    table_fn, deps = builder.compile(expr)

    def fn(env, frame):
        return table_fn(env, frame).to_relation()

    return fn, deps


class _Maintainer(NamedTuple):
    """One warehouse relation's compiled maintenance entry."""

    name: str
    new_name: str  # the "<name>__new" binding later entries may read
    kind: str
    inserts: Optional[RootFn]
    deletes: Optional[RootFn]
    reads: Tuple[str, ...]  # relation/delta names (for traced read spans)


class CompiledRefresh:
    """One update shape's refresh, compiled to fused closures.

    Replicates the exact :func:`repro.core.maintenance.refresh_state`
    contract for an already-normalized (effective) update: per-relation
    ``(w − deletes) ∪ inserts`` patching, ``applied`` deltas only for
    actually-touched relations, identical objects carried over otherwise.
    """

    __slots__ = ("updated", "digest", "plan", "source_scope", "entries", "size")

    def __init__(
        self,
        spec: WarehouseSpec,
        updated: FrozenSet[str],
        digest: str,
        mode: str = "mixed",
        cells: Optional[Dict[tuple, _Cell]] = None,
    ) -> None:
        plan = fused_plan(
            spec,
            updated,
            insert_only=(mode == "insert-only"),
            delete_only=(mode == "delete-only"),
        )
        builder = _Builder(plan.scope, plan.delta_names, cells)
        entries = []
        for program in plan.relations:
            new_name = new_value_name(program.name)
            if program.kind == "pruned":
                entries.append(
                    _Maintainer(program.name, new_name, program.kind, None, None, ())
                )
                continue
            inserts, ins_deps = _root_runner(program.inserts, builder)
            deletes, del_deps = _root_runner(program.deletes, builder)
            reads = tuple(sorted(ins_deps | del_deps))
            entries.append(
                _Maintainer(
                    program.name, new_name, program.kind, inserts, deletes, reads
                )
            )
        self.updated = plan.updated
        self.digest = digest
        self.plan = plan
        self.source_scope = dict(spec.source_scope())
        self.entries = tuple(entries)
        self.size = builder.size

    def run(
        self, state: State, effective: Update
    ) -> Tuple[Dict[str, Relation], Dict[str, Delta]]:
        """Apply an effective update; returns ``(new_state, applied)``."""
        env: Dict[str, Relation] = dict(state)
        env.update(delta_bindings(effective, self.source_scope))
        frame: List[object] = [None] * self.size
        new_state: Dict[str, Relation] = {}
        applied: Dict[str, Delta] = {}
        for entry in self.entries:
            current = state[entry.name]
            if entry.kind == "pruned":
                new_state[entry.name] = current
                env[entry.new_name] = current
                continue
            inserts = entry.inserts(env, frame)
            deletes = entry.deletes(env, frame)
            if inserts or deletes:
                value = current.difference(deletes).union(inserts)
                applied[entry.name] = Delta(
                    entry.name, inserts=inserts, deletes=deletes
                )
            else:
                value = current
            new_state[entry.name] = value
            env[entry.new_name] = value
        return new_state, applied

    def _run_traced(
        self, state: State, effective: Update, tracer
    ) -> Tuple[Dict[str, Relation], Dict[str, Delta]]:
        """:meth:`run`, emitting the interpreters' span vocabulary."""
        env: Dict[str, Relation] = dict(state)
        env.update(delta_bindings(effective, self.source_scope))
        frame: List[object] = [None] * self.size
        new_state: Dict[str, Relation] = {}
        applied: Dict[str, Delta] = {}
        for entry in self.entries:
            current = state[entry.name]
            if entry.kind == "pruned":
                new_state[entry.name] = current
                env[entry.new_name] = current
                continue
            with tracer.span(
                "maintain", relation=entry.name, engine="compiled"
            ) as span:
                for name in entry.reads:
                    with tracer.span("read", relation=name, engine="compiled"):
                        pass
                inserts = entry.inserts(env, frame)
                deletes = entry.deletes(env, frame)
                span.set(
                    rows_inserted=len(inserts),
                    rows_deleted=len(deletes),
                    kind=entry.kind,
                )
            if inserts or deletes:
                value = current.difference(deletes).union(inserts)
                applied[entry.name] = Delta(
                    entry.name, inserts=inserts, deletes=deletes
                )
            else:
                value = current
            new_state[entry.name] = value
            env[entry.new_name] = value
        return new_state, applied


class RefreshCompiler:
    """Per-spec compiler: certificate anchor plus per-shape plan cache.

    Construction certifies the spec (raising
    :class:`~repro.errors.CompileError` unless the prover's certificate
    validates and every read set is empty) and eagerly compiles the
    Equation (4) inverses used for update normalization. Refresh programs
    are compiled lazily, one per update shape, and cached until the
    certificate digest changes.

    The ``compiles`` / ``plan_hits`` / ``refreshes`` counters are plain
    ints (this module keeps clocks and metrics off the hot path); the
    warehouse drains them into its ``compiler.*`` metrics after each
    apply.
    """

    __slots__ = (
        "spec",
        "certificate",
        "compiles",
        "plan_hits",
        "refreshes",
        "_programs",
        "_inverses",
        "_inverse_size",
        "_cells",
    )

    @staticmethod
    def _mode(effective: Update) -> str:
        has_inserts = any(len(delta.inserts) for delta in effective)
        has_deletes = any(len(delta.deletes) for delta in effective)
        if has_inserts and not has_deletes:
            return "insert-only"
        if has_deletes and not has_inserts:
            return "delete-only"
        return "mixed"

    def __init__(
        self,
        spec: WarehouseSpec,
        certificate: Optional[TrustedCertificate] = None,
    ) -> None:
        if certificate is None:
            certificate = certify(spec)
        self.spec = spec
        self.certificate = certificate
        self.compiles = 0
        self.plan_hits = 0
        self.refreshes = 0
        self._programs: Dict[Tuple[FrozenSet[str], str], CompiledRefresh] = {}
        self._cells: Dict[tuple, _Cell] = {}
        builder = _Builder(dict(spec.warehouse_scope()), frozenset(), self._cells)
        inverses: Dict[str, RootFn] = {}
        for name, expression in fused_inverses(spec).items():
            runner, _ = _root_runner(expression, builder)
            inverses[name] = runner
        self._inverses = inverses
        self._inverse_size = builder.size

    @property
    def digest(self) -> str:
        """The trusted certificate's cache digest."""
        return self.certificate.digest

    @property
    def plan_count(self) -> int:
        """Number of (update shape, side mask) pairs with a cached program."""
        return len(self._programs)

    def cached_shapes(self) -> List[FrozenSet[str]]:
        """The update shapes currently compiled (for tests/inspection)."""
        return sorted({updated for updated, _ in self._programs}, key=sorted)

    def program_for(
        self, updated: FrozenSet[str], mode: str = "mixed"
    ) -> CompiledRefresh:
        """The compiled program for one update shape and side mask.

        Plans are specialized per ``mode`` (``"mixed"``,
        ``"insert-only"``, ``"delete-only"``) as well as per shape:
        one-sided updates get the Example 4.1 compact forms with the
        unused delta branch pruned at compile time. Compiles on miss.
        """
        key = (updated, mode)
        program = self._programs.get(key)
        if program is None:
            program = CompiledRefresh(
                self.spec, updated, self.certificate.digest, mode, self._cells
            )
            self._programs[key] = program
            self.compiles += 1
        else:
            self.plan_hits += 1
        return program

    def _reconstruct(
        self, state: State, update: Update
    ) -> Dict[str, Relation]:
        frame: List[object] = [None] * self._inverse_size
        reconstructed: Dict[str, Relation] = {}
        for delta in update:
            runner = self._inverses.get(delta.relation)
            if runner is None:
                raise WarehouseError(
                    f"update touches unknown relation {delta.relation!r}"
                )
            reconstructed[delta.relation] = runner(state, frame)
        return reconstructed

    def refresh(
        self, state: State, update: Update, tracer=None
    ) -> Tuple[Dict[str, Relation], Dict[str, Delta]]:
        """Drop-in for :func:`~repro.core.maintenance.refresh_state`."""
        self.refreshes += 1
        if tracer is not None:
            return self._run_traced(state, update, tracer)
        effective = update.normalized(self._reconstruct(state, update))
        if effective.is_empty():
            return dict(state), {}
        program = self.program_for(
            frozenset(effective.relations()), self._mode(effective)
        )
        return program.run(state, effective)

    def _run_traced(
        self, state: State, update: Update, tracer
    ) -> Tuple[Dict[str, Relation], Dict[str, Delta]]:
        frame: List[object] = [None] * self._inverse_size
        reconstructed: Dict[str, Relation] = {}
        with tracer.span(
            "normalize_update",
            relations=sorted(update.relations()),
            engine="compiled",
        ) as span:
            for delta in update:
                runner = self._inverses.get(delta.relation)
                if runner is None:
                    raise WarehouseError(
                        f"update touches unknown relation {delta.relation!r}"
                    )
                with tracer.span("reconstruct", relation=delta.relation) as inner:
                    result = runner(state, frame)
                    inner.attributes["rows_out"] = len(result)
                reconstructed[delta.relation] = result
            effective = update.normalized(reconstructed)
            span.attributes["effective_rows"] = sum(
                len(d.inserts) + len(d.deletes) for d in effective
            )
        if effective.is_empty():
            return dict(state), {}
        program = self.program_for(
            frozenset(effective.relations()), self._mode(effective)
        )
        return program._run_traced(state, effective, tracer)
