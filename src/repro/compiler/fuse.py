"""Fused per-update-shape maintenance plans (the compiler's middle end).

Starting from the same symbolic derivation the interpreter uses
(:func:`repro.core.maintenance.maintenance_expressions` — delta rules plus
Equation (4) inverse substitution), each maintenance expression is run
through :func:`repro.algebra.optimize.fuse_chains`: select/select and
project/project chains collapse into single nodes, TRUE/FALSE selections
fold, and the empty relation propagates through every operator. The result
classifies each warehouse relation's program:

* ``pruned``  — both delta expressions folded to ``Empty``: this update
  shape provably cannot touch the relation, and the compiled closure
  carries the relation over by identity without evaluating anything;
* ``patch``   — both delta expressions are bare leaves (a delta-relation
  reference or ``Empty``): the refresh is a pure warehouse-local patch —
  ``w' = (w − R__del) ∪ R__ins`` — with no algebra to run at all (the
  complement relations of Example 4.1 take this form);
* ``fused``   — anything else: a chain-fused expression the runtime
  compiles to a closure over the columnar kernels.

Plans are specialized per *side mask* as well as per relation set: a pure
insertion (or pure deletion) folds the unused ``R__del`` / ``R__ins``
delta to the empty relation *before* fusing, so whole branches of the
derivation prune away at compile time — the compact forms of Example 4.1,
derived once per shape instead of being rediscovered per refresh.

On top of fusion, two **value-reuse** rewrites spend the certificate's
Equation (4) identity (``W ∘ W⁻¹ = id``, re-validated by
:func:`repro.compiler.certificate.certify`):

* an *old-value* subterm — a warehouse relation's definition recomputed
  over the reconstructed sources — collapses to a reference to the stored
  relation itself;
* a *new-value* subterm — the definition recomputed over the *updated*
  reconstruction — collapses to a reference to the relation's
  already-patched value (``<name>__new``), which orders the relation
  programs topologically (cycles revert to the inline expression).

These rewrites are what keep compiled maintenance incremental: without
them, complement programs re-join the entire fact table on every refresh
exactly like the interpreter does.

The classification is driven entirely by statically derived expressions;
the prover's dataflow read sets (all empty, or
:func:`repro.compiler.certificate.certify` refuses) guarantee no program
ever mentions a source relation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Tuple

from repro.algebra.deltas import del_name, delta_scope, ins_name
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Project,
    RelationRef,
    Scope,
    Union,
)
from repro.algebra.optimize import fuse_chains
from repro.algebra.rewriting import substitute
from repro.algebra.simplify import simplify
from repro.core.complement import WarehouseSpec
from repro.core.maintenance import maintenance_expressions

#: Suffix naming a warehouse relation's post-patch value inside a plan.
NEW_SUFFIX = "__new"


def new_value_name(relation: str) -> str:
    """The plan-local name binding ``relation``'s already-patched value."""
    return relation + NEW_SUFFIX


class RelationProgram(NamedTuple):
    """One warehouse relation's fused maintenance program."""

    name: str
    kind: str  # "pruned" | "patch" | "fused"
    inserts: Expression
    deletes: Expression

    def describe(self) -> str:
        """One human-readable line (the CLI's ``--explain`` rendering)."""
        if self.kind == "pruned":
            return f"{self.name}: pruned (update cannot touch it)"
        if self.kind == "patch":
            return (
                f"{self.name}: patch  "
                f"+[{self.inserts}] -[{self.deletes}]"
            )
        return f"{self.name}: fused  +[{self.inserts}] -[{self.deletes}]"


class FusedPlan(NamedTuple):
    """The fused maintenance plan for one set of updated base relations.

    ``scope`` is the extended schema (sources + warehouse + delta +
    ``__new`` names) the programs are typed under; ``delta_names`` the
    ``R__ins``/``R__del`` bindings this shape introduces. ``relations``
    is in **evaluation order**: a program may reference an earlier
    relation's post-patch value as ``<name>__new``, never a later one.
    ``mode`` is the side mask the plan was specialized for (``"mixed"``,
    ``"insert-only"`` or ``"delete-only"``).
    """

    updated: FrozenSet[str]
    scope: Scope
    delta_names: FrozenSet[str]
    relations: Tuple[RelationProgram, ...]
    mode: str = "mixed"

    def program_for(self, name: str) -> RelationProgram:
        """The program of one warehouse relation (raises ``KeyError``)."""
        for program in self.relations:
            if program.name == name:
                return program
        raise KeyError(name)

    def describe(self) -> str:
        """Human-readable plan, one line per warehouse relation."""
        lines = [f"updated: {sorted(self.updated)}  mode: {self.mode}"]
        lines.extend("  " + program.describe() for program in self.relations)
        return "\n".join(lines)


def _is_leaf(expression: Expression) -> bool:
    return isinstance(expression, (Empty, RelationRef))


def _kind(inserts: Expression, deletes: Expression) -> str:
    if isinstance(inserts, Empty) and isinstance(deletes, Empty):
        return "pruned"
    if _is_leaf(inserts) and _is_leaf(deletes):
        return "patch"
    return "fused"


def _reconstruction(
    spec: WarehouseSpec,
    updated: FrozenSet[str],
    insert_only: bool,
    delete_only: bool,
) -> Dict[str, Expression]:
    """Post-update source reconstructions, matching the derived shapes.

    For an untouched source this is the plain Equation (4) inverse; for a
    touched one the inverse patched with exactly the delta sides this
    mode keeps — built the same way :func:`maintenance_expressions`
    builds them, so the keys line up structurally with the derivation's
    subterms.
    """
    recon: Dict[str, Expression] = {}
    for relation, inverse in spec.inverses.items():
        expression = inverse
        if relation in updated:
            if not insert_only:
                expression = Difference(
                    expression, RelationRef(del_name(relation))
                )
            if not delete_only:
                expression = Union(expression, RelationRef(ins_name(relation)))
        recon[relation] = expression
    return recon


class _ValueMaps(NamedTuple):
    """Structural keys of every warehouse relation's old and new value.

    ``old_*`` maps key the definition recomputed over the *current*
    reconstruction (Equation 4: extensionally the stored relation
    itself); ``new_*`` maps key it over the *patched* reconstruction
    (extensionally the relation's post-refresh value). The ``*_core``
    variants strip an outermost projection so ``pi_A(X)`` can reuse a
    value whose projection attrs are a superset of ``A``.
    """

    old_full: Dict[tuple, str]
    old_core: Dict[tuple, Tuple[str, FrozenSet[str]]]
    new_full: Dict[tuple, str]
    new_core: Dict[tuple, Tuple[str, FrozenSet[str]]]


def _value_maps(
    spec: WarehouseSpec,
    updated: FrozenSet[str],
    scope: Scope,
    insert_only: bool,
    delete_only: bool,
) -> _ValueMaps:
    recon = _reconstruction(spec, updated, insert_only, delete_only)
    maps = _ValueMaps({}, {}, {}, {})
    for name, definition in spec.definitions_over_sources().items():
        old = fuse_chains(
            simplify(substitute(definition, spec.inverses), scope), scope
        )
        old_key = old._key()
        if not _is_leaf(old):
            maps.old_full.setdefault(old_key, name)
            if isinstance(old, Project):
                maps.old_core.setdefault(
                    old.child._key(), (name, frozenset(old.attrs))
                )
        new = fuse_chains(simplify(substitute(definition, recon), scope), scope)
        if new._key() != old_key and not _is_leaf(new):
            maps.new_full.setdefault(new._key(), name)
            if isinstance(new, Project):
                maps.new_core.setdefault(
                    new.child._key(), (name, frozenset(new.attrs))
                )
    return maps


def _reuse_values(
    expression: Expression, maps: _ValueMaps, exclude: str
) -> Expression:
    """Top-down rewrite replacing recomputed values with references.

    A subterm keying as some relation's new value becomes
    ``RelationRef(<name>__new)``; one keying as an old value becomes a
    plain ``RelationRef(<name>)``. The rewrite only ever *adds* sharing:
    a failed key match leaves the subterm alone, so plans stay correct
    (just slower) whenever the derivation produced an unexpected shape.
    ``exclude`` bars a relation's own new value inside its own program —
    that value does not exist until the program has run.
    """
    key = expression._key()
    name = maps.new_full.get(key)
    if name is not None and name != exclude:
        return RelationRef(new_value_name(name))
    name = maps.old_full.get(key)
    if name is not None:
        return RelationRef(name)
    if isinstance(expression, Project):
        child_key = expression.child._key()
        attrs = set(expression.attrs)
        entry = maps.new_core.get(child_key)
        if entry is not None and entry[0] != exclude and attrs <= entry[1]:
            return Project(RelationRef(new_value_name(entry[0])), expression.attrs)
        entry = maps.old_core.get(child_key)
        if entry is not None and attrs <= entry[1]:
            return Project(RelationRef(entry[0]), expression.attrs)
    children = tuple(
        _reuse_values(child, maps, exclude) for child in expression.children()
    )
    if children != expression.children():
        expression = expression.with_children(children)
    return expression


def _new_value_deps(expressions: Iterable[Expression]) -> FrozenSet[str]:
    """Warehouse relations whose ``__new`` value the expressions read."""
    deps = set()
    stack = list(expressions)
    while stack:
        node = stack.pop()
        if isinstance(node, RelationRef) and node.name.endswith(NEW_SUFFIX):
            deps.add(node.name[: -len(NEW_SUFFIX)])
        stack.extend(node.children())
    return frozenset(deps)


def fused_plan(
    spec: WarehouseSpec,
    updated: Iterable[str],
    insert_only: bool = False,
    delete_only: bool = False,
    reuse_values: bool = True,
) -> FusedPlan:
    """Derive and chain-fuse the maintenance plan for an update shape.

    ``insert_only`` / ``delete_only`` specialize the plan to a delta side
    mask (the unused side folds to ``Empty`` before fusion — Example
    4.1's compact forms); ``reuse_values`` enables the Equation (4)
    old/new value-reuse rewrites documented in the module docstring.
    """
    if insert_only and delete_only:
        raise ValueError("insert_only and delete_only are mutually exclusive")
    plan = maintenance_expressions(
        spec, updated, insert_only=insert_only, delete_only=delete_only
    )
    base_scope: Scope = delta_scope(
        {**spec.source_scope(), **spec.warehouse_scope()}, plan.updated
    )
    warehouse_scope = spec.warehouse_scope()
    scope: Scope = {
        **base_scope,
        **{
            new_value_name(name): tuple(warehouse_scope[name])
            for name in plan.expressions
        },
    }
    delta_names = frozenset(
        name
        for relation in plan.updated
        for name in (ins_name(relation), del_name(relation))
    )
    raw: Dict[str, Tuple[Expression, Expression]] = {}
    rewritten: Dict[str, Tuple[Expression, Expression]] = {}
    maps = (
        _value_maps(spec, plan.updated, base_scope, insert_only, delete_only)
        if reuse_values
        else None
    )
    for name, exprs in plan.expressions.items():
        inserts = fuse_chains(exprs.inserts, base_scope)
        deletes = fuse_chains(exprs.deletes, base_scope)
        raw[name] = (inserts, deletes)
        if maps is not None:
            inserts = _reuse_values(inserts, maps, name)
            deletes = _reuse_values(deletes, maps, name)
        rewritten[name] = (inserts, deletes)

    # Kahn ordering on __new references; a cycle reverts every relation
    # still in it to its inline (unrewritten) expressions, after which
    # those relations depend on nothing and any order is valid.
    deps = {name: _new_value_deps(rewritten[name]) for name in rewritten}
    order: List[str] = []
    placed: set = set()
    remaining = list(plan.expressions)
    while remaining:
        ready = [name for name in remaining if deps[name] <= placed]
        if not ready:
            for name in remaining:
                rewritten[name] = raw[name]
                deps[name] = frozenset()
            continue
        for name in ready:
            order.append(name)
            placed.add(name)
        remaining = [name for name in remaining if name not in placed]

    programs = []
    for name in order:
        inserts, deletes = rewritten[name]
        programs.append(
            RelationProgram(name, _kind(inserts, deletes), inserts, deletes)
        )
    mode = (
        "insert-only" if insert_only else "delete-only" if delete_only else "mixed"
    )
    return FusedPlan(plan.updated, scope, delta_names, tuple(programs), mode)


def fused_inverses(spec: WarehouseSpec) -> Dict[str, Expression]:
    """Chain-fused Equation (4) inverses (for compiled reconstruction)."""
    scope = spec.warehouse_scope()
    return {
        name: fuse_chains(expression, scope)
        for name, expression in spec.inverses.items()
    }
