"""The compiler's trust anchor: a validated, hashed prover certificate.

The plan compiler never re-derives the paper's theorems. It *consumes*
them: :func:`repro.analysis.prover.build_certificate` states, per spec,
the Equation (4) inversion expression for every base relation and the
Theorem 4.1 dataflow read sets, and :func:`check_certificate` re-validates
that document independently (parse-back plus numeric replay). Only a spec
whose certificate survives that check — and whose read sets are all empty,
i.e. the prover's ``update_independent`` verdict — is eligible for
compilation; anything else raises :class:`~repro.errors.CompileError` and
the warehouse stays on the interpreted path.

The certificate's canonical-JSON SHA-256 digest keys the compiled plan
cache: a prover re-verdict that changes *any* fact the closures were
specialized against changes the digest, and the cache is evicted
(:meth:`repro.core.warehouse.Warehouse.recertify`).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import CompileError, ReproError
from repro.analysis.dataflow import DataflowReport, spec_read_sets
from repro.analysis.digest import canonical_digest
from repro.analysis.prover import build_certificate, check_certificate
from repro.core.complement import WarehouseSpec

#: The certificate mode the compiler trusts (the prover's complement-based
#: proof; the self-maintainability mode has no inverses to compile).
TRUSTED_MODE = "with-complement"


def certificate_digest(document: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a certificate document.

    Delegates to :func:`repro.analysis.digest.canonical_digest` — the same
    function the sharding prover uses — so the plan-cache key and every
    analysis certificate stay digest-compatible. The digest is insensitive
    to dict ordering and whitespace but changes whenever any recorded
    fact — an inverse expression, a key/cover fact, a read set — changes.
    """
    return canonical_digest(document)


class TrustedCertificate:
    """A certificate that passed re-validation, with its cache digest."""

    __slots__ = ("document", "digest", "dataflow")

    def __init__(
        self,
        document: Mapping[str, object],
        digest: str,
        dataflow: DataflowReport,
    ) -> None:
        self.document = document
        self.digest = digest
        self.dataflow = dataflow

    def __repr__(self) -> str:
        return f"TrustedCertificate(digest={self.digest[:12]}...)"


def certify(
    spec: WarehouseSpec, dataflow: Optional[DataflowReport] = None
) -> TrustedCertificate:
    """Build, re-validate, and hash the certificate for ``spec``.

    Raises
    ------
    CompileError
        If the certificate fails its independent re-validation, if any
        update shape's static read set is non-empty (the spec is not
        update-independent, so there is no source-free refresh to
        compile), or if the analysis stack cannot handle the spec at all
        (e.g. Section 5 star specs, whose union views leave the prover's
        PSJ fragment).
    """
    try:
        if dataflow is None:
            dataflow = spec_read_sets(spec)
        if not dataflow.update_independent:
            dependent = [
                shape.label() for shape, reads in dataflow.read_sets if reads
            ]
            raise CompileError(
                "refusing to compile: spec is not update-independent "
                f"(shapes reading sources: {dependent})"
            )
        document = build_certificate(spec, dataflow, TRUSTED_MODE)
        problems = check_certificate(spec.catalog, document)
    except CompileError:
        raise
    except ReproError as error:
        raise CompileError(
            f"refusing to compile: certificate construction failed ({error})"
        ) from error
    if problems:
        listing = "; ".join(problems)
        raise CompileError(
            f"refusing to compile: certificate failed re-validation ({listing})"
        )
    return TrustedCertificate(document, certificate_digest(document), dataflow)
