"""``repro.compiler`` — certificate-driven refresh plan compilation.

The static-analysis stack (PR 4's prover, the dataflow read sets) proves
*facts* about a warehouse spec; this package spends those facts on
runtime speed. A PROVED, re-validated certificate is the trusted
specification (:mod:`repro.compiler.certificate`); maintenance plans are
chain-fused and classified per update shape
(:mod:`repro.compiler.fuse`); and the runtime
(:mod:`repro.compiler.runtime`) emits one specialized closure tree per
shape over the columnar kernels — no AST walking, no memo-key hashing,
no per-refresh fast-path decisions.

Enablement mirrors the storage engine flag: ``REPRO_COMPILE=1`` flips
the process default (read once at import, like
:mod:`repro.storage.engine`), and ``Warehouse(compile_plans=True)`` /
``compile_plans=False`` overrides it per warehouse. A spec the prover
cannot certify raises :class:`~repro.errors.CompileError` at compile
time; :class:`~repro.core.warehouse.Warehouse` catches that and falls
back to the interpreted path (counted by ``compiler.fallbacks``).
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Optional

from repro.core.complement import WarehouseSpec
from repro.compiler.certificate import (
    TrustedCertificate,
    certificate_digest,
    certify,
)
from repro.compiler.fuse import (
    FusedPlan,
    RelationProgram,
    fused_inverses,
    fused_plan,
)
from repro.compiler.runtime import CompiledRefresh, RefreshCompiler

#: Environment variable selecting the process-wide compile default.
COMPILE_ENV = "REPRO_COMPILE"


def _compile_from_environment() -> bool:
    """Parse ``REPRO_COMPILE`` (unset/empty/``0`` = off, anything else on)."""
    return os.environ.get(COMPILE_ENV, "") not in ("", "0")


#: The process-wide default, read once at import (tests monkeypatch this
#: module attribute rather than the environment).
DEFAULT_COMPILE = _compile_from_environment()


def resolve_compile(flag: Optional[bool] = None) -> bool:
    """An explicit ``compile_plans`` argument, or the process default."""
    if flag is None:
        return DEFAULT_COMPILE
    return bool(flag)


def build_refresh_compiler(
    spec: WarehouseSpec, metrics=None
) -> RefreshCompiler:
    """Certify ``spec`` and build its :class:`RefreshCompiler`.

    With a :class:`~repro.obs.metrics.MetricsRegistry`, records the
    certification+build wall time (``compiler.build_seconds``) and bumps
    ``compiler.certificates``. Raises
    :class:`~repro.errors.CompileError` exactly when
    :func:`~repro.compiler.certificate.certify` does.
    """
    started = perf_counter()
    compiler = RefreshCompiler(spec)
    if metrics is not None:
        metrics.counter("compiler.certificates").inc()
        metrics.histogram("compiler.build_seconds").observe(
            perf_counter() - started
        )
    return compiler


__all__ = [
    "COMPILE_ENV",
    "DEFAULT_COMPILE",
    "CompiledRefresh",
    "FusedPlan",
    "RefreshCompiler",
    "RelationProgram",
    "TrustedCertificate",
    "build_refresh_compiler",
    "certificate_digest",
    "certify",
    "fused_inverses",
    "fused_plan",
    "resolve_compile",
]
