"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Replay the paper's Figure 1 scenario end to end (specification,
    query translation, incremental maintenance).
``spec FILE``
    Read a schema-and-views description (JSON, see below) and print the
    computed warehouse specification — complements, inverses, minimality
    certificate, and self-maintenance analysis.
``lint FILE [FILE ...]``
    Statically analyze spec files: expression typechecking (E01xx) plus
    the paper-semantics lint pass (W00xx — PSJ form, condition
    satisfiability, Theorem 2.2 preconditions, complement quality, view
    hygiene). ``--format json`` emits the CI artifact format; ``--strict``
    fails on INFO-level findings too. Exit status: 0 clean, 1 findings,
    2 unreadable input. The diagnostic catalog is docs/lint.md.
``prove FILE [FILE ...]``
    Statically decide independence per spec file: PROVED emits a
    machine-checkable certificate (Equation (4) inversions + the facts
    they rest on), REFUTED a shrunk two-database witness of
    non-injectivity (Proposition 2.1), UNKNOWN neither. ``--certificates
    DIR`` writes one JSON document per file (the CI artifact);
    ``--strict`` makes UNKNOWN a failure. Exit status: 0 every verdict
    matches its spec's expectation, 1 otherwise, 2 unreadable input.
``prove-sharding FILE [FILE ...]``
    Statically decide each spec file's sharded configuration (its
    ``"sharding"`` section): PROVED emits a self-validating certificate
    (assembly modes, co-partitioned groups, per-update-shape footprints,
    batch commutativity — digest-compatible with the compiled-plan
    cache), REFUTED a minimal counterexample (an interleaving that
    diverges, or a source state whose global image no shard assembly
    rebuilds), UNKNOWN neither. The W01xx concurrency lint over the
    runtime sources rides along. ``--certificates DIR`` writes one JSON
    document per file; ``--strict`` makes UNKNOWN a failure. Exit
    status: 0 every verdict matches its spec's expectation and the lint
    is clean, 1 otherwise, 2 unreadable input.
``prove-query FILE [FILE ...]``
    Statically decide each spec file's declared queries (its
    ``"queries"`` section, or synthesized identity queries): PROVED
    emits a self-validating translation certificate (the rewritten
    ``Q ∘ W^{-1}``, the Equation (4) inversions or view folds it leans
    on, a static read set with zero source relations, and a
    kernel-level cost estimate — digest-compatible with the serving
    path's translated-plan cache), REFUTED a minimal replay-verified
    two-database witness where warehouse state underdetermines the
    answer, UNKNOWN neither. ``--certificates DIR`` writes one JSON
    document per file; ``--strict`` makes UNKNOWN a failure unless the
    spec pinned ``"expect": "unknown"``. Exit status: 0 every verdict
    matches its expectation, 1 otherwise, 2 unreadable input.
``compile FILE [FILE ...]``
    Run the plan compiler (``repro.compiler``, docs/compiler.md) on spec
    files: certify each spec against the prover's PROVED certificate and
    compile one refresh program per single-relation update shape.
    ``--explain`` dumps the fused per-shape plans (pruned / patch /
    fused classification per warehouse relation). Exit status: 0 every
    spec compiled, 1 a spec was refused, 2 unreadable input.
``tpcd [--scale S]``
    Generate a TPC-D-like instance, specify its warehouse, and print the
    storage breakdown.
``obs explain``
    Replay the Figure 1 refresh with tracing enabled and print the
    annotated operator trees (``Warehouse.explain()``) plus the metric
    registry — the quickest way to *see* the observability layer.
``obs report FILE``
    Summarize a JSONL trace file (written by a
    :class:`~repro.obs.trace.JsonlSink`) into a per-operator table.

``spec`` input format::

    {
      "relations": [
        {"name": "Sale", "attributes": ["item", "clerk"]},
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]}
      ],
      "inclusions": [
        {"lhs": "Sale", "lhs_attributes": ["clerk"],
         "rhs": "Emp", "rhs_attributes": ["clerk"]}
      ],
      "views": [{"name": "Sold", "definition": "Sale join Emp"}]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import Catalog, Database, View, Warehouse, parse, specify
from repro.core.minimality import is_minimal_certificate
from repro.core.selfmaint import self_maintenance_analysis
from repro.storage.persist import catalog_from_dict


def _cmd_demo(_args) -> int:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    sources = Database(catalog)
    sources.load("Sale", [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John")])
    sources.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])

    warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    print(warehouse.describe())
    warehouse.initialize(sources)
    print("\nstorage:", warehouse.storage_by_relation())

    query = "pi[clerk](Sale) union pi[clerk](Emp)"
    print(f"\nQ  = {query}")
    print(f"Q^ = {warehouse.translate(query)}")
    print("answer:", sorted(warehouse.answer(query).rows))

    update = sources.insert("Sale", [("Computer", "Paula")])
    warehouse.apply(update)
    print("\nafter inserting (Computer, Paula) into Sale:")
    print("Sold:", sorted(warehouse.relation("Sold").rows))
    return 0


def _cmd_spec(args) -> int:
    with open(args.file) as handle:
        data = json.load(handle)
    catalog = catalog_from_dict(
        {
            "relations": data["relations"],
            "inclusions": data.get("inclusions", []),
            "checks": data.get("checks", {}),
        }
    )
    views = [View(v["name"], parse(v["definition"])) for v in data["views"]]
    spec = specify(catalog, views, method=args.method)
    print(spec.describe())
    certificate = is_minimal_certificate(spec)
    print(
        f"\nminimality: {'certified (' + str(certificate.theorem) + ')' if certificate.certified else 'no certificate'}"
    )
    print(f"  {certificate.reason}")
    report = self_maintenance_analysis(catalog, views)
    print("\nself-maintenance analysis:")
    print("  " + report.describe().replace("\n", "\n  "))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.report import (
        exit_code,
        lint_file,
        render_json,
        render_text,
    )

    extra_ignore = []
    for chunk in args.ignore or ():
        extra_ignore.extend(code.strip() for code in chunk.split(",") if code.strip())
    reports = [
        lint_file(path, method=args.method, extra_ignore=extra_ignore)
        for path in args.files
    ]
    if args.format == "json":
        output = render_json(reports, strict=args.strict)
    else:
        output = render_text(reports, strict=args.strict)
    print(output)
    return exit_code(reports, strict=args.strict)


def _cmd_prove(args) -> int:
    from pathlib import Path

    from repro.analysis.prover import (
        certificate_json,
        prove_exit_code,
        prove_file,
        render_json,
        render_text,
    )

    results = [
        prove_file(path, method=args.method, max_model_size=args.max_model_size)
        for path in args.files
    ]
    if args.certificates:
        directory = Path(args.certificates)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            name = Path(result.path).stem + ".cert.json"
            (directory / name).write_text(certificate_json(result))
    if args.format == "json":
        output = render_json(results, strict=args.strict)
    else:
        output = render_text(results, strict=args.strict)
    print(output)
    return prove_exit_code(results, strict=args.strict)


def _cmd_prove_sharding(args) -> int:
    from pathlib import Path

    from repro.analysis.concurrency import (
        prove_sharding_file,
        render_sharding_json,
        render_sharding_text,
        sharding_certificate_json,
        sharding_exit_code,
    )
    from repro.analysis.concurrency_lint import lint_concurrency
    from repro.analysis.diagnostics import has_errors, sort_diagnostics

    results = [
        prove_sharding_file(path, method=args.method) for path in args.files
    ]
    findings = (
        [] if args.no_lint else sort_diagnostics(lint_concurrency())
    )
    if args.certificates:
        directory = Path(args.certificates)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            name = Path(result.path).stem + ".sharding.json"
            (directory / name).write_text(sharding_certificate_json(result))
    if args.format == "json":
        document = json.loads(render_sharding_json(results, strict=args.strict))
        document["lint"] = [d.to_dict() for d in findings]
        document["ok"] = document["ok"] and not has_errors(findings)
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        print(render_sharding_text(results, strict=args.strict))
        if findings:
            print()
            print("concurrency lint (W01xx):")
            for diagnostic in findings:
                print("  " + diagnostic.render())
        elif not args.no_lint:
            print("concurrency lint (W01xx): clean")
    code = sharding_exit_code(results, strict=args.strict)
    if code == 0 and has_errors(findings):
        code = 1
    return code


def _cmd_prove_query(args) -> int:
    from pathlib import Path

    from repro.analysis.query import (
        prove_queries_file,
        query_certificate_json,
        query_exit_code,
        render_queries_json,
        render_queries_text,
    )

    results = [
        prove_queries_file(path, method=args.method) for path in args.files
    ]
    if args.certificates:
        directory = Path(args.certificates)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            name = Path(result.path).stem + ".query.json"
            (directory / name).write_text(query_certificate_json(result))
    if args.format == "json":
        print(render_queries_json(results, strict=args.strict))
    else:
        print(render_queries_text(results, strict=args.strict))
    return query_exit_code(results, strict=args.strict)


def _cmd_compile(args) -> int:
    from repro.analysis.specfile import load_target
    from repro.compiler import build_refresh_compiler
    from repro.errors import CompileError, ReproError

    failures = 0
    for path in args.files:
        try:
            target = load_target(path)
        except (OSError, json.JSONDecodeError, ReproError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        try:
            spec = specify(target.catalog, target.views, method=args.method)
            compiler = build_refresh_compiler(spec)
        except CompileError as exc:
            print(f"{path}: REFUSED — {exc}")
            failures += 1
            continue
        except ReproError as exc:
            # The spec itself cannot be derived (e.g. star-schema views
            # that need method="star"); report it like a refusal rather
            # than crashing the sweep.
            print(f"{path}: REFUSED — cannot derive spec: {exc}")
            failures += 1
            continue
        shapes = sorted(spec.catalog.relation_names())
        for relation in shapes:
            compiler.program_for(frozenset({relation}))
        print(
            f"{path}: COMPILED — certificate {compiler.digest[:12]}..., "
            f"{compiler.plan_count} update shape(s)"
        )
        if args.explain:
            for relation in shapes:
                program = compiler.program_for(frozenset({relation}))
                print(f"  shape {relation}:")
                print(
                    "    "
                    + program.plan.describe().replace("\n", "\n    ")
                )
    return 1 if failures else 0


def _cmd_obs(args) -> int:
    if args.obs_command == "report":
        from repro.obs.report import report_file

        try:
            print(report_file(args.file, sort=args.sort, limit=args.limit))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    # obs explain: the Figure 1 refresh, traced end to end.
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    sources = Database(catalog)
    sources.load("Sale", [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John")])
    sources.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])

    # The demo shows the *evaluator's* annotated operator trees (fast-path
    # stars, per-operator rows); pin the interpreted path so the output is
    # the same under REPRO_COMPILE=1.
    warehouse = Warehouse.specify(
        catalog, [View("Sold", parse("Sale join Emp"))], compile_plans=False
    )
    sink = None
    if args.trace_out:
        from repro.obs import JsonlSink

        sink = JsonlSink(args.trace_out)
    warehouse.enable_tracing(sink=sink)
    warehouse.initialize(sources)
    print(warehouse.explain(name="initialize"))

    update = sources.insert("Sale", [("Computer", "Paula")])
    warehouse.apply(update)
    print()
    print(warehouse.explain(name="refresh"))
    print("\nmetrics:")
    print(warehouse.metrics.describe())
    if sink is not None:
        sink.close()
        print(f"\ntrace written to {args.trace_out}")
    return 0


def _cmd_tpcd(args) -> int:
    from repro.workloads import tpcd_instance

    instance = tpcd_instance(scale=args.scale)
    warehouse = Warehouse.specify(instance.catalog, instance.views)
    warehouse.initialize(instance.database)
    print(f"TPC-D-like instance at scale {args.scale}")
    print("source rows:   ", instance.sizes())
    print("warehouse rows:", warehouse.storage_by_relation())
    empty = [
        c.name for c in warehouse.spec.complements.values() if c.provably_empty
    ]
    print("complements proven empty:", empty)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Complements for Data Warehouses (ICDE 1999) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="replay the Figure 1 scenario")

    spec_parser = commands.add_parser(
        "spec", help="compute a warehouse specification from a JSON description"
    )
    spec_parser.add_argument("file", help="schema-and-views JSON file")
    spec_parser.add_argument(
        "--method",
        choices=("thm22", "prop22", "trivial"),
        default="thm22",
        help="complement computation method (default: thm22)",
    )

    lint_parser = commands.add_parser(
        "lint", help="statically analyze warehouse spec files (docs/lint.md)"
    )
    lint_parser.add_argument("files", nargs="+", help="spec JSON file(s)")
    lint_parser.add_argument(
        "--method",
        choices=("thm22", "prop22", "trivial"),
        default="thm22",
        help="complement method for the spec-level checks (default: thm22)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on INFO-level findings too",
    )
    lint_parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="comma-separated diagnostic codes to suppress (repeatable)",
    )

    prove_parser = commands.add_parser(
        "prove",
        help="statically prove or refute spec independence (docs/prover.md)",
    )
    prove_parser.add_argument("files", nargs="+", help="spec JSON file(s)")
    prove_parser.add_argument(
        "--method",
        choices=("thm22", "prop22", "trivial"),
        default="thm22",
        help="complement construction method (default: thm22)",
    )
    prove_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    prove_parser.add_argument(
        "--strict",
        action="store_true",
        help="treat UNKNOWN verdicts as failures",
    )
    prove_parser.add_argument(
        "--max-model-size",
        type=int,
        default=None,
        metavar="N",
        help="max rows per relation in the counterexample search "
        "(default: the spec file's prover.max_model_size, or 2)",
    )
    prove_parser.add_argument(
        "--certificates",
        default=None,
        metavar="DIR",
        help="write one certificate JSON per input file into DIR",
    )

    sharding_parser = commands.add_parser(
        "prove-sharding",
        help="statically prove or refute sharded-layout soundness "
        "(docs/integrator.md)",
    )
    sharding_parser.add_argument("files", nargs="+", help="spec JSON file(s)")
    sharding_parser.add_argument(
        "--method",
        choices=("thm22", "prop22", "trivial"),
        default="thm22",
        help="complement construction method (default: thm22)",
    )
    sharding_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    sharding_parser.add_argument(
        "--strict",
        action="store_true",
        help="treat UNKNOWN verdicts as failures",
    )
    sharding_parser.add_argument(
        "--certificates",
        default=None,
        metavar="DIR",
        help="write one sharding certificate JSON per input file into DIR",
    )
    sharding_parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the W01xx concurrency lint over the runtime sources",
    )

    query_parser = commands.add_parser(
        "prove-query",
        help="statically prove or refute warehouse-answerability of "
        "declared queries (docs/translation.md)",
    )
    query_parser.add_argument("files", nargs="+", help="spec JSON file(s)")
    query_parser.add_argument(
        "--method",
        choices=("thm22", "prop22", "trivial"),
        default="thm22",
        help="complement construction method (default: thm22)",
    )
    query_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    query_parser.add_argument(
        "--strict",
        action="store_true",
        help="treat UNKNOWN verdicts as failures (unless expected)",
    )
    query_parser.add_argument(
        "--certificates",
        default=None,
        metavar="DIR",
        help="write one query certificate JSON per input file into DIR",
    )

    compile_parser = commands.add_parser(
        "compile",
        help="compile certified refresh plans from spec files (docs/compiler.md)",
    )
    compile_parser.add_argument("files", nargs="+", help="spec JSON file(s)")
    compile_parser.add_argument(
        "--method",
        choices=("thm22", "prop22", "trivial"),
        default="thm22",
        help="complement construction method (default: thm22)",
    )
    compile_parser.add_argument(
        "--explain",
        action="store_true",
        help="dump the fused per-update-shape plans",
    )

    tpcd_parser = commands.add_parser("tpcd", help="TPC-D-like warehouse summary")
    tpcd_parser.add_argument("--scale", type=float, default=1.0)

    obs_parser = commands.add_parser(
        "obs", help="observability: explain traces, summarize JSONL trace files"
    )
    obs_commands = obs_parser.add_subparsers(dest="obs_command", required=True)
    explain_parser = obs_commands.add_parser(
        "explain", help="trace the Figure 1 refresh and print explain() output"
    )
    explain_parser.add_argument(
        "--trace-out", default=None, help="also write the spans to this JSONL file"
    )
    report_parser = obs_commands.add_parser(
        "report", help="summarize a JSONL trace file into a per-operator table"
    )
    report_parser.add_argument("file", help="JSONL trace file (JsonlSink output)")
    report_parser.add_argument(
        "--sort", choices=("total", "count", "name"), default="total"
    )
    report_parser.add_argument("--limit", type=int, default=None)

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "spec": _cmd_spec,
        "lint": _cmd_lint,
        "prove": _cmd_prove,
        "prove-sharding": _cmd_prove_sharding,
        "prove-query": _cmd_prove_query,
        "compile": _cmd_compile,
        "tpcd": _cmd_tpcd,
        "obs": _cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
