"""The static query-translation prover behind ``python -m repro prove-query``.

Theorem 3.1 says every source query ``Q`` is answerable warehouse-only by
``Q^ = Q ∘ W^{-1}`` — *when* the warehouse mapping is invertible. This
module turns that claim into a per-query decision with evidence either
way:

* **PROVED** — a machine-checkable **translation certificate**: the
  rewritten ``Q ∘ W^{-1}`` expression (paper-shaped and optimized), the
  Equation (4) inversion facts it leans on (or the view folds, when the
  query is a view instance), a static read set proving zero
  source-relation reads, and a deterministic kernel-level cost estimate
  over the columnar kernel shapes. Certificates self-validate:
  :func:`check_query_certificate` re-parses every expression, re-checks
  the structural no-source-read invariant, and replays ``Q`` against the
  translation on seeded random constraint-satisfying databases.
* **REFUTED** — a minimal two-database witness: two constraint-satisfying
  source states with *identical* warehouse images but *different* query
  answers — the warehouse state underdetermines the answer, so no
  translation can exist. Witnesses are shrunk to minimal row counts and
  independently replay-verified (:func:`verify_query_witness`), like the
  sharding prover's interleaving witnesses.
* **UNKNOWN** — neither: no sufficient condition applied and the bounded
  search found no witness. The prover is sound, not complete — a query
  that is *semantically* determined by the views but not syntactically
  foldable comes back UNKNOWN, never falsely PROVED.

Three proof methods, tried in order per query:

1. ``inversion`` — the spec is invertible (``with-complement`` mode, or
   ``views-only`` with every complement provably empty): Theorem 3.1
   applies verbatim via :func:`repro.core.translation.translate_query`.
2. ``view-fold`` — the warehouse is lossy, but the query is built from
   the view definitions themselves: folding each definition occurrence to
   its view name (:func:`repro.algebra.rewriting.fold_occurrences`)
   leaves a warehouse-only expression.
3. bounded refutation search — enumerate small constraint-satisfying
   states, group by warehouse image, and report the first image collision
   with diverging query answers.

Certificates carry a ``canonical_digest`` (:mod:`repro.analysis.digest`)
— the same digest :func:`repro.core.translation.translation_digest` keys
the serving path's :class:`~repro.core.translation.TranslationCache` by,
so a prover re-verdict invalidates cached translated plans.

The ``REPRO_CHECK_QUERIES=1`` runtime sanitizer
(:func:`check_translation_reads`, wired through
:meth:`repro.core.warehouse.Warehouse.answer`) cross-checks the traced
spans of every translated-query evaluation against the static read set:
Theorem 3.1's "no source reads" becomes assertable per query, not just
per refresh.
"""

from __future__ import annotations

import json
import os
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.trace import Span

from repro.errors import ReproError, WarehouseError
from repro.algebra.evaluator import evaluate, evaluate_all
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.optimize import optimize
from repro.algebra.parser import parse
from repro.algebra.rewriting import fold_occurrences
from repro.algebra.simplify import simplify
from repro.schema.catalog import Catalog
from repro.storage.relation import Relation
from repro.views.psj import View
from repro.core.complement import WarehouseSpec, specify
from repro.core.independence import enumerate_states
from repro.core.translation import translate_query
from repro.analysis.counterexample import (
    State,
    _row_key,
    _state_valid,
    attribute_domains,
)
from repro.analysis.digest import canonical_digest
from repro.analysis.report import display_path
from repro.analysis.specfile import LintTarget, QuerySpec, load_target

QUERY_CERTIFICATE_VERSION = 1

PROVED = "PROVED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"

#: Arm the runtime query sanitizer: every ``Warehouse.answer`` traces the
#: translated evaluation and cross-checks its reads (see module docstring).
QUERIES_ENV = "REPRO_CHECK_QUERIES"

_REPLAY_SEEDS = (0, 1, 2)
_REPLAY_ROWS = 12
_REPLAY_DOMAIN = 8

#: Row estimate for relations the spec file gives no ``queries.rows`` entry.
DEFAULT_ROW_ESTIMATE = 1000


def queries_enabled() -> bool:
    """Whether ``REPRO_CHECK_QUERIES`` asks for the runtime query sanitizer.

    Read once per warehouse at construction (mirroring
    :func:`repro.analysis.dataflow.sanitizer_enabled`) — never on the
    query-serving hot path (``scripts/check_hotpath.py`` rule R5).
    """
    return os.environ.get(QUERIES_ENV, "") not in ("", "0")


# ----------------------------------------------------------------------
# Kernel-level cost model
# ----------------------------------------------------------------------


class OperatorCost(NamedTuple):
    """One operator's contribution to a translated query's cost estimate."""

    operator: str
    kernel: str
    rows_out: int
    cost: int

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form (embedded in translation certificates)."""
        return {
            "operator": self.operator,
            "kernel": self.kernel,
            "rows_out": self.rows_out,
            "cost": self.cost,
        }


class CostEstimate(NamedTuple):
    """A deterministic kernel-level cost estimate for one expression.

    ``total`` sums per-operator costs in abstract row-touch units derived
    from the columnar kernel shapes (one vectorized pass per operator;
    hash joins pay build + probe + emit). It is a *planning* signal — the
    W0204 budget lint and certificate consumers compare totals, they do
    not promise wall-clock.
    """

    total: int
    rows_out: int
    budget: Optional[int]
    operators: Tuple[OperatorCost, ...]

    @property
    def within_budget(self) -> bool:
        """Whether the estimate respects the declared budget (if any)."""
        return self.budget is None or self.total <= self.budget

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form (embedded in translation certificates)."""
        return {
            "total": self.total,
            "rows_out": self.rows_out,
            "budget": self.budget,
            "within_budget": self.within_budget,
            "operators": [operator.to_dict() for operator in self.operators],
        }


def _estimate(
    expression: Expression,
    scope: Mapping[str, Tuple[str, ...]],
    rows: Mapping[str, int],
    out: List[OperatorCost],
) -> int:
    """Post-order walk: append per-operator costs, return estimated rows."""
    if isinstance(expression, RelationRef):
        n = rows.get(expression.name, DEFAULT_ROW_ESTIMATE)
        out.append(OperatorCost("scan", "columnar.scan", n, n))
        return n
    if isinstance(expression, Empty):
        out.append(OperatorCost("empty", "columnar.empty", 0, 0))
        return 0
    if isinstance(expression, Select):
        n = _estimate(expression.child, scope, rows, out)
        conjuncts = len(list(expression.condition.conjuncts()))
        produced = n
        for _ in range(conjuncts):
            produced = max(produced // 2, 1) if produced else 0
        out.append(OperatorCost("select", "columnar.select", produced, n))
        return produced
    if isinstance(expression, Project):
        n = _estimate(expression.child, scope, rows, out)
        out.append(OperatorCost("project", "columnar.project", n, n))
        return n
    if isinstance(expression, Join):
        left = _estimate(expression.left, scope, rows, out)
        right = _estimate(expression.right, scope, rows, out)
        shared = set(expression.left.attributes(dict(scope))) & set(
            expression.right.attributes(dict(scope))
        )
        if shared:
            produced = max(left, right)
            cost = left + right + produced
            out.append(OperatorCost("join", "columnar.hash_join", produced, cost))
        else:
            produced = left * right
            cost = produced
            out.append(OperatorCost("join", "columnar.cartesian", produced, cost))
        return produced
    if isinstance(expression, Union):
        left = _estimate(expression.left, scope, rows, out)
        right = _estimate(expression.right, scope, rows, out)
        produced = left + right
        out.append(OperatorCost("union", "columnar.union", produced, produced))
        return produced
    if isinstance(expression, Difference):
        left = _estimate(expression.left, scope, rows, out)
        right = _estimate(expression.right, scope, rows, out)
        out.append(
            OperatorCost("difference", "columnar.difference", left, left + right)
        )
        return left
    if isinstance(expression, Rename):
        n = _estimate(expression.child, scope, rows, out)
        # Renames are dictionary-code metadata swaps in the columnar
        # engine: no per-row work.
        out.append(OperatorCost("rename", "columnar.rename", n, 0))
        return n
    raise WarehouseError(
        f"cost model cannot estimate operator {type(expression).__name__}"
    )


def estimate_cost(
    expression: Expression,
    scope: Mapping[str, Tuple[str, ...]],
    rows: Optional[Mapping[str, int]] = None,
    budget: Optional[int] = None,
) -> CostEstimate:
    """Estimate the kernel-level cost of evaluating ``expression``.

    ``scope`` maps every referenced relation to its attributes (needed to
    classify joins as hash joins vs cartesian products); ``rows`` gives
    per-relation cardinality estimates (``DEFAULT_ROW_ESTIMATE`` when
    absent). Deterministic: same expression and estimates, same result.
    """
    operators: List[OperatorCost] = []
    produced = _estimate(expression, scope, rows or {}, operators)
    total = sum(operator.cost for operator in operators)
    return CostEstimate(total, produced, budget, tuple(operators))


# ----------------------------------------------------------------------
# Witnesses: warehouse image collisions with diverging answers
# ----------------------------------------------------------------------


class QueryWitness(NamedTuple):
    """Two states with identical warehouse images but different answers."""

    query: str
    left: State
    right: State
    answer_attributes: Tuple[str, ...]
    left_answer: Tuple[tuple, ...]
    right_answer: Tuple[tuple, ...]

    def max_rows_per_relation(self) -> int:
        """The larger side's largest relation — the witness's "size"."""
        sizes = [
            len(rel)
            for state in (self.left, self.right)
            for rel in state.values()
        ]
        return max(sizes) if sizes else 0

    def to_dict(self) -> Dict[str, object]:
        """A deterministic JSON-ready rendering (rows sorted)."""

        def render(state: State) -> Dict[str, List[List[object]]]:
            return {
                name: [list(row) for row in sorted(state[name].rows, key=_row_key)]
                for name in sorted(state)
            }

        return {
            "kind": "query",
            "query": self.query,
            "attributes": {
                name: list(self.left[name].attributes)
                for name in sorted(self.left)
            },
            "left": render(self.left),
            "right": render(self.right),
            "answer_attributes": list(self.answer_attributes),
            "left_answer": [list(row) for row in self.left_answer],
            "right_answer": [list(row) for row in self.right_answer],
            "max_rows_per_relation": self.max_rows_per_relation(),
        }

    def describe(self) -> str:
        """Human-readable rendering of the two states and answers."""
        lines = []
        for name in sorted(self.left):
            left_rows = sorted(self.left[name].rows, key=_row_key)
            right_rows = sorted(self.right[name].rows, key=_row_key)
            marker = "  <- differs" if left_rows != right_rows else ""
            lines.append(f"{name}: {left_rows} vs {right_rows}{marker}")
        lines.append(
            f"answer({self.query}): {list(self.left_answer)} vs "
            f"{list(self.right_answer)}"
        )
        return "\n".join(lines)


class QuerySearchOutcome(NamedTuple):
    """Result of :func:`search_query_counterexample`."""

    witness: Optional[QueryWitness]
    states_examined: int
    exhausted: bool


def _answer(
    definitions: Mapping[str, Expression], query: Expression, state: State
) -> Relation:
    """Evaluate ``query`` over a state plus its warehouse image.

    The image is merged in so queries may also reference view names — the
    translation leaves warehouse names alone (Theorem 3.1), so the
    source-side oracle must bind them too.
    """
    image = evaluate_all(definitions, state)
    merged = dict(state)
    merged.update(image)
    return evaluate(query, merged)


def _sorted_rows(relation: Relation) -> Tuple[tuple, ...]:
    return tuple(sorted(relation.rows, key=_row_key))


def _make_witness(
    definitions: Mapping[str, Expression],
    query: Expression,
    left: State,
    right: State,
) -> QueryWitness:
    left_answer = _answer(definitions, query, left)
    right_answer = _answer(definitions, query, right)
    return QueryWitness(
        query=str(query),
        left=left,
        right=right,
        answer_attributes=tuple(left_answer.attributes),
        left_answer=_sorted_rows(left_answer),
        right_answer=_sorted_rows(right_answer),
    )


def verify_query_witness(
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    query: Expression,
    witness: QueryWitness,
) -> List[str]:
    """Independently check a query witness; returns problem descriptions.

    A valid witness has (i) two constraint-satisfying states with (ii)
    identical images under every warehouse definition yet (iii) different
    answers to ``query`` — and the recorded answers must match a fresh
    evaluation, so golden witnesses replay against today's evaluator.
    """
    problems: List[str] = []
    for side, state in (("left", witness.left), ("right", witness.right)):
        if not _state_valid(catalog, state):
            problems.append(f"{side} state violates the catalog's constraints")
    left_image = evaluate_all(definitions, witness.left)
    right_image = evaluate_all(definitions, witness.right)
    for name in definitions:
        if left_image[name] != right_image[name]:
            problems.append(f"images differ on warehouse relation {name!r}")
    left_answer = _answer(definitions, query, witness.left)
    right_answer = _answer(definitions, query, witness.right)
    if left_answer == right_answer:
        problems.append("the two states give the same query answer")
    if _sorted_rows(left_answer) != tuple(witness.left_answer):
        problems.append("recorded left answer does not replay")
    if _sorted_rows(right_answer) != tuple(witness.right_answer):
        problems.append("recorded right answer does not replay")
    return problems


def _is_query_witness(
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    query: Expression,
    left: State,
    right: State,
) -> bool:
    if not _state_valid(catalog, left) or not _state_valid(catalog, right):
        return False
    left_image = evaluate_all(definitions, left)
    right_image = evaluate_all(definitions, right)
    for name in definitions:
        if left_image[name] != right_image[name]:
            return False
    return _answer(definitions, query, left) != _answer(definitions, query, right)


def _without(relation: Relation, row: tuple) -> Relation:
    return Relation(relation.attributes, [r for r in relation.rows if r != row])


def shrink_query_witness(
    witness: QueryWitness,
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    query: Expression,
) -> QueryWitness:
    """Greedily remove rows while the pair still diverges on the answer."""
    left = dict(witness.left)
    right = dict(witness.right)
    changed = True
    while changed:
        changed = False
        for relation in catalog.relation_names():
            rows = sorted(left[relation].rows | right[relation].rows, key=_row_key)
            for row in rows:
                candidate_left = dict(left)
                candidate_right = dict(right)
                candidate_left[relation] = _without(left[relation], row)
                candidate_right[relation] = _without(right[relation], row)
                if _is_query_witness(
                    catalog, definitions, query, candidate_left, candidate_right
                ):
                    left = candidate_left
                    right = candidate_right
                    changed = True
    return _make_witness(definitions, query, left, right)


def search_query_counterexample(
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    query: Expression,
    max_model_size: int = 2,
    domain_size: int = 2,
    max_states: int = 50000,
) -> QuerySearchOutcome:
    """Search for two states with equal images but different answers.

    Enumerates constraint-satisfying states over small derived domains
    (constants mentioned by views, checks *and the query* seed the
    domains), groups them by warehouse image, and returns the first
    group containing two different query answers — shrunk to a minimal
    witness. Deterministic end to end.
    """
    seeded: Dict[str, Expression] = dict(definitions)
    seeded["__query__"] = query
    domains = attribute_domains(catalog, seeded, size=domain_size)
    seen: Dict[object, Dict[FrozenSet[tuple], State]] = {}
    examined = 0
    exhausted = True
    for state in enumerate_states(
        catalog, domains, max_rows_per_relation=max_model_size
    ):
        examined += 1
        if examined > max_states:
            exhausted = False
            break
        image = evaluate_all(definitions, state)
        image_key = tuple(
            (name, frozenset(image[name].rows)) for name in sorted(image)
        )
        merged = dict(state)
        merged.update(image)
        answer_key = frozenset(evaluate(query, merged).rows)
        bucket = seen.setdefault(image_key, {})
        if bucket and answer_key not in bucket:
            other = next(iter(bucket.values()))
            witness = shrink_query_witness(
                _make_witness(definitions, query, other, state),
                catalog,
                definitions,
                query,
            )
            return QuerySearchOutcome(witness, examined, True)
        bucket.setdefault(answer_key, state)
    return QuerySearchOutcome(None, examined, exhausted)


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------


def build_query_certificate(
    catalog: Catalog,
    warehouse: Mapping[str, Expression],
    query: Expression,
    translated: Expression,
    optimized: Expression,
    method: str,
    mode: str,
    cost: CostEstimate,
    inversions: Optional[Mapping[str, Expression]] = None,
    folds: Optional[Mapping[str, Expression]] = None,
) -> Dict[str, object]:
    """The machine-checkable certificate for one PROVED translation.

    Records the query, both translation forms (paper-shaped and
    optimized), the warehouse mapping ``W`` over sources, the Equation (4)
    inversions (``method="inversion"``) or the folded view definitions
    (``method="view-fold"``), the static read set, and the kernel cost
    estimate. Expressions are serialized in the parseable algebra syntax:
    a consumer needs only :func:`repro.algebra.parser.parse` to re-check
    it. Its :func:`~repro.analysis.digest.canonical_digest` is the
    plan-cache invalidation key.
    """
    warehouse_names = frozenset(warehouse)
    certificate: Dict[str, object] = {
        "version": QUERY_CERTIFICATE_VERSION,
        "kind": "query-translation",
        "mode": mode,
        "method": method,
        "query": str(query),
        "source_relations": {
            schema.name: list(schema.attributes) for schema in catalog.schemas()
        },
        "warehouse": {
            name: str(expression) for name, expression in warehouse.items()
        },
        "translated": str(translated),
        "optimized": str(optimized),
        "read_set": sorted(optimized.relation_names()),
        "cost": cost.to_dict(),
    }
    if inversions is not None:
        certificate["inversions"] = {
            relation: {
                "expression": str(expression),
                "references": sorted(
                    expression.relation_names() & warehouse_names
                ),
            }
            for relation, expression in inversions.items()
        }
    if folds is not None:
        certificate["folds"] = {
            name: str(expression) for name, expression in folds.items()
        }
    return certificate


def query_certificate_digest(certificate: Mapping[str, object]) -> str:
    """The canonical digest of a translation certificate (plan-cache key)."""
    return canonical_digest(certificate)


def check_query_certificate(
    catalog: Catalog, certificate: Mapping[str, object]
) -> List[str]:
    """Independently validate a translation certificate.

    Structural checks: both translation forms parse and reference no
    source relation; the recorded read set matches the optimized form;
    every read names a declared warehouse relation. Numeric replay: on
    seeded random constraint-satisfying databases, ``Q`` over the sources
    (plus image, for mixed queries) must equal both translation forms
    evaluated over the warehouse image *alone* — the Theorem 3.1 equality,
    checked empirically. An empty result means the certificate stands on
    its own.
    """
    from repro.workloads.generator import random_database

    problems: List[str] = []
    warehouse_raw = certificate.get("warehouse")
    if not isinstance(warehouse_raw, Mapping):
        return ["certificate lacks a 'warehouse' section"]
    sources = frozenset(catalog.relation_names())
    definitions: Dict[str, Expression] = {}
    try:
        for name, text in warehouse_raw.items():
            definitions[str(name)] = parse(str(text))
        query = parse(str(certificate.get("query")))
        translated = parse(str(certificate.get("translated")))
        optimized = parse(str(certificate.get("optimized")))
    except ReproError as exc:
        return [f"certificate expression failed to parse: {exc}"]
    warehouse_names = frozenset(definitions)
    for label, expression in (("translated", translated), ("optimized", optimized)):
        source_refs = sorted(expression.relation_names() & sources)
        if source_refs:
            problems.append(
                f"{label} form references source relation(s) {source_refs} — "
                "a certified translation must read the warehouse only"
            )
        unknown = sorted(expression.relation_names() - warehouse_names)
        if unknown:
            problems.append(
                f"{label} form references undeclared relation(s) {unknown}"
            )
    read_set_raw = certificate.get("read_set")
    if not isinstance(read_set_raw, Sequence) or isinstance(read_set_raw, str):
        problems.append("certificate 'read_set' is not a list")
    else:
        recorded = sorted(str(name) for name in read_set_raw)
        if recorded != sorted(optimized.relation_names()):
            problems.append(
                f"read_set {recorded} does not match the optimized form's "
                f"references {sorted(optimized.relation_names())}"
            )
    if problems:
        return problems

    for seed in _REPLAY_SEEDS:
        state = random_database(
            seed, catalog, rows_per_relation=_REPLAY_ROWS,
            domain_size=_REPLAY_DOMAIN,
        ).state()
        image = evaluate_all(definitions, state)
        merged = dict(state)
        merged.update(image)
        try:
            expected = evaluate(query, merged)
            for label, expression in (
                ("translated", translated),
                ("optimized", optimized),
            ):
                if evaluate(expression, image) != expected:
                    problems.append(
                        f"replay (seed {seed}): the {label} form does not "
                        "match source-side evaluation of the query"
                    )
        except ReproError as exc:
            problems.append(f"replay (seed {seed}) failed to evaluate: {exc}")
    return problems


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


class QueryVerdict(NamedTuple):
    """The prover's verdict for one declared query."""

    name: str
    query: str
    verdict: str
    method: str
    detail: str
    expect: str = "proved"
    certificate: Optional[Dict[str, object]] = None
    witness: Optional[QueryWitness] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the verdict matches the query's declared expectation."""
        if self.error is not None:
            return False
        return self.verdict.lower() == self.expect

    def document(self) -> Dict[str, object]:
        """The per-query JSON document (nested in the file document)."""
        out: Dict[str, object] = {
            "name": self.name,
            "query": self.query,
            "verdict": self.verdict,
            "method": self.method,
            "expect": self.expect,
            "detail": self.detail,
        }
        if self.certificate is not None:
            out["certificate"] = self.certificate
            out["digest"] = query_certificate_digest(self.certificate)
        if self.witness is not None:
            out["witness"] = self.witness.to_dict()
        if self.error is not None:
            out["error"] = self.error
        return out


class QueryProofResult(NamedTuple):
    """The prover's verdicts for one spec file."""

    path: str
    mode: str
    queries: Tuple[QueryVerdict, ...] = ()
    translation_digest: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether every query's verdict matches its expectation."""
        if self.error is not None:
            return False
        return all(verdict.ok for verdict in self.queries)

    def counts(self) -> Dict[str, int]:
        """Verdict counts for summaries."""
        verdicts = [verdict.verdict for verdict in self.queries]
        return {
            "queries": len(verdicts),
            "proved": verdicts.count(PROVED),
            "refuted": verdicts.count(REFUTED),
            "unknown": verdicts.count(UNKNOWN),
        }

    def document(self) -> Dict[str, object]:
        """The per-file JSON document (the certificate artifact)."""
        out: Dict[str, object] = {
            "version": QUERY_CERTIFICATE_VERSION,
            "kind": "query-translation",
            "spec": display_path(self.path),
            "mode": self.mode,
            "ok": self.ok,
            "summary": self.counts(),
            "queries": [verdict.document() for verdict in self.queries],
        }
        if self.translation_digest is not None:
            out["translation_digest"] = self.translation_digest
        if self.error is not None:
            out["error"] = self.error
        return out


# ----------------------------------------------------------------------
# The decision procedure
# ----------------------------------------------------------------------


def default_queries(target: LintTarget) -> Tuple[QuerySpec, ...]:
    """Identity queries synthesized for a spec with no ``queries`` section.

    One per source relation — "can the warehouse answer ``R`` itself?" —
    which is exactly Proposition 2.1's injectivity question asked
    query-by-query: every spec therefore receives a verdict even before it
    declares any query. The expectation mirrors the spec-level prover's:
    an invertible spec must prove every identity query, a deliberately
    lossy one must refute at least its identities.
    """
    expect = "proved" if target.prover.expect == "proved" else "refuted"
    return tuple(
        QuerySpec(query=name, expect=expect, name=name)
        for name in target.catalog.relation_names()
    )


def invertible_spec(
    target: LintTarget, method: str = "thm22"
) -> Optional[WarehouseSpec]:
    """The spec to translate through, when Theorem 3.1 applies verbatim.

    ``with-complement`` mode: any successfully specified PSJ spec.
    ``views-only`` mode: only when every complement is provably empty
    (the views alone are invertible). ``None`` means the inversion method
    is unavailable and the prover falls back to view-folding / refutation.
    """
    if not all(view.is_psj() for view in target.views):
        return None
    try:
        spec = specify(target.catalog, target.views, method=method)
    except ReproError:
        return None
    if target.prover.mode == "views-only" and spec.complement_names():
        return None
    return spec


def _scopes(
    catalog: Catalog, views: Sequence[View]
) -> Tuple[Dict[str, Tuple[str, ...]], Dict[str, Tuple[str, ...]]]:
    source_scope = {s.name: s.attributes for s in catalog.schemas()}
    view_scope = {
        view.name: view.definition.attributes(source_scope) for view in views
    }
    return source_scope, view_scope


def _decide_query(
    target: LintTarget,
    spec: Optional[WarehouseSpec],
    item: QuerySpec,
    method: str,
    rows: Mapping[str, int],
    budget: Optional[int],
) -> QueryVerdict:
    catalog = target.catalog
    views = target.views
    mode = target.prover.mode
    label = item.label()
    try:
        query = parse(item.query)
    except ReproError as exc:
        return QueryVerdict(
            label, item.query, UNKNOWN, "none",
            "query failed to parse", expect=item.expect, error=str(exc),
        )
    source_scope, view_scope = _scopes(catalog, views)
    known = set(source_scope) | set(view_scope)
    if spec is not None:
        known |= set(spec.warehouse_names())
    undeclared = sorted(query.relation_names() - known)
    if undeclared:
        return QueryVerdict(
            label, str(query), UNKNOWN, "none",
            "query references undeclared relations", expect=item.expect,
            error=f"undeclared relation(s) {undeclared}",
        )

    if spec is not None:
        return _prove_by_inversion(
            target, spec, item, label, query, mode, rows, budget
        )

    # Lossy warehouse: try folding the view definitions out of the query.
    replacements: Dict[Expression, Expression] = {
        view.definition: RelationRef(view.name) for view in views
    }
    merged_scope = dict(source_scope)
    merged_scope.update(view_scope)
    folded = simplify(fold_occurrences(query, replacements), merged_scope)
    sources = frozenset(catalog.relation_names())
    if not (folded.relation_names() & sources):
        return _prove_by_fold(
            target, item, label, query, folded, mode, view_scope, rows, budget
        )

    # Neither proof applies — search for an answer-divergence witness.
    definitions = {view.name: view.definition for view in views}
    outcome = search_query_counterexample(
        catalog,
        definitions,
        query,
        max_model_size=target.prover.max_model_size,
        domain_size=target.prover.domain_size,
    )
    if outcome.witness is not None:
        problems = verify_query_witness(
            catalog, definitions, query, outcome.witness
        )
        if problems:
            return QueryVerdict(
                label, str(query), UNKNOWN, "search",
                "search produced an invalid witness", expect=item.expect,
                error="; ".join(problems),
            )
        detail = (
            "warehouse state underdetermines the answer: two states with "
            "identical images but different query answers, "
            f"≤{outcome.witness.max_rows_per_relation()} row(s) per relation "
            f"({outcome.states_examined} state(s) examined)"
        )
        return QueryVerdict(
            label, str(query), REFUTED, "search", detail,
            expect=item.expect, witness=outcome.witness,
        )
    coverage = "exhaustively" if outcome.exhausted else "partially (budget hit)"
    detail = (
        "no translation method applied and the bounded model space "
        f"({outcome.states_examined} state(s), searched {coverage}) "
        "contains no answer divergence"
    )
    return QueryVerdict(
        label, str(query), UNKNOWN, "search", detail, expect=item.expect
    )


def _prove_by_inversion(
    target: LintTarget,
    spec: WarehouseSpec,
    item: QuerySpec,
    label: str,
    query: Expression,
    mode: str,
    rows: Mapping[str, int],
    budget: Optional[int],
) -> QueryVerdict:
    try:
        translated = translate_query(spec, query)
        optimized = translate_query(spec, query, optimized=True)
        cost = estimate_cost(
            optimized, spec.warehouse_scope(), rows=rows, budget=budget
        )
    except ReproError as exc:
        return QueryVerdict(
            label, str(query), UNKNOWN, "inversion",
            "translation failed", expect=item.expect, error=str(exc),
        )
    referenced = sorted(query.relation_names() & set(spec.inverses))
    inversions = {name: spec.inverse_for(name) for name in referenced}
    certificate = build_query_certificate(
        target.catalog,
        spec.definitions_over_sources(),
        query,
        translated,
        optimized,
        "inversion",
        mode,
        cost,
        inversions=inversions,
    )
    problems = check_query_certificate(target.catalog, certificate)
    if problems:
        # Never claim PROVED on the strength of a broken certificate.
        return QueryVerdict(
            label, str(query), UNKNOWN, "inversion",
            "derived certificate failed self-validation", expect=item.expect,
            error="; ".join(problems),
        )
    detail = (
        f"translated via Equation (4) inversion of {len(inversions)} base "
        f"relation(s); reads {len(sorted(optimized.relation_names()))} "
        f"warehouse relation(s), estimated cost {cost.total}"
    )
    return QueryVerdict(
        label, str(query), PROVED, "inversion", detail,
        expect=item.expect, certificate=certificate,
    )


def _prove_by_fold(
    target: LintTarget,
    item: QuerySpec,
    label: str,
    query: Expression,
    folded: Expression,
    mode: str,
    view_scope: Mapping[str, Tuple[str, ...]],
    rows: Mapping[str, int],
    budget: Optional[int],
) -> QueryVerdict:
    views = target.views
    try:
        optimized = optimize(folded, dict(view_scope))
        cost = estimate_cost(optimized, view_scope, rows=rows, budget=budget)
    except ReproError as exc:
        return QueryVerdict(
            label, str(query), UNKNOWN, "view-fold",
            "folded translation failed to optimize", expect=item.expect,
            error=str(exc),
        )
    used = folded.relation_names() | optimized.relation_names()
    folds = {
        view.name: view.definition for view in views if view.name in used
    }
    warehouse = {view.name: view.definition for view in views}
    certificate = build_query_certificate(
        target.catalog,
        warehouse,
        query,
        folded,
        optimized,
        "view-fold",
        mode,
        cost,
        folds=folds,
    )
    problems = check_query_certificate(target.catalog, certificate)
    if problems:
        return QueryVerdict(
            label, str(query), UNKNOWN, "view-fold",
            "derived certificate failed self-validation", expect=item.expect,
            error="; ".join(problems),
        )
    detail = (
        f"query folds onto {len(folds)} warehouse view(s) without touching "
        f"a source; estimated cost {cost.total}"
    )
    return QueryVerdict(
        label, str(query), PROVED, "view-fold", detail,
        expect=item.expect, certificate=certificate,
    )


def prove_queries_target(
    target: LintTarget, method: str = "thm22"
) -> QueryProofResult:
    """Decide every declared (or synthesized) query of one loaded spec."""
    options = target.queries
    items = options.items if options is not None else default_queries(target)
    rows: Dict[str, int] = dict(options.rows or {}) if options is not None else {}
    budget = options.budget if options is not None else None
    spec = invertible_spec(target, method=method)
    digest: Optional[str] = None
    if spec is not None:
        from repro.core.translation import translation_digest

        digest = translation_digest(spec)
    verdicts = tuple(
        _decide_query(target, spec, item, method, rows, budget)
        for item in items
    )
    return QueryProofResult(
        target.path, target.prover.mode, verdicts, translation_digest=digest
    )


def prove_queries_file(path: str, method: str = "thm22") -> QueryProofResult:
    """Load and decide one spec file; load failures become error results."""
    try:
        target = load_target(path)
    except (OSError, ValueError, ReproError) as exc:
        return QueryProofResult(path, "with-complement", (), error=str(exc))
    return prove_queries_target(target, method=method)


# ----------------------------------------------------------------------
# Runtime sanitizer (REPRO_CHECK_QUERIES=1)
# ----------------------------------------------------------------------


def check_translation_reads(
    spec: WarehouseSpec,
    static_reads: Iterable[str],
    root: "Span",
) -> None:
    """Cross-check a traced translated-query evaluation (the sanitizer).

    ``root`` is the captured evaluation span tree. Raises
    :class:`~repro.errors.WarehouseError` when the trace read any source
    relation (Theorem 3.1 violated at runtime) or any warehouse relation
    outside the certificate's static read set (the plan the certificate
    describes is not the plan that ran).
    """
    from repro.obs.explain import source_relations_read

    source_reads = source_relations_read(root, spec.catalog.relation_names())
    if source_reads:
        raise WarehouseError(
            f"query sanitizer ({QUERIES_ENV}=1): translated query read "
            f"source relation(s) {source_reads}; Theorem 3.1 promises "
            "warehouse-only answering"
        )
    allowed = frozenset(static_reads)
    touched = source_relations_read(root, spec.warehouse_names())
    extra = sorted(set(touched) - allowed)
    if extra:
        raise WarehouseError(
            f"query sanitizer ({QUERIES_ENV}=1): runtime read(s) {extra} "
            f"outside the static read set {sorted(allowed)}"
        )


# ----------------------------------------------------------------------
# Rendering and exit codes
# ----------------------------------------------------------------------


def query_exit_code(
    results: Sequence[QueryProofResult], strict: bool = False
) -> int:
    """Process verdict: 0 expectations met, 1 mismatch, 2 load/parse error.

    Without ``strict``, UNKNOWN fails only when the query expected
    ``refuted``; with ``strict`` every UNKNOWN fails *unless* the spec
    pinned ``"expect": "unknown"`` — an honest, documented incompleteness
    is not a CI failure, an accidental one is.
    """
    if any(result.error is not None for result in results):
        return 2
    for result in results:
        for verdict in result.queries:
            if verdict.error is not None:
                return 2
            if verdict.verdict == UNKNOWN:
                if verdict.expect == "unknown":
                    continue
                if strict or verdict.expect == "refuted":
                    return 1
            elif not verdict.ok:
                return 1
    return 0


def render_queries_text(
    results: Sequence[QueryProofResult], strict: bool = False
) -> str:
    """Human-readable rendering for ``--format text``."""
    lines: List[str] = []
    totals = {"queries": 0, "proved": 0, "refuted": 0, "unknown": 0}
    for result in results:
        if result.error is not None:
            lines.append(f"{display_path(result.path)}: error: {result.error}")
            continue
        counts = result.counts()
        for key in totals:
            totals[key] += counts[key]
        lines.append(
            f"{display_path(result.path)}: {counts['queries']} query(ies) — "
            f"{counts['proved']} proved, {counts['refuted']} refuted, "
            f"{counts['unknown']} unknown"
        )
        for verdict in result.queries:
            status = "" if verdict.ok else "  [unexpected]"
            if (
                verdict.verdict == UNKNOWN
                and not strict
                and verdict.expect not in ("refuted", "unknown")
            ):
                status = ""
            lines.append(
                f"  {verdict.name}: {verdict.verdict} ({verdict.method}) — "
                f"{verdict.detail}{status}"
            )
            if verdict.error is not None:
                lines.append(f"    error: {verdict.error}")
            if verdict.witness is not None:
                for line in verdict.witness.describe().splitlines():
                    lines.append(f"    {line}")
    code = query_exit_code(results, strict=strict)
    lines.append(
        f"{'FAIL' if code else 'OK'}: {len(results)} file(s), "
        f"{totals['queries']} query(ies), {totals['proved']} proved, "
        f"{totals['refuted']} refuted, {totals['unknown']} unknown"
    )
    return "\n".join(lines)


def render_queries_json(
    results: Sequence[QueryProofResult], strict: bool = False
) -> str:
    """Machine-readable rendering for ``--format json`` (the CI artifact)."""
    totals = {"queries": 0, "proved": 0, "refuted": 0, "unknown": 0}
    for result in results:
        counts = result.counts()
        for key in totals:
            totals[key] += counts[key]
    document = {
        "version": QUERY_CERTIFICATE_VERSION,
        "kind": "query-translation",
        "strict": strict,
        "ok": query_exit_code(results, strict=strict) == 0,
        "summary": dict(totals, files=len(results)),
        "results": [result.document() for result in results],
    }
    return json.dumps(document, indent=1, sort_keys=True)


def query_certificate_json(result: QueryProofResult) -> str:
    """One file's verdict document as deterministic JSON text."""
    return json.dumps(result.document(), indent=1, sort_keys=True) + "\n"
