"""Runtime race sanitizer for the sharded integrator (``REPRO_CHECK_RACES=1``).

Sibling of the ``REPRO_CHECK_INVARIANTS`` dataflow sanitizer
(:mod:`repro.analysis.dataflow`): where that one cross-checks a refresh's
*reads* against Theorem 4.1's static read sets, this one cross-checks the
concurrency protocol around shard refreshes against the static claims the
shard-independence prover makes (:mod:`repro.analysis.concurrency`):

* **lock order** — shard locks may only be acquired in ascending shard
  order (the deadlock-freedom invariant the ``W0102`` lint states
  statically); :meth:`RaceTracker.note_acquire` fails on the first
  out-of-order acquisition, contention or not;
* **refresh overlap** — between the first :meth:`RaceTracker.begin_refresh`
  of a batch and the commit that publishes it, no *other* worker may
  refresh the same shard. Under correct locking this cannot happen; with a
  broken lock protocol the second writer's state capture silently discards
  the first's (a lost update at commit), which is exactly what the tracker
  turns into a loud failure;
* **write footprints** — the warehouse relations a refresh actually
  changed must be inside the statically computed per-update-shape write
  footprint (:func:`repro.analysis.concurrency.write_footprint`); a write
  outside it means the engine and the analysis disagree.

The tracker is cooperative-concurrency-scoped: workers are identified by
their running :func:`asyncio.current_task` (``None`` for synchronous
callers, which therefore form one serial worker). Like its sibling, the
environment variable is read once per warehouse construction
(:func:`races_enabled`), never on a hot path.
"""

from __future__ import annotations

import asyncio
import os
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import WarehouseError

RACES_ENV = "REPRO_CHECK_RACES"


def races_enabled() -> bool:
    """Whether the ``REPRO_CHECK_RACES`` sanitizer mode is on.

    Any value other than unset/empty/``0`` enables it. Read once per
    :class:`~repro.core.sharding.ShardedWarehouse` construction, never on
    the refresh hot path.
    """
    return os.environ.get(RACES_ENV, "") not in ("", "0")


def _current_worker() -> Optional[object]:
    """The identity of the running worker (``None`` outside a task)."""
    try:
        return asyncio.current_task()
    except RuntimeError:
        return None


def _worker_label(worker: Optional[object]) -> str:
    if worker is None:
        return "<sync>"
    name = getattr(worker, "get_name", None)
    if callable(name):
        return str(name())
    return repr(worker)


class RaceTracker:
    """Dynamic cross-check of the sharded refresh protocol.

    One tracker per :class:`~repro.core.sharding.ShardedWarehouse`, active
    only under ``REPRO_CHECK_RACES=1``. Every check raises
    :class:`~repro.errors.WarehouseError` on the first violation —
    silently continuing would hide a broken commutativity guarantee.
    """

    __slots__ = ("_shards", "_held", "_claims")

    def __init__(self, shards: int) -> None:
        self._shards = shards
        #: Per worker id: shard locks currently held, in acquisition order.
        self._held: Dict[int, List[int]] = {}
        #: Per shard: the worker with an uncommitted refresh + its writes.
        self._claims: Dict[int, Tuple[Optional[object], FrozenSet[str]]] = {}

    # -- lock order ----------------------------------------------------

    def note_acquire(self, shard: int) -> None:
        """Record a shard-lock acquisition; fail if it is out of order."""
        worker = _current_worker()
        held = self._held.setdefault(id(worker), [])
        higher = [index for index in held if index >= shard]
        if higher:
            raise WarehouseError(
                f"sanitizer ({RACES_ENV}=1): worker "
                f"{_worker_label(worker)} acquired the lock for shard "
                f"{shard} while holding lock(s) {higher} — shard locks "
                "must be acquired in ascending order (deadlock freedom)"
            )
        held.append(shard)

    def note_release(self, shard: int) -> None:
        """Record a shard-lock release."""
        worker = _current_worker()
        held = self._held.get(id(worker))
        if held is not None and shard in held:
            held.remove(shard)
            if not held:
                del self._held[id(worker)]

    # -- refresh overlap + write footprints ----------------------------

    def begin_refresh(self, shard: int, writes: FrozenSet[str]) -> None:
        """Open a shard's uncommitted-refresh window; fail on overlap."""
        worker = _current_worker()
        claim = self._claims.get(shard)
        if claim is not None and claim[0] is not worker:
            other_worker, other_writes = claim
            overlap = sorted(writes & other_writes)
            detail = (
                f"overlapping write sets {overlap}"
                if overlap
                else f"write sets {sorted(other_writes)} and {sorted(writes)}"
            )
            raise WarehouseError(
                f"sanitizer ({RACES_ENV}=1): worker "
                f"{_worker_label(worker)} refreshed shard {shard} while "
                f"worker {_worker_label(other_worker)} has an uncommitted "
                f"refresh on it ({detail}) — the second commit would "
                "silently discard the first (racing shard writes)"
            )
        merged = writes if claim is None else claim[1] | writes
        self._claims[shard] = (worker, merged)

    def end_commit(self, shards: Iterable[int]) -> None:
        """Close the uncommitted-refresh windows a commit publishes."""
        for shard in shards:
            self._claims.pop(shard, None)

    def check_written(
        self, shard: int, static: FrozenSet[str], written: Iterable[str]
    ) -> None:
        """Fail if a refresh wrote outside its static write footprint."""
        extra = sorted(set(written) - static)
        if extra:
            raise WarehouseError(
                f"sanitizer ({RACES_ENV}=1): shard {shard} refresh wrote "
                f"warehouse relation(s) {extra} outside the static write "
                f"footprint {sorted(static)} — the maintenance engine and "
                "the concurrency analysis disagree"
            )

    def __repr__(self) -> str:
        return (
            f"RaceTracker({self._shards} shards, "
            f"{len(self._claims)} open refresh(es), "
            f"{sum(len(h) for h in self._held.values())} lock(s) held)"
        )
