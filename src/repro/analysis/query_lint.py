"""The ``W02xx`` lint family: query-translation defects in spec files.

Rides alongside the view lints (:mod:`repro.analysis.lint`) inside
``python -m repro lint``: when a spec file declares a ``"queries"``
section (or for the synthesized identity queries when it does not), this
pass statically checks each query against the declared warehouse, without
running the (more expensive) refutation search of
:mod:`repro.analysis.query`:

* **W0201** (error) — the query references a relation that is neither a
  declared source nor a warehouse relation; it cannot be translated at
  all.
* **W0202** (warning) — the translated query still reads a source
  relation: the warehouse is lossy for this query, Theorem 3.1's
  ``Q ∘ W^{-1}`` does not exist. ``repro prove-query`` will REFUTE (or
  honestly UNKNOWN) it.
* **W0203** (warning) — the query's selection condition needs an
  attribute that every warehouse relation projects away; the root cause
  behind most W0202s, reported separately because it points at the
  *attribute* to add to a view (or cover with a complement).
* **W0204** (warning) — the spec declares a ``queries.budget`` and the
  kernel-level cost estimate of the translated plan exceeds it.

All four are suppressable per file via ``lint.ignore`` with a recorded
justification, like every other code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.algebra.expressions import Expression, RelationRef, Select
from repro.algebra.parser import parse
from repro.algebra.rewriting import fold_occurrences
from repro.algebra.simplify import simplify
from repro.core.complement import WarehouseSpec
from repro.core.translation import translate_query
from repro.analysis.diagnostics import Diagnostic, make
from repro.analysis.query import (
    QuerySpec,
    default_queries,
    estimate_cost,
    invertible_spec,
)
from repro.analysis.specfile import LintTarget


def _condition_attributes(query: Expression) -> FrozenSet[str]:
    """Every attribute mentioned by a selection condition inside ``query``."""
    needed: Set[str] = set()
    for node in query.walk():
        if isinstance(node, Select):
            needed |= node.condition.attributes()
    return frozenset(needed)


def _translated(
    target: LintTarget,
    spec: Optional[WarehouseSpec],
    query: Expression,
) -> Optional[Expression]:
    """The warehouse-side plan this query would get, or ``None``.

    Mirrors the prover's first two methods (inversion, view-fold) but
    never searches for witnesses — lint must stay cheap.
    """
    if spec is not None:
        try:
            return translate_query(spec, query, optimized=True)
        except ReproError:
            return None
    source_scope = {s.name: s.attributes for s in target.catalog.schemas()}
    view_scope = {
        view.name: view.definition.attributes(source_scope)
        for view in target.views
    }
    merged = dict(source_scope)
    merged.update(view_scope)
    replacements: Dict[Expression, Expression] = {
        view.definition: RelationRef(view.name) for view in target.views
    }
    try:
        return simplify(fold_occurrences(query, replacements), merged)
    except ReproError:
        return None


def lint_queries(target: LintTarget, method: str = "thm22") -> List[Diagnostic]:
    """Run the W02xx checks over one loaded spec's declared queries."""
    diagnostics: List[Diagnostic] = []
    options = target.queries
    items: Tuple[QuerySpec, ...] = (
        options.items if options is not None else default_queries(target)
    )
    budget = options.budget if options is not None else None
    rows = dict(options.rows or {}) if options is not None else {}
    spec = invertible_spec(target, method=method)
    sources = frozenset(target.catalog.relation_names())
    source_scope = {s.name: s.attributes for s in target.catalog.schemas()}
    try:
        if spec is not None:
            warehouse_scope = dict(spec.warehouse_scope())
        else:
            warehouse_scope = {
                view.name: view.definition.attributes(source_scope)
                for view in target.views
            }
    except ReproError:
        # A view that does not scope-check has no translation to lint;
        # the E01xx typechecker owns that report.
        return diagnostics
    warehouse_attrs = frozenset(
        attr for attrs in warehouse_scope.values() for attr in attrs
    )
    known = sources | frozenset(warehouse_scope)
    for item in items:
        label = item.label()
        try:
            query = parse(item.query)
        except ReproError as exc:
            diagnostics.append(
                make(
                    "W0201",
                    f"query {label!r} cannot be analyzed: {exc}",
                    hint="fix the query text; see docs/algebra.md for the "
                    "expression syntax",
                )
            )
            continue
        undeclared = sorted(query.relation_names() - known)
        if undeclared:
            diagnostics.append(
                make(
                    "W0201",
                    f"query {label!r} references undeclared relation(s) "
                    f"{undeclared}",
                    hint="queries may mention declared source relations "
                    "and warehouse relations only",
                )
            )
            continue
        dropped = sorted(_condition_attributes(query) - warehouse_attrs)
        if dropped:
            diagnostics.append(
                make(
                    "W0203",
                    f"query {label!r} selects on attribute(s) {dropped} "
                    "that every warehouse relation projects away",
                    hint="keep the attribute in a view, or store a "
                    "complement covering it (Theorem 2.2)",
                )
            )
        plan = _translated(target, spec, query)
        if plan is None:
            continue
        residual = sorted(plan.relation_names() & sources)
        if residual:
            diagnostics.append(
                make(
                    "W0202",
                    f"translated query {label!r} would still read source "
                    f"relation(s) {residual}",
                    hint="the warehouse underdetermines this query; "
                    "`python -m repro prove-query` can exhibit a witness",
                )
            )
            continue
        if budget is not None:
            cost = estimate_cost(
                plan, warehouse_scope, rows=rows, budget=budget
            )
            if not cost.within_budget:
                diagnostics.append(
                    make(
                        "W0204",
                        f"query {label!r} has estimated cost {cost.total}, "
                        f"exceeding the declared budget {budget}",
                        hint="raise queries.budget, adjust queries.rows "
                        "estimates, or simplify the query",
                    )
                )
    return diagnostics
