"""Static plan-dataflow analysis: which sources must a refresh read?

Theorem 4.1 states the paper's update-independence guarantee: with a
complement stored, a warehouse refresh touches *no* source relation. This
module makes that claim statically checkable by computing, per update
shape (relation x insert/delete), the set of source relations the derived
maintenance plan would have to read:

* :func:`spec_read_sets` — over a full :class:`WarehouseSpec`: derive the
  maintenance expressions per update shape and collect every surviving
  source-relation reference. A correctly specified warehouse yields the
  empty set everywhere (the prover certifies ``update_independent`` from
  exactly this);
* :func:`views_only_read_sets` — over a bare view set (no complement):
  the delta expressions are folded against the views themselves, so the
  read set is empty precisely when the views are syntactically
  self-maintainable for that shape (the Section 4 closing case, and the
  quantity :func:`repro.core.selfmaint.self_maintainable_without_complement`
  decides per view);
* the **sanitizer** (``REPRO_CHECK_INVARIANTS=1``): at runtime,
  :meth:`repro.core.warehouse.Warehouse.apply` cross-checks the trace's
  :func:`repro.obs.explain.source_relations_read` against the static set
  (:func:`check_refresh_reads`) and fails loudly on divergence — a static
  analysis that disagrees with the engine is a bug in one of them.
"""

from __future__ import annotations

import os
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Set,
    Tuple,
)

from repro.errors import WarehouseError
from repro.algebra.deltas import del_name, delta_scope, derive_delta, ins_name
from repro.algebra.expressions import Empty, Expression, RelationRef
from repro.algebra.rewriting import fold_occurrences, substitute
from repro.algebra.simplify import simplify
from repro.schema.catalog import Catalog
from repro.views.psj import View
from repro.core.complement import WarehouseSpec
from repro.core.maintenance import maintenance_expressions

if TYPE_CHECKING:
    from repro.obs.trace import Span

SANITIZER_ENV = "REPRO_CHECK_INVARIANTS"

KINDS = ("insert", "delete")


class UpdateShape(NamedTuple):
    """One update shape: a base relation plus a pure update kind."""

    relation: str
    kind: str

    def label(self) -> str:
        """The stable ``relation:kind`` label used in reports and JSON."""
        return f"{self.relation}:{self.kind}"


class DataflowReport(NamedTuple):
    """Per-update-shape source read sets for one warehouse definition.

    ``read_sets`` maps every shape to the (sorted) source relations its
    maintenance plan reads; ``update_independent`` is Theorem 4.1's
    verdict: true iff every read set is empty.
    """

    source_relations: Tuple[str, ...]
    read_sets: Tuple[Tuple[UpdateShape, Tuple[str, ...]], ...]

    @property
    def update_independent(self) -> bool:
        """Whether no update shape needs to read any source relation."""
        return all(not reads for _, reads in self.read_sets)

    def reads_for(self, relation: str, kind: str) -> Tuple[str, ...]:
        """The read set of one shape (raises for unknown shapes)."""
        for shape, reads in self.read_sets:
            if shape.relation == relation and shape.kind == kind:
                return reads
        raise WarehouseError(f"no dataflow entry for shape {relation}:{kind}")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (the certificate's ``dataflow`` section)."""
        return {
            "update_independent": self.update_independent,
            "read_sets": {
                shape.label(): list(reads) for shape, reads in self.read_sets
            },
        }

    def describe(self) -> str:
        """Human-readable, one line per update shape."""
        lines = []
        for shape, reads in self.read_sets:
            verdict = "independent" if not reads else f"reads {list(reads)}"
            lines.append(f"{shape.label()}: {verdict}")
        lines.append(f"update independent: {self.update_independent}")
        return "\n".join(lines)


def _shapes(catalog: Catalog) -> List[UpdateShape]:
    return [
        UpdateShape(relation, kind)
        for relation in catalog.relation_names()
        for kind in KINDS
    ]


def spec_read_sets(spec: WarehouseSpec) -> DataflowReport:
    """Source relations each update shape's maintenance plan must read.

    For every base relation and pure update kind, derives the specialized
    maintenance expressions (:func:`repro.core.maintenance.maintenance_expressions`)
    and intersects the relations they reference — plus the Equation (4)
    inverses consulted by update normalization — with the source relation
    names. Complement-based specs come out empty everywhere: the inverse
    substitution replaced every base reference (Theorem 4.1).

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.views.psj import View
    >>> from repro.algebra.parser import parse
    >>> from repro.core.complement import specify
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
    >>> spec_read_sets(spec).update_independent
    True
    """
    sources = frozenset(spec.catalog.relation_names())
    read_sets: List[Tuple[UpdateShape, Tuple[str, ...]]] = []
    for shape in _shapes(spec.catalog):
        plan = maintenance_expressions(
            spec,
            [shape.relation],
            insert_only=shape.kind == "insert",
            delete_only=shape.kind == "delete",
        )
        reads: Set[str] = set()
        for delta in plan.expressions.values():
            reads |= delta.inserts.relation_names()
            reads |= delta.deletes.relation_names()
        # Normalizing the reported update evaluates the updated relation's
        # inverse; its references are part of the refresh's dataflow too.
        reads |= spec.inverses[shape.relation].relation_names()
        read_sets.append((shape, tuple(sorted(reads & sources))))
    return DataflowReport(tuple(sorted(sources)), tuple(read_sets))


def views_only_read_sets(catalog: Catalog, views: Iterable[View]) -> DataflowReport:
    """Source read sets for a bare view set maintained *without* complement.

    Each view's delta expressions are folded against the materialized views
    themselves; whatever base-relation references survive must be read from
    the sources. ``update_independent`` therefore reproduces the Section 4
    closing observation: a select-only view set needs no auxiliary data.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.views.psj import View
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> report = views_only_read_sets(
    ...     catalog, [View("Senior", parse("sigma[age >= 40](Emp)"))]
    ... )
    >>> report.update_independent
    True
    """
    view_list = list(views)
    sources = frozenset(catalog.relation_names())
    source_scope = {s.name: s.attributes for s in catalog.schemas()}
    folds = {
        view.definition: RelationRef(view.name) for view in view_list
    }
    read_sets: List[Tuple[UpdateShape, Tuple[str, ...]]] = []
    for shape in _shapes(catalog):
        extended = delta_scope(dict(source_scope), frozenset([shape.relation]))
        for view in view_list:
            extended[view.name] = view.definition.attributes(source_scope)
        attrs = source_scope[shape.relation]
        unused = (
            del_name(shape.relation)
            if shape.kind == "insert"
            else ins_name(shape.relation)
        )
        specialize: Dict[str, Expression] = {unused: Empty(attrs)}
        reads: Set[str] = set()
        for view in view_list:
            derived = derive_delta(
                view.definition, frozenset([shape.relation]), source_scope
            )
            derived = derived.map(lambda e: substitute(e, specialize))
            derived = derived.map(lambda e: fold_occurrences(e, folds))
            derived = derived.map(lambda e: simplify(e, extended))
            reads |= derived.inserts.relation_names()
            reads |= derived.deletes.relation_names()
        read_sets.append((shape, tuple(sorted(reads & sources))))
    return DataflowReport(tuple(sorted(sources)), tuple(read_sets))


# ----------------------------------------------------------------------
# The runtime sanitizer (REPRO_CHECK_INVARIANTS=1)
# ----------------------------------------------------------------------


def sanitizer_enabled() -> bool:
    """Whether the ``REPRO_CHECK_INVARIANTS`` sanitizer mode is on.

    Any value other than unset/empty/``0`` enables it. Read once per
    :class:`~repro.core.warehouse.Warehouse` construction, never on the
    evaluator hot path (``scripts/check_hotpath.py`` rule R5 enforces
    the latter).
    """
    return os.environ.get(SANITIZER_ENV, "") not in ("", "0")


def static_refresh_reads(
    spec: WarehouseSpec, updated: Iterable[str]
) -> FrozenSet[str]:
    """The static over-approximation of one refresh's source reads.

    The union of source relations referenced by the (unspecialized)
    maintenance plan for ``updated`` and by the inverses evaluated during
    update normalization. Every source relation a refresh can legitimately
    read is in this set; for a complement-carrying spec it is empty.
    """
    sources = frozenset(spec.catalog.relation_names())
    plan = maintenance_expressions(spec, updated)
    reads: Set[str] = set()
    for delta in plan.expressions.values():
        reads |= delta.inserts.relation_names()
        reads |= delta.deletes.relation_names()
    for relation in plan.updated:
        reads |= spec.inverses[relation].relation_names()
    return frozenset(reads) & sources


def check_refresh_reads(
    spec: WarehouseSpec, updated: Iterable[str], root: "Span"
) -> None:
    """Cross-check a refresh trace against the static read set.

    ``root`` is the refresh's root :class:`~repro.obs.trace.Span`. Raises
    :class:`~repro.errors.WarehouseError` if the trace read a source
    relation the static analysis says the plan never consults — either the
    engine or the analysis is wrong, and silently continuing would hide a
    broken independence guarantee. (The converse — static mentions, runtime
    skipped, e.g. served from cache — is fine: the static set is an
    over-approximation.)
    """
    from repro.obs.explain import source_relations_read

    static = static_refresh_reads(spec, updated)
    runtime = source_relations_read(root, spec.catalog.relation_names())
    extra = sorted(set(runtime) - static)
    if extra:
        raise WarehouseError(
            f"sanitizer ({SANITIZER_ENV}=1): refresh read source relation(s) "
            f"{extra} outside the static read set {sorted(static)} — "
            "the maintenance engine and the dataflow analysis disagree"
        )
