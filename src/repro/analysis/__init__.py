"""Static analysis of warehouse specifications (deploy-time checking).

The paper's guarantees — Propositions 2.1/2.2, Theorems 2.2 and 4.1 — hold
only when a warehouse specification satisfies structural preconditions: PSJ
form, declared keys, covers from ``V_K^ind``, acyclic INDs. This package
decides those preconditions *statically*, before any data flows:

* :mod:`~repro.analysis.typecheck` — a schema-aware typechecker for algebra
  expressions (``E01xx``), the diagnostic twin of the runtime's
  :meth:`~repro.algebra.expressions.Expression.attributes`;
* :mod:`~repro.analysis.lint` — the paper-semantics lint pass over view
  sets and specs (``W00xx``);
* :mod:`~repro.analysis.satisfiability` — static condition analysis;
* :mod:`~repro.analysis.report` / :mod:`~repro.analysis.specfile` — the
  ``python -m repro lint`` engine and its JSON spec-file format.

The diagnostic catalog is documented in ``docs/lint.md``; every code has a
stable meaning, a paper reference, and a triggering test.
"""

from repro.analysis.diagnostics import (
    CATALOG,
    Diagnostic,
    Severity,
    SourceSpan,
    filter_ignored,
    has_errors,
    max_severity,
    sort_diagnostics,
)
from repro.analysis.lint import lint_spec, lint_views, psj_parts
from repro.analysis.report import (
    FileReport,
    exit_code,
    lint_file,
    render_json,
    render_text,
)
from repro.analysis.satisfiability import (
    tautological_conjuncts,
    unsatisfiable_reason,
)
from repro.analysis.specfile import LintTarget, load_target
from repro.analysis.typecheck import typecheck_aggregate, typecheck_expression

__all__ = [
    "CATALOG",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "FileReport",
    "LintTarget",
    "exit_code",
    "filter_ignored",
    "has_errors",
    "lint_file",
    "lint_spec",
    "lint_views",
    "load_target",
    "max_severity",
    "psj_parts",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "tautological_conjuncts",
    "typecheck_aggregate",
    "typecheck_expression",
    "unsatisfiable_reason",
]
