"""Static analysis of warehouse specifications (deploy-time checking).

The paper's guarantees — Propositions 2.1/2.2, Theorems 2.2 and 4.1 — hold
only when a warehouse specification satisfies structural preconditions: PSJ
form, declared keys, covers from ``V_K^ind``, acyclic INDs. This package
decides those preconditions *statically*, before any data flows:

* :mod:`~repro.analysis.typecheck` — a schema-aware typechecker for algebra
  expressions (``E01xx``), the diagnostic twin of the runtime's
  :meth:`~repro.algebra.expressions.Expression.attributes`;
* :mod:`~repro.analysis.lint` — the paper-semantics lint pass over view
  sets and specs (``W00xx``);
* :mod:`~repro.analysis.satisfiability` — static condition analysis;
* :mod:`~repro.analysis.report` / :mod:`~repro.analysis.specfile` — the
  ``python -m repro lint`` engine and its JSON spec-file format;
* :mod:`~repro.analysis.prover` — the ``python -m repro prove`` decision
  layer: symbolic inversion certificates, bounded counterexample search
  (:mod:`~repro.analysis.counterexample`), and the plan-dataflow analysis
  (:mod:`~repro.analysis.dataflow`) with its ``REPRO_CHECK_INVARIANTS``
  runtime sanitizer;
* :mod:`~repro.analysis.query` — the ``python -m repro prove-query``
  decision layer: per-query translation certificates (Theorem 3.1),
  answer-divergence witnesses, the kernel cost model, and the
  ``REPRO_CHECK_QUERIES`` runtime sanitizer, with the ``W02xx`` lint
  checks in :mod:`~repro.analysis.query_lint`.

The diagnostic catalog is documented in ``docs/lint.md``; every code has a
stable meaning, a paper reference, and a triggering test.
"""

from repro.analysis.diagnostics import (
    CATALOG,
    Diagnostic,
    Severity,
    SourceSpan,
    filter_ignored,
    has_errors,
    max_severity,
    sort_diagnostics,
)
from repro.analysis.counterexample import (
    SearchOutcome,
    Witness,
    search_counterexample,
    verify_witness,
)
from repro.analysis.dataflow import (
    DataflowReport,
    UpdateShape,
    check_refresh_reads,
    sanitizer_enabled,
    spec_read_sets,
    static_refresh_reads,
    views_only_read_sets,
)
from repro.analysis.lint import lint_spec, lint_views, psj_parts
from repro.analysis.prover import (
    ProofResult,
    build_certificate,
    check_certificate,
    prove_exit_code,
    prove_file,
    prove_target,
)
from repro.analysis.query import (
    CostEstimate,
    QueryProofResult,
    QueryVerdict,
    QueryWitness,
    build_query_certificate,
    check_query_certificate,
    check_translation_reads,
    estimate_cost,
    prove_queries_file,
    prove_queries_target,
    queries_enabled,
    query_exit_code,
    search_query_counterexample,
    verify_query_witness,
)
from repro.analysis.query_lint import lint_queries
from repro.analysis.report import (
    FileReport,
    display_path,
    exit_code,
    lint_file,
    render_json,
    render_text,
)
from repro.analysis.satisfiability import (
    tautological_conjuncts,
    unsatisfiable_reason,
)
from repro.analysis.specfile import (
    LintTarget,
    ProverOptions,
    QueryOptions,
    QuerySpec,
    load_target,
)
from repro.analysis.typecheck import typecheck_aggregate, typecheck_expression

__all__ = [
    "CATALOG",
    "CostEstimate",
    "DataflowReport",
    "Diagnostic",
    "FileReport",
    "LintTarget",
    "ProofResult",
    "ProverOptions",
    "QueryOptions",
    "QueryProofResult",
    "QuerySpec",
    "QueryVerdict",
    "QueryWitness",
    "SearchOutcome",
    "Severity",
    "SourceSpan",
    "UpdateShape",
    "Witness",
    "build_certificate",
    "build_query_certificate",
    "check_certificate",
    "check_query_certificate",
    "check_refresh_reads",
    "check_translation_reads",
    "display_path",
    "estimate_cost",
    "exit_code",
    "filter_ignored",
    "has_errors",
    "lint_file",
    "lint_queries",
    "lint_spec",
    "lint_views",
    "load_target",
    "max_severity",
    "prove_exit_code",
    "prove_file",
    "prove_queries_file",
    "prove_queries_target",
    "prove_target",
    "psj_parts",
    "queries_enabled",
    "query_exit_code",
    "render_json",
    "render_text",
    "sanitizer_enabled",
    "search_counterexample",
    "search_query_counterexample",
    "sort_diagnostics",
    "spec_read_sets",
    "static_refresh_reads",
    "tautological_conjuncts",
    "typecheck_aggregate",
    "typecheck_expression",
    "unsatisfiable_reason",
    "verify_query_witness",
    "verify_witness",
    "views_only_read_sets",
]
