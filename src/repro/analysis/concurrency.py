"""The shard-independence prover behind ``python -m repro prove-sharding``.

PR 8's sharded integrator rests on three claims that were previously
enforced only by convention and dynamic tests. This module decides them
statically, in the same PROVED/REFUTED/UNKNOWN shape as the independence
prover (:mod:`repro.analysis.prover`), and emits self-validating JSON
certificates hashed with the same canonical digest as the PR-7 plan cache
(:mod:`repro.analysis.digest`):

* **Assembly / co-partitioning** — :func:`classify_assembly` walks every
  warehouse definition over the *joint* slices of all routed relations and
  establishes, per relation, one of three structural identities:
  replicated (independent of routed facts), union-assembled
  (``E(∪ᵢRᵢ) = ∪ᵢE(Rᵢ)``), or intersection-assembled
  (``K − ∪ᵢBᵢ = ∩ᵢ(K − Bᵢ)``, the Theorem 2.2 complement shape). Unlike
  the single-routing walk it generalizes, a view joining *two* routed
  relations is admitted when the join equates their routing attributes
  and the two routings are **co-partitioned**
  (:meth:`repro.core.routing.ShardRouting.compatible_with`): equal routing
  values then land on the same shard, so same-shard evaluation covers
  every joining pair. Non-co-partitioned layouts are *refutable*: a
  bounded replay search (:func:`search_sharding_counterexample`) exhibits
  a tiny source state whose global image no per-shard assembly — union,
  intersection, or any single shard — reconstructs.

* **Batch commutativity** — concurrent workers fold per-source batches
  with ``Update.compose`` and interleave freely on disjoint shards, which
  is only sound if batch order cannot matter.
  :func:`decide_update_commutativity` decides order-independence for a
  concrete update pair by comparing the canonical ``(deletes, inserts)``
  normal forms of both compositions and, when they differ, constructs a
  *minimal interleaving counterexample*: a start state of at most one row
  plus the two orders' divergent end states.
  :func:`decide_source_commutativity` lifts this to declared source
  ownership — sources owning disjoint relations always commute; shared
  ownership is refuted with the canonical insert/delete interleaving.

* **Footprints** — :func:`shape_footprints` lifts the PR-4 per-update-shape
  dataflow (:mod:`repro.analysis.dataflow`) from source *reads* to
  warehouse *writes*: which stored relations each update shape's
  maintenance plan can change, and whether the shape routes to a single
  shard or broadcasts. :func:`write_footprint` is the per-refresh form the
  ``REPRO_CHECK_RACES=1`` sanitizer (:mod:`repro.analysis.races`)
  cross-checks at runtime.

Certificates are digest-compatible with the compiled-plan cache:
:func:`sharding_certificate_digest` is the same function as
:func:`repro.compiler.certificate.certificate_digest`, and
:meth:`repro.core.sharding.ShardedWarehouse.recertify` evicts compiled
plans whenever the sharding digest changes — a refuted commutativity claim
therefore invalidates every compiled refresh closure.
"""

from __future__ import annotations

import itertools
import json
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ReproError, WarehouseError
from repro.algebra.evaluator import evaluate_all
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.parser import parse
from repro.schema.catalog import Catalog
from repro.storage.relation import Relation
from repro.core.complement import WarehouseSpec, specify
from repro.core.maintenance import maintenance_expressions
from repro.core.routing import ShardRouting
from repro.analysis.dataflow import KINDS, UpdateShape
from repro.analysis.digest import canonical_digest
from repro.analysis.report import display_path
from repro.analysis.specfile import LintTarget, RoutingSpec, load_target

SHARDING_CERTIFICATE_VERSION = 1

PROVED = "PROVED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"
#: Spec files without a ``"sharding"`` section: nothing to decide.
UNSHARDED = "UNSHARDED"

# How a warehouse relation's global image assembles from its shard images.
ASSEMBLE_REPLICATED = "replicated"  # independent of routed facts: any shard
ASSEMBLE_UNION = "union"  # E(∪ᵢRᵢ) = ∪ᵢ E(Rᵢ)
ASSEMBLE_INTERSECT = "intersect"  # E(∪ᵢRᵢ) = ∩ᵢ E(Rᵢ)

_REPLAY_SEEDS = (0, 1, 2)
_REPLAY_ROWS = 12
_REPLAY_DOMAIN = 8
_SEARCH_BUDGET = 5000

Rows = Tuple[Tuple[object, ...], ...]
Scope = Mapping[str, Tuple[str, ...]]


def _sort_key(value: object) -> Tuple[str, str]:
    return (type(value).__name__, repr(value))


def _row_key(row: Tuple[object, ...]) -> Tuple[Tuple[str, str], ...]:
    return tuple(_sort_key(value) for value in row)


def _sorted_rows(rows: Iterable[Tuple[object, ...]]) -> Rows:
    return tuple(sorted(rows, key=_row_key))


def _json_rows(rows: Iterable[Tuple[object, ...]]) -> List[List[object]]:
    return [list(row) for row in _sorted_rows(rows)]


# ----------------------------------------------------------------------
# Assembly classification and co-partitioning
# ----------------------------------------------------------------------


class UnshardableError(WarehouseError):
    """A layout the slice analysis cannot admit.

    ``refutable`` marks failures where cross-shard information is
    *provably* lost (e.g. a two-routed join that is not co-partitioned) —
    the prover then runs the bounded replay search for a concrete
    counterexample. Non-refutable failures (unsupported operators, lost
    rootedness) are mere absence of proof and decide UNKNOWN.
    """

    def __init__(self, message: str, refutable: bool = False) -> None:
        super().__init__(message)
        self.refutable = refutable


class SliceAnalysis(NamedTuple):
    """Result of the decomposability walk for one subexpression.

    ``assemble`` — one of the ``ASSEMBLE_*`` modes; ``rooted`` — for
    union-mode subtrees, the output attribute names (after renames and
    projections) that still carry a routing value for *every* tuple the
    subtree can produce, under a single consistent value→shard map;
    ``contributors`` — the routed relations the subtree depends on.
    """

    assemble: str
    rooted: FrozenSet[str]
    contributors: FrozenSet[str]


class AssemblyReport(NamedTuple):
    """The prover's admission verdict for one spec + routing layout.

    ``assembly`` holds only the non-replicated warehouse relations (absent
    means replicated, matching :class:`ShardedSnapshot` defaults);
    ``contributors`` the routed relations each depends on;
    ``co_partitioned`` the groups of two-or-more routed relations some
    definition combines — admitted precisely because their routings are
    pairwise compatible.
    """

    assembly: Dict[str, str]
    contributors: Dict[str, Tuple[str, ...]]
    co_partitioned: Tuple[Tuple[str, ...], ...]

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (the certificate's ``assembly`` facts)."""
        return {
            "assembly": dict(sorted(self.assembly.items())),
            "contributors": {
                name: list(relations)
                for name, relations in sorted(self.contributors.items())
            },
            "co_partitioned": [list(group) for group in self.co_partitioned],
        }


def _names(relations: Iterable[str]) -> str:
    listed = sorted(set(relations))
    if len(listed) == 1:
        return repr(listed[0])
    return " and ".join(repr(name) for name in listed)


def analyze_expression(
    expression: Expression,
    routings: Mapping[str, ShardRouting],
    scope: Scope,
    context: str,
) -> SliceAnalysis:
    """Decide how ``expression`` over joint slices assembles globally.

    The slices are *simultaneous*: shard ``i`` holds slice ``i`` of every
    routed relation plus the unrouted relations in full. For disjoint
    slices the walk establishes, per subtree, one of three structural
    identities: independence of every routed relation (*replicated*),
    ``E(∪ᵢRᵢ) = ∪ᵢE(Rᵢ)`` (*union* — PSJ operators distribute over union
    in each argument; two slice-dependent operands may only meet on a
    *rooted* attribute, one guaranteed to carry a routing value under one
    consistent value→shard map, so tuples from different slices never
    combine), or ``E(∪ᵢRᵢ) = ∩ᵢE(Rᵢ)`` (*intersect* — the ``K − π(…R…)``
    shape of Theorem 2.2 complements: subtracting a growing union flips
    union-assembly into intersection-assembly).

    Where two *different* routed relations meet, rootedness additionally
    requires their routings to be co-partitioned
    (:meth:`ShardRouting.compatible_with`); a rooted-but-incompatible join
    is refutable — equal join values shard apart, so same-shard evaluation
    misses the pair. Raises :class:`UnshardableError` where no identity
    can be established.
    """

    def fail(
        contributors: Iterable[str], reason: str, refutable: bool = False
    ) -> UnshardableError:
        return UnshardableError(
            f"cannot shard {_names(contributors)}: warehouse relation "
            f"{context!r} {reason}, so its global image is not assemblable "
            "from shard images",
            refutable=refutable,
        )

    def routing_attr(contributors: FrozenSet[str]) -> str:
        listed = sorted(routings[name].attribute for name in contributors)
        return listed[0]

    def compatible(left: FrozenSet[str], right: FrozenSet[str]) -> Optional[str]:
        """``None`` if every cross pair is co-partitioned, else a reason."""
        for a in sorted(left):
            for b in sorted(right):
                if a != b and not routings[a].compatible_with(routings[b]):
                    return (
                        f"combines co-routed relations {a!r} and {b!r} whose "
                        "routings partition the shared attribute differently "
                        "(not co-partitioned)"
                    )
        return None

    def walk(node: Expression) -> SliceAnalysis:
        if isinstance(node, RelationRef):
            routing = routings.get(node.name)
            if routing is not None:
                return SliceAnalysis(
                    ASSEMBLE_UNION,
                    frozenset((routing.attribute,)),
                    frozenset((node.name,)),
                )
            return SliceAnalysis(ASSEMBLE_REPLICATED, frozenset(), frozenset())
        if isinstance(node, Empty):
            return SliceAnalysis(ASSEMBLE_REPLICATED, frozenset(), frozenset())
        if isinstance(node, Select):
            # Selection commutes with both union and intersection.
            return walk(node.child)
        if isinstance(node, Project):
            inner = walk(node.child)
            if inner.assemble == ASSEMBLE_INTERSECT:
                # Projection does not commute with intersection.
                raise fail(
                    inner.contributors,
                    "projects an intersection-assembled image of "
                    f"{_names(inner.contributors)}",
                )
            return SliceAnalysis(
                inner.assemble,
                inner.rooted & frozenset(node.attrs),
                inner.contributors,
            )
        if isinstance(node, Rename):
            inner = walk(node.child)
            mapping = dict(node.mapping)
            return SliceAnalysis(
                inner.assemble,
                frozenset(mapping.get(name, name) for name in inner.rooted),
                inner.contributors,
            )
        if isinstance(node, Join):
            left, right = walk(node.left), walk(node.right)
            contributors = left.contributors | right.contributors
            kinds = {left.assemble, right.assemble}
            if kinds == {ASSEMBLE_REPLICATED}:
                return SliceAnalysis(ASSEMBLE_REPLICATED, frozenset(), frozenset())
            if ASSEMBLE_INTERSECT in kinds:
                # A natural-join tuple determines each operand's sub-tuple
                # (set semantics), so join commutes with intersection —
                # but only against a slice-independent other side.
                if kinds == {ASSEMBLE_INTERSECT, ASSEMBLE_REPLICATED}:
                    return SliceAnalysis(
                        ASSEMBLE_INTERSECT, frozenset(), contributors
                    )
                raise fail(
                    contributors,
                    "joins an intersection-assembled image of "
                    f"{_names(contributors)} with a slice-dependent side",
                )
            if left.assemble == ASSEMBLE_UNION and right.assemble == ASSEMBLE_UNION:
                shared = frozenset(node.left.attributes(scope)) & frozenset(
                    node.right.attributes(scope)
                )
                if not (left.rooted & right.rooted & shared):
                    raise fail(
                        contributors,
                        f"joins two subexpressions over {_names(contributors)} "
                        "without equating the routing attribute "
                        f"{routing_attr(contributors)!r}",
                        refutable=True,
                    )
                problem = compatible(left.contributors, right.contributors)
                if problem is not None:
                    raise fail(contributors, problem, refutable=True)
                return SliceAnalysis(
                    ASSEMBLE_UNION, left.rooted | right.rooted, contributors
                )
            rooted = left.rooted if left.assemble == ASSEMBLE_UNION else right.rooted
            return SliceAnalysis(ASSEMBLE_UNION, rooted, contributors)
        if isinstance(node, Union):
            left, right = walk(node.left), walk(node.right)
            contributors = left.contributors | right.contributors
            kinds = {left.assemble, right.assemble}
            if ASSEMBLE_INTERSECT in kinds:
                raise fail(
                    contributors,
                    "unions an intersection-assembled image of "
                    f"{_names(contributors)}",
                )
            if kinds == {ASSEMBLE_REPLICATED}:
                return SliceAnalysis(ASSEMBLE_REPLICATED, frozenset(), frozenset())
            if kinds == {ASSEMBLE_UNION}:
                if not (left.rooted & right.rooted):
                    raise fail(
                        contributors,
                        f"unions two subexpressions over {_names(contributors)} "
                        "that do not both retain the routing attribute "
                        f"{routing_attr(contributors)!r}",
                    )
                # Set union distributes over simultaneous slices
                # unconditionally; rootedness additionally needs one
                # consistent value→shard map across both sides.
                rooted = (
                    left.rooted & right.rooted
                    if compatible(left.contributors, right.contributors) is None
                    else frozenset()
                )
                return SliceAnalysis(ASSEMBLE_UNION, rooted, contributors)
            # Union with a slice-independent side replicates that side into
            # every shard image — still union-assembled (sets dedup), but
            # the result no longer determines a tuple's shard (not rooted).
            return SliceAnalysis(ASSEMBLE_UNION, frozenset(), contributors)
        if isinstance(node, Difference):
            left, right = walk(node.left), walk(node.right)
            contributors = left.contributors | right.contributors
            la, ra = left.assemble, right.assemble
            if la == ASSEMBLE_REPLICATED and ra == ASSEMBLE_REPLICATED:
                return SliceAnalysis(ASSEMBLE_REPLICATED, frozenset(), frozenset())
            if la == ASSEMBLE_UNION and ra == ASSEMBLE_REPLICATED:
                # (∪ᵢAᵢ) − K = ∪ᵢ(Aᵢ − K), unconditionally.
                return SliceAnalysis(ASSEMBLE_UNION, left.rooted, contributors)
            if la == ASSEMBLE_UNION and ra == ASSEMBLE_UNION:
                if not (left.rooted & right.rooted):
                    raise fail(
                        contributors,
                        "subtracts between subexpressions over "
                        f"{_names(contributors)} that do not both retain the "
                        f"routing attribute {routing_attr(contributors)!r}",
                    )
                # Same-shard cancellation: a tuple in Aᵢ may only be
                # cancelled by the matching Bᵢ, which needs one consistent
                # value→shard map across both sides.
                problem = compatible(left.contributors, right.contributors)
                if problem is not None:
                    raise fail(contributors, problem, refutable=True)
                return SliceAnalysis(
                    ASSEMBLE_UNION, left.rooted & right.rooted, contributors
                )
            if la == ASSEMBLE_REPLICATED and ra == ASSEMBLE_UNION:
                # K − (∪ᵢBᵢ) = ∩ᵢ(K − Bᵢ): the Theorem 2.2 complement
                # shape for relations joined against the routed one.
                return SliceAnalysis(ASSEMBLE_INTERSECT, frozenset(), contributors)
            if la == ASSEMBLE_INTERSECT and ra == ASSEMBLE_REPLICATED:
                # (∩ᵢAᵢ) − K = ∩ᵢ(Aᵢ − K).
                return SliceAnalysis(ASSEMBLE_INTERSECT, frozenset(), contributors)
            if la == ASSEMBLE_REPLICATED and ra == ASSEMBLE_INTERSECT:
                # K − (∩ᵢBᵢ) = ∪ᵢ(K − Bᵢ), but slices overlap: not rooted.
                return SliceAnalysis(ASSEMBLE_UNION, frozenset(), contributors)
            raise fail(
                contributors,
                f"subtracts incompatibly-assembled images of {_names(contributors)}",
            )
        raise fail(
            sorted(routings), f"uses unsupported operator {type(node).__name__}"
        )

    return walk(expression)


def classify_assembly(
    definitions: Mapping[str, Expression],
    scope: Scope,
    routings: Mapping[str, ShardRouting],
) -> AssemblyReport:
    """Classify every warehouse relation's assembly under ``routings``.

    Raises :class:`UnshardableError` (a :class:`WarehouseError`) when any
    definition admits no structural identity — ``refutable`` marks layouts
    where the failure is a provable loss, not just absence of proof.
    """
    assembly: Dict[str, str] = {}
    contributors: Dict[str, Tuple[str, ...]] = {}
    groups: Set[Tuple[str, ...]] = set()
    for name in sorted(definitions):
        analysis = analyze_expression(definitions[name], routings, scope, name)
        if analysis.assemble == ASSEMBLE_REPLICATED:
            continue
        assembly[name] = analysis.assemble
        contributors[name] = tuple(sorted(analysis.contributors))
        if len(analysis.contributors) >= 2:
            groups.add(tuple(sorted(analysis.contributors)))
    return AssemblyReport(assembly, contributors, tuple(sorted(groups)))


# ----------------------------------------------------------------------
# Per-update-shape footprints
# ----------------------------------------------------------------------


class ShapeFootprint(NamedTuple):
    """One update shape's static refresh footprint over warehouse relations.

    ``routed`` — whether the shape's deltas route to a single shard (its
    relation is partitioned) or broadcast to all shards; ``reads`` /
    ``writes`` — the warehouse relations the shape's maintenance plan
    references / can change. The runtime sanitizer
    (:mod:`repro.analysis.races`) checks actual refresh writes against
    ``writes``.
    """

    shape: UpdateShape
    routed: bool
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (the certificate's ``footprints`` entry)."""
        return {
            "routed": self.routed,
            "reads": list(self.reads),
            "writes": list(self.writes),
        }


def _plan_writes(spec: WarehouseSpec, updated: Sequence[str], **kinds: bool) -> Tuple[Set[str], Set[str]]:
    plan = maintenance_expressions(spec, updated, **kinds)
    reads: Set[str] = set()
    writes: Set[str] = set()
    for name, delta in plan.expressions.items():
        if not (isinstance(delta.inserts, Empty) and isinstance(delta.deletes, Empty)):
            writes.add(name)
        reads |= delta.inserts.relation_names()
        reads |= delta.deletes.relation_names()
    return reads, writes


def shape_footprints(
    spec: WarehouseSpec, routings: Mapping[str, ShardRouting]
) -> Tuple[ShapeFootprint, ...]:
    """The per-update-shape read/write footprints for one spec + layout."""
    warehouse_names = frozenset(spec.warehouse_names())
    out: List[ShapeFootprint] = []
    for relation in spec.catalog.relation_names():
        for kind in KINDS:
            reads, writes = _plan_writes(
                spec,
                [relation],
                insert_only=kind == "insert",
                delete_only=kind == "delete",
            )
            # Normalizing the reported update evaluates the updated
            # relation's inverse; its references are read too.
            reads |= spec.inverses[relation].relation_names()
            out.append(
                ShapeFootprint(
                    UpdateShape(relation, kind),
                    relation in routings,
                    tuple(sorted(reads & warehouse_names)),
                    tuple(sorted(writes)),
                )
            )
    return tuple(out)


def write_footprint(spec: WarehouseSpec, updated: Iterable[str]) -> FrozenSet[str]:
    """The warehouse relations a refresh for ``updated`` can change.

    The static over-approximation the ``REPRO_CHECK_RACES=1`` sanitizer
    compares actual per-shard refresh writes against: a warehouse relation
    is in the footprint iff its maintenance delta for this update-relation
    set is not statically empty.
    """
    _, writes = _plan_writes(spec, sorted(set(updated)))
    return frozenset(writes)


# ----------------------------------------------------------------------
# Update.compose commutativity
# ----------------------------------------------------------------------


class InterleavingWitness(NamedTuple):
    """A minimal counterexample to batch commutativity on one relation.

    ``start`` is a state of at most one row; applying ``first`` then
    ``second`` versus ``second`` then ``first`` ends in the two recorded —
    different — states. :func:`replay_interleaving` recomputes both ends
    from the inputs, so the witness is independently checkable.
    """

    relation: str
    attributes: Tuple[str, ...]
    start: Rows
    first_inserts: Rows
    first_deletes: Rows
    second_inserts: Rows
    second_deletes: Rows
    first_then_second: Rows
    second_then_first: Rows

    def to_dict(self) -> Dict[str, object]:
        """A deterministic JSON-ready rendering."""
        return {
            "kind": "interleaving",
            "relation": self.relation,
            "attributes": list(self.attributes),
            "start": _json_rows(self.start),
            "first": {
                "inserts": _json_rows(self.first_inserts),
                "deletes": _json_rows(self.first_deletes),
            },
            "second": {
                "inserts": _json_rows(self.second_inserts),
                "deletes": _json_rows(self.second_deletes),
            },
            "first_then_second": _json_rows(self.first_then_second),
            "second_then_first": _json_rows(self.second_then_first),
        }

    def describe(self) -> str:
        """Human-readable one-relation interleaving trace."""
        return (
            f"{self.relation}: from {sorted(self.start)} — "
            f"first;second -> {sorted(self.first_then_second)}, "
            f"second;first -> {sorted(self.second_then_first)}"
        )


def _apply_rows(
    state: FrozenSet[Tuple[object, ...]],
    deletes: Iterable[Tuple[object, ...]],
    inserts: Iterable[Tuple[object, ...]],
) -> FrozenSet[Tuple[object, ...]]:
    return (state - frozenset(deletes)) | frozenset(inserts)


def replay_interleaving(witness: InterleavingWitness) -> Tuple[Rows, Rows]:
    """Recompute both interleaving orders' end states from the witness."""
    start = frozenset(witness.start)
    one = _apply_rows(
        _apply_rows(start, witness.first_deletes, witness.first_inserts),
        witness.second_deletes,
        witness.second_inserts,
    )
    other = _apply_rows(
        _apply_rows(start, witness.second_deletes, witness.second_inserts),
        witness.first_deletes,
        witness.first_inserts,
    )
    return _sorted_rows(one), _sorted_rows(other)


def _chain(
    steps: Sequence[Tuple[FrozenSet[Tuple[object, ...]], FrozenSet[Tuple[object, ...]]]]
) -> Tuple[FrozenSet[Tuple[object, ...]], FrozenSet[Tuple[object, ...]]]:
    """Fold ``(deletes, inserts)`` steps into one ``s ↦ (s − D) ∪ I`` map."""
    deletes: FrozenSet[Tuple[object, ...]] = frozenset()
    inserts: FrozenSet[Tuple[object, ...]] = frozenset()
    for step_deletes, step_inserts in steps:
        deletes = deletes | step_deletes
        inserts = (inserts - step_deletes) | step_inserts
    # Canonical form: a delete immediately re-inserted never removes.
    return deletes - inserts, inserts


def decide_update_commutativity(
    first: Mapping[str, Tuple[Rows, Rows]],
    second: Mapping[str, Tuple[Rows, Rows]],
    attributes: Mapping[str, Tuple[str, ...]],
) -> Optional[InterleavingWitness]:
    """Decide whether two updates commute; a witness refutes, ``None`` proves.

    Updates are given per relation as ``(inserts, deletes)`` row tuples.
    Two updates commute iff, per relation, both composition orders have
    the same canonical ``s ↦ (s − D) ∪ I`` normal form — updates touching
    disjoint relations therefore always commute (the async integrator's
    per-source precondition). When the normal forms differ the
    distinguishing start state is at most one row: the empty state when
    the insert sets differ, a single disputed row when only the effective
    delete sets do.
    """
    for relation in sorted(set(first) | set(second)):
        f_ins, f_del = first.get(relation, ((), ()))
        s_ins, s_del = second.get(relation, ((), ()))
        step_f = (frozenset(f_del), frozenset(f_ins))
        step_s = (frozenset(s_del), frozenset(s_ins))
        d12, i12 = _chain([step_f, step_s])
        d21, i21 = _chain([step_s, step_f])
        if d12 == d21 and i12 == i21:
            continue
        if i12 != i21:
            start: Tuple[Tuple[object, ...], ...] = ()
        else:
            disputed = sorted(d12 ^ d21, key=_row_key)[0]
            start = (disputed,)
        base = frozenset(start)
        end12 = _apply_rows(_apply_rows(base, f_del, f_ins), s_del, s_ins)
        end21 = _apply_rows(_apply_rows(base, s_del, s_ins), f_del, f_ins)
        return InterleavingWitness(
            relation=relation,
            attributes=attributes.get(relation, ()),
            start=_sorted_rows(start),
            first_inserts=_sorted_rows(f_ins),
            first_deletes=_sorted_rows(f_del),
            second_inserts=_sorted_rows(s_ins),
            second_deletes=_sorted_rows(s_del),
            first_then_second=_sorted_rows(end12),
            second_then_first=_sorted_rows(end21),
        )
    return None


class CommutativityResult(NamedTuple):
    """One source pair's commutativity verdict."""

    pair: Tuple[str, str]
    shared: Tuple[str, ...]
    witness: Optional[InterleavingWitness]

    @property
    def commutes(self) -> bool:
        """Whether every batch interleaving of this pair is order-free."""
        return self.witness is None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (the certificate's ``pairs`` entry)."""
        out: Dict[str, object] = {
            "pair": list(self.pair),
            "shared": list(self.shared),
            "verdict": "commute" if self.commutes else "refuted",
        }
        if self.witness is not None:
            out["witness"] = self.witness.to_dict()
        return out


def default_ownership(catalog: Catalog) -> Dict[str, Tuple[str, ...]]:
    """The integrator's default: one source owning each base relation."""
    return {
        f"src_{name}": (name,) for name in catalog.relation_names()
    }


def decide_source_commutativity(
    catalog: Catalog, ownership: Mapping[str, Sequence[str]]
) -> Tuple[CommutativityResult, ...]:
    """Decide, per source pair, whether their batches always commute.

    Sources owning disjoint relations commute for *every* batch pair
    (``Update.compose`` on disjoint relations is symmetric). A shared
    relation is refuted with the canonical minimal interleaving: one
    source inserts a row the other deletes, and the two orders diverge.
    """
    results: List[CommutativityResult] = []
    names = sorted(ownership)
    for left, right in itertools.combinations(names, 2):
        shared = tuple(sorted(set(ownership[left]) & set(ownership[right])))
        witness: Optional[InterleavingWitness] = None
        if shared:
            relation = shared[0]
            attributes = tuple(catalog[relation].attributes)
            row = tuple(0 for _ in attributes)
            witness = decide_update_commutativity(
                {relation: ((row,), ())},
                {relation: ((), (row,))},
                {relation: attributes},
            )
            assert witness is not None  # insert vs delete of one row
        results.append(CommutativityResult((left, right), shared, witness))
    return tuple(results)


# ----------------------------------------------------------------------
# Bounded replay search for refuted layouts
# ----------------------------------------------------------------------


class ShardingWitness(NamedTuple):
    """A source state whose global image no per-shard assembly rebuilds.

    ``relation`` is the warehouse relation that diverges: evaluated over
    the global state its image is ``global_rows``, but the union,
    intersection, and single-shard assemblies of its per-slice images all
    differ from it — replaying updates through per-shard pipelines from
    this state diverges from the unsharded reference no matter how the
    shard images are recombined.
    """

    relation: str
    attributes: Dict[str, Tuple[str, ...]]
    state: Dict[str, Rows]
    global_rows: Rows
    shard_rows: Tuple[Rows, ...]
    union_rows: Rows
    intersect_rows: Rows
    states_examined: int

    def to_dict(self) -> Dict[str, object]:
        """A deterministic JSON-ready rendering."""
        return {
            "kind": "sharding",
            "relation": self.relation,
            "attributes": {
                name: list(attrs) for name, attrs in sorted(self.attributes.items())
            },
            "state": {
                name: _json_rows(rows) for name, rows in sorted(self.state.items())
            },
            "global": _json_rows(self.global_rows),
            "shards": [_json_rows(rows) for rows in self.shard_rows],
            "union": _json_rows(self.union_rows),
            "intersect": _json_rows(self.intersect_rows),
            "states_examined": self.states_examined,
        }

    def describe(self) -> str:
        """Human-readable summary of the divergence."""
        lines = [
            f"{name}: {sorted(rows)}" for name, rows in sorted(self.state.items())
        ]
        lines.append(
            f"=> {self.relation}: global {sorted(self.global_rows)}, "
            f"per-shard union {sorted(self.union_rows)}, "
            f"intersect {sorted(self.intersect_rows)}"
        )
        return "\n".join(lines)


def _probe_values(routings: Mapping[str, ShardRouting]) -> List[object]:
    """Candidate routing values straddling every boundary and hash bucket."""
    values: List[object] = []
    for name in sorted(routings):
        routing = routings[name]
        if routing.strategy == "range":
            for bound in routing.boundaries:
                if isinstance(bound, bool):
                    values.append(bound)
                elif isinstance(bound, int):
                    values.extend([bound - 1, bound, bound + 1])
                elif isinstance(bound, str):
                    values.extend(["", bound, bound + "~"])
                else:
                    values.append(bound)
        else:
            values.extend(range(max(4, routing.shards + 2)))
    seen: List[object] = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return seen if seen else [0, 1, 2, 3]


def _slice_state(
    state: Mapping[str, Relation],
    routings: Mapping[str, ShardRouting],
    shards: int,
) -> List[Dict[str, Relation]]:
    slices: List[Dict[str, Relation]] = [dict() for _ in range(shards)]
    for name, relation in state.items():
        routing = routings.get(name)
        if routing is None:
            for part in slices:
                part[name] = relation
            continue
        position = relation.attributes.index(routing.attribute)
        buckets: List[List[Tuple[object, ...]]] = [[] for _ in range(shards)]
        for row in relation.rows:
            buckets[routing.shard_of(row[position])].append(row)
        for index, rows in enumerate(buckets):
            slices[index][name] = Relation(relation.attributes, rows)
    return slices


def _union_rows(images: Sequence[Relation]) -> Relation:
    combined = images[0]
    for image in images[1:]:
        combined = combined.union(image)
    return combined


def _intersect_rows(images: Sequence[Relation]) -> Relation:
    combined = images[0]
    for image in images[1:]:
        combined = combined.intersection(image)
    return combined


def _assemblies_diverge(
    name: str,
    global_image: Relation,
    shard_images: Sequence[Relation],
) -> Optional[Tuple[Relation, Relation]]:
    union = _union_rows(list(shard_images))
    intersect = _intersect_rows(list(shard_images))
    if (
        global_image != union
        and global_image != intersect
        and global_image != shard_images[0]
    ):
        return union, intersect
    return None


def search_sharding_counterexample(
    definitions: Mapping[str, Expression],
    source_attrs: Scope,
    routings: Mapping[str, ShardRouting],
    budget: int = _SEARCH_BUDGET,
) -> Optional[ShardingWitness]:
    """Search tiny source states for an unassemblable warehouse image.

    Enumerates one-row-per-relation states whose routing and join
    attributes range over boundary-straddling probe values, evaluates
    every warehouse definition globally and per shard, and returns the
    first state where some relation's global image differs from *all*
    three assemblies (union, intersection, single shard). Deterministic:
    same inputs, same witness — refuted certificates can be golden-pinned.
    """
    shards = next(iter(routings.values())).shards if routings else 1
    referenced: Set[str] = set()
    for expression in definitions.values():
        referenced |= expression.relation_names() & set(source_attrs)
    candidates = sorted(referenced)
    if not candidates:
        return None
    probes = _probe_values(routings)
    shared_attrs: Set[str] = set()
    for left, right in itertools.combinations(candidates, 2):
        shared_attrs |= set(source_attrs[left]) & set(source_attrs[right])

    def routable(routing: ShardRouting, value: object) -> bool:
        try:
            routing.shard_of(value)
        except WarehouseError:
            return False
        return True

    per_relation_rows: List[List[Tuple[object, ...]]] = []
    for name in candidates:
        attrs = source_attrs[name]
        routing = routings.get(name)
        pools: List[List[object]] = []
        for attribute in attrs:
            if routing is not None and attribute == routing.attribute:
                pools.append([v for v in probes if routable(routing, v)])
            elif attribute in shared_attrs:
                pools.append(list(probes))
            else:
                pools.append([0])
        per_relation_rows.append([row for row in itertools.product(*pools)])

    examined = 0
    empty = {
        name: Relation(tuple(source_attrs[name]), [])
        for name in source_attrs
        if name not in referenced
    }
    for combination in itertools.product(*per_relation_rows):
        examined += 1
        if examined > budget:
            return None
        state: Dict[str, Relation] = dict(empty)
        for name, row in zip(candidates, combination):
            state[name] = Relation(tuple(source_attrs[name]), [row])
        global_images = evaluate_all(dict(definitions), state)
        slices = _slice_state(state, routings, shards)
        shard_images = [evaluate_all(dict(definitions), part) for part in slices]
        for name in sorted(definitions):
            divergence = _assemblies_diverge(
                name, global_images[name], [img[name] for img in shard_images]
            )
            if divergence is None:
                continue
            union, intersect = divergence
            return ShardingWitness(
                relation=name,
                attributes={
                    rel: tuple(source_attrs[rel]) for rel in candidates
                },
                state={
                    rel: _sorted_rows(state[rel].rows) for rel in candidates
                },
                global_rows=_sorted_rows(global_images[name].rows),
                shard_rows=tuple(
                    _sorted_rows(img[name].rows) for img in shard_images
                ),
                union_rows=_sorted_rows(union.rows),
                intersect_rows=_sorted_rows(intersect.rows),
                states_examined=examined,
            )
    return None


def verify_sharding_witness(
    definitions: Mapping[str, Expression],
    source_attrs: Scope,
    routings: Mapping[str, ShardRouting],
    witness: Mapping[str, object],
) -> List[str]:
    """Independently re-check a serialized sharding witness."""
    problems: List[str] = []
    state_raw = witness.get("state")
    relation = str(witness.get("relation"))
    if not isinstance(state_raw, Mapping):
        return ["witness lacks a 'state' section"]
    if relation not in definitions:
        return [f"witness names unknown warehouse relation {relation!r}"]
    state: Dict[str, Relation] = {
        name: Relation(tuple(source_attrs[name]), [])
        for name in source_attrs
    }
    for name, rows in state_raw.items():
        if str(name) not in source_attrs:
            return [f"witness state names unknown relation {name!r}"]
        state[str(name)] = Relation(
            tuple(source_attrs[str(name)]),
            [tuple(row) for row in rows],  # type: ignore[union-attr]
        )
    shards = next(iter(routings.values())).shards if routings else 1
    try:
        global_image = evaluate_all(dict(definitions), state)[relation]
        slices = _slice_state(state, routings, shards)
        shard_images = [
            evaluate_all(dict(definitions), part)[relation] for part in slices
        ]
    except ReproError as exc:
        return [f"witness replay failed: {exc}"]
    if _assemblies_diverge(relation, global_image, shard_images) is None:
        problems.append(
            f"witness does not diverge: some assembly of {relation!r} "
            "matches the global image"
        )
    return problems


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------


def sharding_certificate_digest(document: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON form — the plan-cache digest.

    Identical to :func:`repro.compiler.certificate.certificate_digest`
    (both delegate to :func:`repro.analysis.digest.canonical_digest`), so
    sharding certificates and compiled-plan cache keys are
    digest-compatible by construction.
    """
    return canonical_digest(document)


def _plan_cache_key(spec: WarehouseSpec) -> Optional[str]:
    """The compiled-plan cache digest this layout composes with, if any."""
    from repro.compiler.certificate import certify
    from repro.errors import CompileError

    try:
        return certify(spec).digest
    except (CompileError, ReproError):
        return None


def build_sharding_certificate(
    spec: WarehouseSpec,
    routings: Mapping[str, ShardRouting],
    report: AssemblyReport,
    footprints: Sequence[ShapeFootprint],
    commutativity: Sequence[CommutativityResult],
    ownership: Mapping[str, Sequence[str]],
) -> Dict[str, object]:
    """The machine-checkable certificate for an admitted sharded layout.

    Self-contained: the warehouse mapping and routings are serialized in
    re-parseable form, so :func:`check_sharding_certificate` can re-run
    the classification and the numeric replay without the spec object.
    ``plan_cache_key`` ties it to the PR-7 compiled-plan cache: the
    compiler certificate digest the layout's compiled closures key on.
    """
    shard_count = next(iter(routings.values())).shards if routings else 1
    assembly_all: Dict[str, str] = {
        name: report.assembly.get(name, ASSEMBLE_REPLICATED)
        for name in sorted(spec.warehouse_names())
    }
    return {
        "version": SHARDING_CERTIFICATE_VERSION,
        "kind": "sharding",
        "shards": shard_count,
        "routings": [routings[name].to_dict() for name in sorted(routings)],
        "source_relations": {
            schema.name: list(schema.attributes)
            for schema in spec.catalog.schemas()
        },
        "warehouse": {
            name: str(expression)
            for name, expression in spec.definitions_over_sources().items()
        },
        "assembly": assembly_all,
        "contributors": {
            name: list(relations)
            for name, relations in sorted(report.contributors.items())
        },
        "co_partitioned": [list(group) for group in report.co_partitioned],
        "footprints": {
            footprint.shape.label(): footprint.to_dict()
            for footprint in footprints
        },
        "commutativity": {
            "sources": {
                name: sorted(ownership[name]) for name in sorted(ownership)
            },
            "pairs": [result.to_dict() for result in commutativity],
            "commute": all(result.commutes for result in commutativity),
        },
        "plan_cache_key": _plan_cache_key(spec),
    }


def _parse_certificate_routings(
    certificate: Mapping[str, object]
) -> Dict[str, ShardRouting]:
    routings: Dict[str, ShardRouting] = {}
    raw = certificate.get("routings")
    if not isinstance(raw, Sequence) or isinstance(raw, str):
        raise WarehouseError("certificate 'routings' is not a list")
    for entry in raw:
        if not isinstance(entry, Mapping):
            raise WarehouseError(f"malformed routing entry {entry!r}")
        boundaries = entry.get("boundaries")
        shards = entry.get("shards")
        routing = ShardRouting(
            str(entry.get("relation")),
            str(entry.get("attribute")),
            boundaries=list(boundaries) if isinstance(boundaries, Sequence) and not isinstance(boundaries, str) else None,
            shards=int(shards) if isinstance(shards, int) else None,
        )
        routings[routing.relation] = routing
    return routings


def check_sharding_certificate(
    catalog: Catalog, certificate: Mapping[str, object]
) -> List[str]:
    """Independently validate a sharding certificate; returns problems.

    Structural checks: routings parse back, name catalog relations, and
    route on declared attributes; the recorded assembly modes and
    co-partitioned groups match a fresh classification of the re-parsed
    warehouse mapping. Numeric replay: for several seeded random
    constraint-satisfying databases, the global image of every warehouse
    relation must equal its recorded assembly of the per-shard images.
    Commutativity facts replay too: disjoint pairs must really be
    disjoint, refuted pairs' interleaving witnesses must diverge.
    """
    from repro.workloads.generator import random_database

    problems: List[str] = []
    warehouse_raw = certificate.get("warehouse")
    if not isinstance(warehouse_raw, Mapping):
        return ["certificate lacks a 'warehouse' section"]
    try:
        definitions = {
            str(name): parse(str(text)) for name, text in warehouse_raw.items()
        }
        routings = _parse_certificate_routings(certificate)
    except ReproError as exc:
        return [f"certificate failed to parse back: {exc}"]

    scope: Dict[str, Tuple[str, ...]] = {
        schema.name: tuple(schema.attributes) for schema in catalog.schemas()
    }
    for name, routing in routings.items():
        if name not in catalog:
            problems.append(f"routed relation {name!r} not in catalog")
        elif routing.attribute not in scope[name]:
            problems.append(
                f"routing attribute {routing.attribute!r} is not an "
                f"attribute of {name!r}"
            )
    if problems:
        return problems

    assembly_raw = certificate.get("assembly")
    assembly: Dict[str, str] = (
        {str(k): str(v) for k, v in assembly_raw.items()}
        if isinstance(assembly_raw, Mapping)
        else {}
    )
    try:
        report = classify_assembly(definitions, scope, routings)
    except UnshardableError as exc:
        return [f"recorded layout no longer classifies: {exc}"]
    for name, mode in report.assembly.items():
        if assembly.get(name) != mode:
            problems.append(
                f"recorded assembly of {name!r} is {assembly.get(name)!r}, "
                f"re-derived {mode!r}"
            )
    recorded_groups = certificate.get("co_partitioned")
    derived_groups = [list(group) for group in report.co_partitioned]
    if sorted(map(tuple, recorded_groups or [])) != sorted(  # type: ignore[arg-type]
        map(tuple, derived_groups)
    ):
        problems.append(
            f"recorded co-partitioned groups {recorded_groups!r} do not "
            f"match re-derived {derived_groups!r}"
        )

    commutativity = certificate.get("commutativity")
    if isinstance(commutativity, Mapping):
        sources = commutativity.get("sources")
        pairs = commutativity.get("pairs")
        if isinstance(pairs, Sequence):
            for entry in pairs:
                if not isinstance(entry, Mapping):
                    problems.append(f"malformed commutativity pair {entry!r}")
                    continue
                verdict = entry.get("verdict")
                shared = entry.get("shared")
                if verdict == "commute":
                    if shared:
                        problems.append(
                            f"pair {entry.get('pair')!r} claims commutativity "
                            f"but shares relation(s) {shared!r}"
                        )
                elif verdict == "refuted":
                    witness_raw = entry.get("witness")
                    if not isinstance(witness_raw, Mapping):
                        problems.append(
                            f"refuted pair {entry.get('pair')!r} has no witness"
                        )
                        continue
                    problems.extend(_check_interleaving(witness_raw))
        if isinstance(sources, Mapping):
            for name, owned in sources.items():
                unknown = [
                    rel for rel in owned  # type: ignore[union-attr]
                    if str(rel) not in catalog
                ]
                if unknown:
                    problems.append(
                        f"source {name!r} owns unknown relation(s) {unknown}"
                    )
    if problems:
        return problems

    # Numeric replay: on random constraint-satisfying states, every
    # warehouse relation's recorded assembly must rebuild the global image.
    shards_raw = certificate.get("shards")
    shards = int(shards_raw) if isinstance(shards_raw, int) else 1
    for seed in _REPLAY_SEEDS:
        state = random_database(
            seed, catalog, rows_per_relation=_REPLAY_ROWS, domain_size=_REPLAY_DOMAIN
        ).state()
        try:
            global_images = evaluate_all(definitions, state)
            slices = _slice_state(state, routings, shards)
            shard_images = [evaluate_all(definitions, part) for part in slices]
        except (ReproError, WarehouseError) as exc:
            problems.append(f"replay (seed {seed}) failed: {exc}")
            continue
        for name in sorted(definitions):
            mode = assembly.get(name, ASSEMBLE_REPLICATED)
            images = [img[name] for img in shard_images]
            if mode == ASSEMBLE_UNION:
                assembled = _union_rows(images)
            elif mode == ASSEMBLE_INTERSECT:
                assembled = _intersect_rows(images)
            else:
                assembled = images[0]
            if assembled != global_images[name]:
                problems.append(
                    f"replay (seed {seed}): {mode} assembly of {name!r} does "
                    "not match the global image"
                )
    return problems


def _check_interleaving(witness: Mapping[str, object]) -> List[str]:
    """Re-run a serialized interleaving witness; must diverge as recorded."""
    try:
        first = witness.get("first")
        second = witness.get("second")
        assert isinstance(first, Mapping) and isinstance(second, Mapping)
        rebuilt = InterleavingWitness(
            relation=str(witness.get("relation")),
            attributes=tuple(
                str(a) for a in witness.get("attributes", ())  # type: ignore[union-attr]
            ),
            start=tuple(tuple(row) for row in witness.get("start", ())),  # type: ignore[union-attr]
            first_inserts=tuple(tuple(r) for r in first.get("inserts", ())),
            first_deletes=tuple(tuple(r) for r in first.get("deletes", ())),
            second_inserts=tuple(tuple(r) for r in second.get("inserts", ())),
            second_deletes=tuple(tuple(r) for r in second.get("deletes", ())),
            first_then_second=tuple(
                tuple(row) for row in witness.get("first_then_second", ())  # type: ignore[union-attr]
            ),
            second_then_first=tuple(
                tuple(row) for row in witness.get("second_then_first", ())  # type: ignore[union-attr]
            ),
        )
    except (TypeError, AssertionError):
        return [f"malformed interleaving witness {witness!r}"]
    one, other = replay_interleaving(rebuilt)
    problems: List[str] = []
    if one == other:
        problems.append(
            "interleaving witness does not diverge: both orders end in "
            f"{list(one)!r}"
        )
    if one != rebuilt.first_then_second or other != rebuilt.second_then_first:
        problems.append(
            "interleaving witness end states do not replay as recorded"
        )
    return problems


# ----------------------------------------------------------------------
# The decision procedure
# ----------------------------------------------------------------------


class ShardingProofResult(NamedTuple):
    """The shard-independence prover's verdict for one spec file."""

    path: str
    verdict: str
    detail: str
    expect: str = "proved"
    certificate: Optional[Dict[str, object]] = None
    witness: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the verdict matches the spec's declared expectation."""
        if self.error is not None:
            return False
        if self.verdict == UNSHARDED:
            return True
        return self.verdict.lower() == self.expect

    def document(self) -> Dict[str, object]:
        """The per-file JSON document (written as the certificate artifact)."""
        out: Dict[str, object] = {
            "version": SHARDING_CERTIFICATE_VERSION,
            "kind": "sharding",
            "spec": display_path(self.path),
            "verdict": self.verdict,
            "expect": self.expect,
            "detail": self.detail,
        }
        if self.certificate is not None:
            out["certificate"] = self.certificate
            out["digest"] = sharding_certificate_digest(self.certificate)
        if self.witness is not None:
            out["witness"] = self.witness
        if self.error is not None:
            out["error"] = self.error
        return out


def _routings_from_specs(
    specs: Sequence[RoutingSpec],
) -> Dict[str, ShardRouting]:
    routings: Dict[str, ShardRouting] = {}
    for entry in specs:
        if entry.relation in routings:
            raise WarehouseError(
                f"relation {entry.relation!r} routed more than once"
            )
        routings[entry.relation] = ShardRouting(
            entry.relation,
            entry.attribute,
            boundaries=entry.boundaries,
            shards=entry.shards,
        )
    counts = {routing.shards for routing in routings.values()}
    if len(counts) > 1:
        raise WarehouseError(
            f"inconsistent shard counts across routings: {sorted(counts)}"
        )
    return routings


def prove_sharding_target(
    target: LintTarget, method: str = "thm22"
) -> ShardingProofResult:
    """Decide one loaded spec file's sharded configuration."""
    options = target.sharding
    expect = options.expect if options is not None else "proved"
    if options is None:
        return ShardingProofResult(
            target.path, UNSHARDED, "no sharding section; nothing to decide"
        )
    try:
        routings = _routings_from_specs(options.routings)
    except WarehouseError as exc:
        return ShardingProofResult(
            target.path, UNKNOWN, "routing configuration is invalid",
            expect=expect, error=str(exc),
        )
    catalog = target.catalog
    for name, routing in routings.items():
        if name not in catalog:
            return ShardingProofResult(
                target.path, UNKNOWN, "routing configuration is invalid",
                expect=expect,
                error=f"routed relation {name!r} not in catalog",
            )
        if routing.attribute not in catalog[name].attributes:
            return ShardingProofResult(
                target.path, UNKNOWN, "routing configuration is invalid",
                expect=expect,
                error=(
                    f"routing attribute {routing.attribute!r} is not an "
                    f"attribute of {name!r}"
                ),
            )
    try:
        spec = specify(catalog, target.views, method=method)
    except ReproError as exc:
        return ShardingProofResult(
            target.path, UNKNOWN, "complement construction failed",
            expect=expect, error=str(exc),
        )
    definitions = spec.definitions_over_sources()
    scope = spec.source_scope()

    ownership: Mapping[str, Sequence[str]] = (
        options.sources if options.sources else default_ownership(catalog)
    )
    unknown_owned = sorted(
        {
            str(rel)
            for owned in ownership.values()
            for rel in owned
            if str(rel) not in catalog
        }
    )
    if unknown_owned:
        return ShardingProofResult(
            target.path, UNKNOWN, "routing configuration is invalid",
            expect=expect,
            error=f"sharding.sources owns unknown relation(s) {unknown_owned}",
        )
    commutativity = decide_source_commutativity(catalog, ownership)
    refuted_pairs = [result for result in commutativity if not result.commutes]

    try:
        report = classify_assembly(definitions, scope, routings)
    except UnshardableError as exc:
        if exc.refutable:
            witness = search_sharding_counterexample(definitions, scope, routings)
            if witness is not None:
                detail = (
                    f"{exc} — confirmed by replay: {witness.relation!r} "
                    f"diverges on a {sum(len(r) for r in witness.state.values())}-row "
                    f"state ({witness.states_examined} state(s) examined)"
                )
                return ShardingProofResult(
                    target.path, REFUTED, detail,
                    expect=expect, witness=witness.to_dict(),
                )
        return ShardingProofResult(
            target.path, UNKNOWN, str(exc), expect=expect
        )

    if refuted_pairs:
        first = refuted_pairs[0]
        assert first.witness is not None
        detail = (
            f"sources {first.pair[0]!r} and {first.pair[1]!r} share "
            f"relation(s) {list(first.shared)}; their batches do not commute "
            f"({first.witness.describe()})"
        )
        return ShardingProofResult(
            target.path, REFUTED, detail,
            expect=expect, witness=first.witness.to_dict(),
        )

    footprints = shape_footprints(spec, routings)
    certificate = build_sharding_certificate(
        spec, routings, report, footprints, commutativity, ownership
    )
    problems = check_sharding_certificate(catalog, certificate)
    if problems:
        # Never claim PROVED on the strength of a broken certificate.
        return ShardingProofResult(
            target.path, UNKNOWN,
            "derived sharding certificate failed self-validation",
            expect=expect, error="; ".join(problems),
        )
    modes = sorted(set(report.assembly.values()))
    detail = (
        f"{len(report.assembly)} relation(s) slice-assembled "
        f"({', '.join(modes) if modes else 'all replicated'}), "
        f"{len(report.co_partitioned)} co-partitioned group(s), "
        f"{len(commutativity)} source pair(s) commute"
    )
    return ShardingProofResult(
        target.path, PROVED, detail, expect=expect, certificate=certificate
    )


def prove_sharding_file(path: str, method: str = "thm22") -> ShardingProofResult:
    """Load and decide one spec file; load failures become error results."""
    try:
        target = load_target(path)
    except (OSError, ValueError, ReproError) as exc:
        return ShardingProofResult(
            path, UNKNOWN, "spec file could not be loaded", error=str(exc)
        )
    return prove_sharding_target(target, method=method)


# ----------------------------------------------------------------------
# Rendering and exit codes
# ----------------------------------------------------------------------


def sharding_exit_code(
    results: Sequence[ShardingProofResult], strict: bool = False
) -> int:
    """Process verdict: 0 all expectations met, 1 mismatch, 2 load error.

    Unsharded files always pass (there is nothing to decide). Without
    ``strict``, an UNKNOWN verdict fails only when the spec expected
    ``refuted``; with ``strict`` every UNKNOWN fails — CI requires a
    decisive verdict for every shipped sharded spec.
    """
    if any(result.error is not None for result in results):
        return 2
    for result in results:
        if result.verdict == UNSHARDED:
            continue
        if result.verdict == UNKNOWN:
            if strict or result.expect == "refuted":
                return 1
        elif not result.ok:
            return 1
    return 0


def render_sharding_text(
    results: Sequence[ShardingProofResult], strict: bool = False
) -> str:
    """Human-readable rendering for ``--format text``."""
    lines: List[str] = []
    for result in results:
        status = "" if result.ok else "  [unexpected]"
        if result.verdict == UNKNOWN and not strict and result.expect != "refuted":
            status = ""
        lines.append(
            f"{display_path(result.path)}: {result.verdict} — {result.detail}{status}"
        )
        if result.error is not None:
            lines.append(f"  error: {result.error}")
    code = sharding_exit_code(results, strict=strict)
    verdicts = [result.verdict for result in results]
    lines.append(
        f"{'FAIL' if code else 'OK'}: {len(results)} file(s), "
        f"{verdicts.count(PROVED)} proved, {verdicts.count(REFUTED)} refuted, "
        f"{verdicts.count(UNKNOWN)} unknown, "
        f"{verdicts.count(UNSHARDED)} unsharded"
    )
    return "\n".join(lines)


def render_sharding_json(
    results: Sequence[ShardingProofResult], strict: bool = False
) -> str:
    """Machine-readable rendering for ``--format json`` (the CI artifact)."""
    document = {
        "version": SHARDING_CERTIFICATE_VERSION,
        "kind": "sharding",
        "strict": strict,
        "ok": sharding_exit_code(results, strict=strict) == 0,
        "summary": {
            "files": len(results),
            "proved": sum(1 for r in results if r.verdict == PROVED),
            "refuted": sum(1 for r in results if r.verdict == REFUTED),
            "unknown": sum(1 for r in results if r.verdict == UNKNOWN),
            "unsharded": sum(1 for r in results if r.verdict == UNSHARDED),
        },
        "results": [result.document() for result in results],
    }
    return json.dumps(document, indent=1, sort_keys=True)


def sharding_certificate_json(result: ShardingProofResult) -> str:
    """One result's certificate document as deterministic JSON text."""
    return json.dumps(result.document(), indent=1, sort_keys=True) + "\n"
