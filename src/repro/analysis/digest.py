"""Canonical JSON digests shared by every certificate consumer.

Both the plan compiler's certificate cache key
(:func:`repro.compiler.certificate.certificate_digest`) and the sharding
prover's certificates (:mod:`repro.analysis.concurrency`) hash their
evidence the same way: SHA-256 over the *canonical* JSON form — sorted
keys, minimal separators — so a digest is insensitive to dict ordering
and whitespace but changes whenever any recorded fact changes. Keeping
the function in one leaf module guarantees the two caches stay
digest-compatible: a sharding certificate and a plan-cache key computed
from the same document are byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping


def canonical_json(document: Mapping[str, object]) -> str:
    """The canonical (sorted-keys, minimal-separators) JSON text."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def canonical_digest(document: Mapping[str, object]) -> str:
    """SHA-256 hex digest over :func:`canonical_json` of ``document``."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()
