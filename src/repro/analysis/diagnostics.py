"""Structured diagnostics: codes, severities, spans, and rendering.

Every finding of the static analyzer — the expression typechecker in
:mod:`repro.analysis.typecheck` and the warehouse lint pass in
:mod:`repro.analysis.lint` — is a :class:`Diagnostic`: a stable code, a
severity, a human message, an optional :class:`SourceSpan` locating the
finding inside an expression tree, a fix hint, and the paper reference that
motivates the check. The full catalog lives in :data:`CATALOG` and is
documented in ``docs/lint.md``.

Code ranges
-----------
``E01xx``
    Schema/type errors in algebra expressions (would raise
    :class:`~repro.errors.ExpressionError` at evaluation time).
``W001x``
    PSJ-form violations (Section 2; Section 5 fact tables).
``W002x``
    Statically decidable selection-condition defects.
``W003x``
    Theorem 2.2 precondition violations (missing keys/covers).
``W004x``
    Complement quality (provable emptiness, minimality certificates).
``W005x``
    View-set hygiene (duplicates, shadowing, equivalent definitions).
``W01xx``
    Concurrency protocol defects in the integrator/sharding runtime
    sources, found by the AST lint in
    :mod:`repro.analysis.concurrency_lint` (commit atomicity, lock order,
    lock-scoped mutation).
``W02xx``
    Query-translation defects in a spec file's declared queries, found by
    :mod:`repro.analysis.query_lint` (undeclared relations, translations
    that would read a source, conditions over projected-away attributes,
    cost-budget overruns).
"""

from __future__ import annotations

import enum
from typing import Dict, List, NamedTuple, Optional, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity; higher is worse, ordering is meaningful."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def label(self) -> str:
        """The lower-case label used in rendered output."""
        return self.name.lower()


class SourceSpan(NamedTuple):
    """Where a diagnostic points: a context plus a path into its tree.

    Attributes
    ----------
    context:
        The named thing being analyzed, e.g. ``"view SalesFact"`` or
        ``"relation Orders"``.
    path:
        A slot path into the context's expression tree as produced by
        :func:`repro.algebra.visitors.format_path` (empty when the
        diagnostic applies to the context as a whole).
    snippet:
        The textual form of the offending node or condition.
    """

    context: str
    path: str = ""
    snippet: str = ""

    def render(self) -> str:
        """``context`` / ``context at path`` for message prefixes."""
        if self.path:
            return f"{self.context} at {self.path}"
        return self.context


class CodeInfo(NamedTuple):
    """Catalog entry for one diagnostic code."""

    title: str
    severity: Severity
    paper: str


#: The complete diagnostic catalog. ``docs/lint.md`` documents every entry
#: with an example and a fix; tests assert the two stay in sync.
CATALOG: Dict[str, CodeInfo] = {
    # -- E01xx: expression typechecking --------------------------------
    "E0101": CodeInfo(
        "unknown relation",
        Severity.ERROR,
        "Section 2: expressions are defined over the schemata of D",
    ),
    "E0102": CodeInfo(
        "projection onto attributes the input does not produce",
        Severity.ERROR,
        "Section 2: pi_Z requires Z ⊆ attr(input)",
    ),
    "E0103": CodeInfo(
        "selection condition over attributes the input does not produce",
        Severity.ERROR,
        "Section 2: sigma_C requires attr(C) ⊆ attr(input)",
    ),
    "E0104": CodeInfo(
        "union of incompatible schemata",
        Severity.ERROR,
        "Section 2: union requires identical attribute sets",
    ),
    "E0105": CodeInfo(
        "difference of incompatible schemata",
        Severity.ERROR,
        "Section 2: difference requires identical attribute sets",
    ),
    "E0106": CodeInfo(
        "rename of attributes the input does not produce",
        Severity.ERROR,
        "footnote 3: renaming applies to attributes of the operand",
    ),
    "E0107": CodeInfo(
        "rename collides with an existing attribute",
        Severity.ERROR,
        "footnote 3: renaming must keep attribute names distinct",
    ),
    "E0108": CodeInfo(
        "attribute compared with itself",
        Severity.WARNING,
        "Section 2: such atoms are constant true or constant false",
    ),
    "E0109": CodeInfo(
        "aggregate groups by an attribute its source does not produce",
        Severity.ERROR,
        "Section 5: aggregates ride on a maintained warehouse relation",
    ),
    "E0110": CodeInfo(
        "aggregate measures an attribute its source does not produce",
        Severity.ERROR,
        "Section 5: aggregates ride on a maintained warehouse relation",
    ),
    # -- W001x: PSJ form -----------------------------------------------
    "W0011": CodeInfo(
        "view definition is not a PSJ view",
        Severity.ERROR,
        "Section 2: warehouse views are PSJ views pi_Z(sigma_C(R1 join "
        "... join Rk)); Section 5 additionally allows union-integrated "
        "fact tables whose members are PSJ",
    ),
    "W0012": CodeInfo(
        "view joins a relation with itself",
        Severity.ERROR,
        "Section 2: the paper's fragment joins distinct relations; "
        "self-joins require renaming (footnote 3)",
    ),
    "W0013": CodeInfo(
        "join graph is disconnected (cartesian product)",
        Severity.WARNING,
        "Example 2.4 context: join-completeness analysis refuses "
        "cartesian joins; they are legal but rarely intended",
    ),
    # -- W002x: selection conditions -----------------------------------
    "W0021": CodeInfo(
        "selection condition is statically unsatisfiable",
        Severity.WARNING,
        "Section 3: containment (Chandra/Merlin) decides emptiness of "
        "the PSJ fragment; the view is the empty relation on every state",
    ),
    "W0022": CodeInfo(
        "tautological conjunct in a selection condition",
        Severity.INFO,
        "Section 2: a constant-true conjunct filters nothing",
    ),
    # -- W003x: Theorem 2.2 preconditions ------------------------------
    "W0031": CodeInfo(
        "attributes projected away and no key declared",
        Severity.WARNING,
        "Theorem 2.2 requires a declared key K_j to form V_{K_j}^ind; "
        "without one the complement stores the relation in full "
        "(Proposition 2.2 fallback)",
    ),
    "W0032": CodeInfo(
        "attributes projected away and no cover exists",
        Severity.WARNING,
        "Theorem 2.2: no subset of V_{K_j}^ind covers attr(R_j), so no "
        "extension join can reconstruct the projected-away attributes",
    ),
    "W0033": CodeInfo(
        "relation unused by every view",
        Severity.WARNING,
        "Proposition 2.2: with V_{R_i} empty, C_i = R_i - ∅ copies "
        "the relation into the warehouse",
    ),
    # -- W004x: complement quality -------------------------------------
    "W0041": CodeInfo(
        "stored complement is provably empty",
        Severity.INFO,
        "Examples 2.3/2.4: constraint analysis proves the complement "
        "empty on every legal state; it can be dropped from storage",
    ),
    "W0042": CodeInfo(
        "no minimality certificate for the complement",
        Severity.INFO,
        "Theorem 2.1 / Example 2.2: proper PSJ views without a theorem "
        "may yield non-minimal complements",
    ),
    # -- W005x: view-set hygiene ---------------------------------------
    "W0051": CodeInfo(
        "duplicate view name",
        Severity.ERROR,
        "Section 2: the warehouse definition is a set of *named* views",
    ),
    "W0052": CodeInfo(
        "two views are provably equivalent",
        Severity.WARNING,
        "Chandra/Merlin equivalence: one of the two materializations is "
        "redundant storage",
    ),
    "W0053": CodeInfo(
        "view name shadows a base relation",
        Severity.ERROR,
        "Section 3: query translation substitutes base relation names; "
        "shadowing makes W^{-1} ambiguous",
    ),
    "W0101": CodeInfo(
        "suspension point inside a commit block",
        Severity.ERROR,
        "MVCC publication: a commit must capture every touched shard's "
        "state in one synchronous block, or readers observe torn batches",
    ),
    "W0102": CodeInfo(
        "shard locks not provably acquired in sorted order",
        Severity.ERROR,
        "Deadlock freedom: concurrent workers acquiring shard locks in "
        "different orders can deadlock the integrator",
    ),
    "W0103": CodeInfo(
        "shared warehouse state mutated outside a lock scope",
        Severity.ERROR,
        "Batch commutativity (prove-sharding) is only sound when refreshes "
        "and commits happen under the touched shards' locks",
    ),
    # -- W02xx: query translation (prove-query) ------------------------
    "W0201": CodeInfo(
        "query references an undeclared relation",
        Severity.ERROR,
        "Section 3: queries are stated over the schemata of D (or over "
        "warehouse relation names); anything else cannot be translated",
    ),
    "W0202": CodeInfo(
        "translated query would still read a source relation",
        Severity.WARNING,
        "Theorem 3.1: Q^ = Q ∘ W^{-1} must be a warehouse-only "
        "expression; a residual source reference means the warehouse "
        "underdetermines the answer",
    ),
    "W0203": CodeInfo(
        "query condition needs an attribute every view projects away",
        Severity.WARNING,
        "Theorem 2.2 context: without a complement covering the "
        "attribute, a selection on it cannot be evaluated warehouse-only",
    ),
    "W0204": CodeInfo(
        "translated query cost estimate exceeds the declared budget",
        Severity.WARNING,
        "Section 3 practicality: translation is only useful if Q^ is "
        "evaluable within the serving path's kernel budget",
    ),
}


class Diagnostic(NamedTuple):
    """One analyzer finding.

    Attributes
    ----------
    code:
        A :data:`CATALOG` key, e.g. ``"W0031"``.
    severity:
        The effective severity (catalog default unless overridden).
    message:
        The finding, specific to this occurrence.
    span:
        Where it points, or ``None`` for spec-global findings.
    hint:
        A fix suggestion (may be empty).
    paper:
        The paper reference from the catalog.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[SourceSpan] = None
    hint: str = ""
    paper: str = ""

    def render(self) -> str:
        """The multi-line textual form used by ``--format text``."""
        where = f" in {self.span.render()}" if self.span is not None else ""
        lines = [f"{self.severity.label()}[{self.code}]{where}: {self.message}"]
        if self.span is not None and self.span.snippet:
            lines.append(f"  | {self.span.snippet}")
        if self.paper:
            lines.append(f"  = paper: {self.paper}")
        if self.hint:
            lines.append(f"  = help: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form used by ``--format json``."""
        out: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.label(),
            "message": self.message,
            "hint": self.hint,
            "paper": self.paper,
        }
        if self.span is not None:
            out["span"] = {
                "context": self.span.context,
                "path": self.span.path,
                "snippet": self.span.snippet,
            }
        return out


def make(
    code: str,
    message: str,
    span: Optional[SourceSpan] = None,
    hint: str = "",
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, pulling defaults from :data:`CATALOG`."""
    info = CATALOG[code]
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else info.severity,
        message=message,
        span=span,
        hint=hint,
        paper=info.paper,
    )


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for an empty list."""
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    """Whether any diagnostic is an :data:`Severity.ERROR`."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def filter_ignored(
    diagnostics: Sequence[Diagnostic], ignore: Sequence[str]
) -> List[Diagnostic]:
    """Drop diagnostics whose code is in ``ignore`` (exact match)."""
    if not ignore:
        return list(diagnostics)
    ignored = frozenset(ignore)
    return [d for d in diagnostics if d.code not in ignored]


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Stable display order: severity descending, then code, then context."""
    return sorted(
        diagnostics,
        key=lambda d: (
            -int(d.severity),
            d.code,
            d.span.context if d.span is not None else "",
            d.span.path if d.span is not None else "",
        ),
    )
