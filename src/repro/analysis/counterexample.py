"""Bounded small-model counterexample search for injectivity (Prop. 2.1).

Proposition 2.1 characterizes complements as injectivity witnesses: ``C``
complements ``V`` iff ``d -> (V(d), C(d))`` is injective on database
states. Contrapositively, a warehouse mapping ``W`` that is *not* a
complement of the identity admits two distinct source databases with the
same warehouse image. This module searches for such a pair over small
per-attribute domains:

* :func:`attribute_domains` — derive tiny candidate domains from the
  constants the views and check constraints mention, padded with fresh
  values so at least two choices exist per attribute;
* :func:`search_counterexample` — enumerate constraint-satisfying states
  (:func:`repro.core.independence.enumerate_states`), hash each warehouse
  image, and stop at the first collision between distinct states;
* :func:`shrink` — greedily delete rows from both sides while the pair
  stays a witness, yielding a minimal, human-readable counterexample;
* :func:`verify_witness` — the independent checker the certificates (and
  the differential replay in ``tests/differential``) call: images equal,
  states distinct, constraints satisfied.

Everything here is deterministic — same catalog and definitions, same
witness — so refuted certificates can be pinned as golden files.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, NamedTuple, Optional, Set, Tuple

from repro.algebra.conditions import And, Comparison, Condition, Constant, Not, Or
from repro.algebra.evaluator import evaluate_all
from repro.algebra.expressions import Expression, Select
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.core.independence import enumerate_states

State = Dict[str, Relation]
FrozenRows = FrozenSet[tuple]
ImageKey = Tuple[Tuple[str, FrozenRows], ...]

DEFAULT_MAX_MODEL_SIZE = 2
DEFAULT_DOMAIN_SIZE = 2
DEFAULT_MAX_STATES = 50000


def _sort_key(value: object) -> Tuple[str, str]:
    return (type(value).__name__, repr(value))


def _row_key(row: tuple) -> Tuple[Tuple[str, str], ...]:
    return tuple(_sort_key(value) for value in row)


class Witness(NamedTuple):
    """Two distinct source states with identical warehouse images."""

    left: State
    right: State

    def max_rows_per_relation(self) -> int:
        """The larger side's largest relation — the witness's "size"."""
        sizes = [len(rel) for state in (self.left, self.right) for rel in state.values()]
        return max(sizes) if sizes else 0

    def differing_relations(self) -> Tuple[str, ...]:
        """Relations on which the two states disagree."""
        return tuple(
            sorted(
                name
                for name in self.left
                if self.left[name] != self.right[name]
            )
        )

    def to_dict(self) -> Dict[str, object]:
        """A deterministic JSON-ready rendering (rows sorted)."""

        def render(state: State) -> Dict[str, List[List[object]]]:
            return {
                name: [list(row) for row in sorted(state[name].rows, key=_row_key)]
                for name in sorted(state)
            }

        return {
            "attributes": {
                name: list(self.left[name].attributes) for name in sorted(self.left)
            },
            "left": render(self.left),
            "right": render(self.right),
            "differs_in": list(self.differing_relations()),
            "max_rows_per_relation": self.max_rows_per_relation(),
        }

    def describe(self) -> str:
        """Human-readable two-column rendering of the pair."""
        lines = []
        for name in sorted(self.left):
            left_rows = sorted(self.left[name].rows, key=_row_key)
            right_rows = sorted(self.right[name].rows, key=_row_key)
            marker = "  <- differs" if left_rows != right_rows else ""
            lines.append(f"{name}: {left_rows} vs {right_rows}{marker}")
        return "\n".join(lines)


class SearchOutcome(NamedTuple):
    """Result of :func:`search_counterexample`.

    ``witness`` is ``None`` when no collision was found; ``exhausted``
    records whether the bounded space was fully enumerated (an exhausted
    search without witness supports — but does not prove — injectivity).
    """

    witness: Optional[Witness]
    states_examined: int
    exhausted: bool


def _conditions_of(expression: Expression) -> List[Condition]:
    return [
        node.condition for node in expression.walk() if isinstance(node, Select)
    ]


def _comparisons(condition: Condition) -> List[Comparison]:
    if isinstance(condition, Comparison):
        return [condition]
    if isinstance(condition, (And, Or)):
        out: List[Comparison] = []
        for part in condition.parts:
            out.extend(_comparisons(part))
        return out
    if isinstance(condition, Not):
        return _comparisons(condition.part)
    return []


def attribute_domains(
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    size: int = DEFAULT_DOMAIN_SIZE,
) -> Dict[str, List[object]]:
    """Small candidate domains per attribute, seeded from mentioned constants.

    Constants compared against an attribute (in view definitions or check
    constraints) are relevant boundary values; the domain is padded with
    small integers until it holds at least ``size`` values, so selections
    can both pass and fail.
    """
    mentioned: Dict[str, Set[object]] = {}
    conditions: List[Condition] = []
    for definition in definitions.values():
        conditions.extend(_conditions_of(definition))
    for schema in catalog.schemas():
        conditions.extend(catalog.checks(schema.name))
    for condition in conditions:
        for comparison in _comparisons(condition):
            oriented = comparison.canonical()
            if isinstance(oriented.right, Constant):
                for name in oriented.left.attributes():
                    mentioned.setdefault(name, set()).add(oriented.right.value)
    domains: Dict[str, List[object]] = {}
    for schema in catalog.schemas():
        for attribute in schema.attributes:
            values = sorted(mentioned.get(attribute, set()), key=_sort_key)
            filler = 0
            while len(values) < size:
                if all(not _same_value(filler, v) for v in values):
                    values.append(filler)
                filler += 1
            domains[attribute] = values
    return domains


def _same_value(left: object, right: object) -> bool:
    return type(left) is type(right) and left == right


def _image_key(image: State) -> ImageKey:
    return tuple((name, frozenset(image[name].rows)) for name in sorted(image))


def _states_equal(catalog: Catalog, left: State, right: State) -> bool:
    return all(
        left[name] == right[name] for name in catalog.relation_names()
    )


def _state_valid(catalog: Catalog, state: State) -> bool:
    return Database(catalog, state, check=False).satisfies_constraints()


def verify_witness(
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    witness: Witness,
) -> List[str]:
    """Independently check a witness; returns problem descriptions.

    A valid witness has (i) two constraint-satisfying states that (ii)
    differ on some base relation yet (iii) produce identical images under
    every definition in ``definitions``. Empty result = genuine
    counterexample to injectivity (Proposition 2.1).
    """
    problems: List[str] = []
    for side, state in (("left", witness.left), ("right", witness.right)):
        if not _state_valid(catalog, state):
            problems.append(f"{side} state violates the catalog's constraints")
    if _states_equal(catalog, witness.left, witness.right):
        problems.append("the two states are identical")
    left_image = evaluate_all(definitions, witness.left)
    right_image = evaluate_all(definitions, witness.right)
    for name in definitions:
        if left_image[name] != right_image[name]:
            problems.append(f"images differ on warehouse relation {name!r}")
    return problems


def _is_witness(
    catalog: Catalog, definitions: Mapping[str, Expression], left: State, right: State
) -> bool:
    return not verify_witness(catalog, definitions, Witness(left, right))


def shrink(
    witness: Witness,
    catalog: Catalog,
    definitions: Mapping[str, Expression],
) -> Witness:
    """Greedily remove rows (from both sides) while the pair stays a witness.

    Deterministic: relations in catalog order, rows in sorted order. The
    result is locally minimal — removing any single remaining row breaks
    the witness property.
    """
    left = dict(witness.left)
    right = dict(witness.right)
    changed = True
    while changed:
        changed = False
        for relation in catalog.relation_names():
            rows = sorted(
                left[relation].rows | right[relation].rows, key=_row_key
            )
            for row in rows:
                candidate_left = dict(left)
                candidate_right = dict(right)
                candidate_left[relation] = _without(left[relation], row)
                candidate_right[relation] = _without(right[relation], row)
                if _is_witness(catalog, definitions, candidate_left, candidate_right):
                    left = candidate_left
                    right = candidate_right
                    changed = True
    return Witness(left, right)


def _without(relation: Relation, row: tuple) -> Relation:
    return Relation(
        relation.attributes, [r for r in relation.rows if r != row]
    )


def search_counterexample(
    catalog: Catalog,
    definitions: Mapping[str, Expression],
    max_model_size: int = DEFAULT_MAX_MODEL_SIZE,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
    max_states: int = DEFAULT_MAX_STATES,
) -> SearchOutcome:
    """Search for two states with equal images under ``definitions``.

    Enumerates every constraint-satisfying state with at most
    ``max_model_size`` rows per relation over the derived small domains,
    hashing images; the first collision between distinct states is shrunk
    (:func:`shrink`) and returned. ``max_states`` bounds the enumeration
    (``exhausted`` is false when it bites).

    Examples
    --------
    A lossy projection is not injective — one row suffices to show it:

    >>> from repro.schema import Catalog
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Emp", ("clerk", "age"))
    >>> outcome = search_counterexample(catalog, {"V": parse("pi[clerk](Emp)")})
    >>> outcome.witness.max_rows_per_relation()
    1
    """
    domains = attribute_domains(catalog, definitions, size=domain_size)
    seen: Dict[ImageKey, State] = {}
    examined = 0
    exhausted = True
    for state in enumerate_states(
        catalog, domains, max_rows_per_relation=max_model_size
    ):
        examined += 1
        if examined > max_states:
            exhausted = False
            break
        image = evaluate_all(definitions, state)
        key = _image_key(image)
        previous = seen.get(key)
        if previous is not None:
            if not _states_equal(catalog, previous, state):
                witness = shrink(Witness(previous, state), catalog, definitions)
                return SearchOutcome(witness, examined, True)
        else:
            seen[key] = state
    return SearchOutcome(None, examined, exhausted)
