"""Loading lintable warehouse definitions from JSON spec files.

The file format is the one ``python -m repro spec`` already consumes
(relations, inclusions, checks, views — see :mod:`repro.__main__`), plus an
optional ``"lint"`` section for per-file suppressions and an optional
``"prover"`` section consumed by ``python -m repro prove``::

    {
      "relations": [...],
      "inclusions": [...],
      "views": [{"name": "Sold", "definition": "Sale join Emp"}],
      "lint": {
        "ignore": {
          "W0033": "Audit is intentionally warehouse-only replicated"
        }
      },
      "prover": {
        "mode": "with-complement",   # or "views-only"
        "expect": "proved",          # or "refuted"
        "max_model_size": 2,
        "domain_size": 2
      },
      "queries": {
        "budget": 100000,            # optional cost ceiling (W0204)
        "rows": {"Sale": 5000},      # optional cardinality estimates
        "items": [
          {"query": "pi[clerk](Sale)", "expect": "proved"}
        ]
      }
    }

Every ignored code must exist in the diagnostic catalog and must carry a
non-empty justification string — a suppression without a reason is itself a
spec bug. The prover options declare which question the file poses (is
``V ∪ C`` invertible, or is ``V`` alone?) and the verdict CI should treat
as success — a deliberately non-independent example ships with
``"expect": "refuted"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import SchemaError
from repro.algebra.parser import parse
from repro.schema.catalog import Catalog
from repro.storage.persist import catalog_from_dict
from repro.views.psj import View
from repro.analysis.diagnostics import CATALOG


PROVER_MODES = ("with-complement", "views-only")
PROVER_EXPECTATIONS = ("proved", "refuted")
SHARDING_EXPECTATIONS = ("proved", "refuted")
#: Unlike the spec-level provers, a *query* expectation may be "unknown":
#: the translation prover is sound but not complete, and a pinned
#: honest-UNKNOWN example documents exactly where completeness ends.
QUERY_EXPECTATIONS = ("proved", "refuted", "unknown")


class ProverOptions(NamedTuple):
    """Per-file options for ``python -m repro prove`` (``"prover"`` section).

    ``mode`` selects the question — ``"with-complement"`` asks whether the
    derived ``W = V ∪ C`` is invertible (Theorem 2.2), ``"views-only"``
    whether the view set alone already is (Proposition 2.1 applied to
    ``V``). ``expect`` is the verdict CI treats as success;
    ``max_model_size`` / ``domain_size`` bound the counterexample search.
    """

    mode: str = "with-complement"
    expect: str = "proved"
    max_model_size: int = 2
    domain_size: int = 2


class RoutingSpec(NamedTuple):
    """One declared routing inside a spec file's ``"sharding"`` section.

    Exactly one of ``boundaries`` (range strategy) / ``shards`` (hash
    strategy) is set — the same contract as
    :class:`repro.core.sharding.ShardRouting`, which this deserializes to.
    """

    relation: str
    attribute: str
    boundaries: Optional[Tuple[object, ...]] = None
    shards: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form (used inside sharding certificates)."""
        out: Dict[str, object] = {
            "relation": self.relation,
            "attribute": self.attribute,
        }
        if self.boundaries is not None:
            out["boundaries"] = list(self.boundaries)
        if self.shards is not None:
            out["shards"] = self.shards
        return out


class ShardingOptions(NamedTuple):
    """Per-file options for ``python -m repro prove-sharding``.

    ``routings`` declares the partitioned relations; ``expect`` is the
    verdict CI treats as success — a deliberately mis-partitioned example
    ships with ``"expect": "refuted"``. ``sources`` optionally declares
    feed ownership (source name → base relations it updates) for the
    batch-commutativity check; when omitted the integrator default of one
    source per base relation is assumed.
    """

    routings: Tuple[RoutingSpec, ...]
    expect: str = "proved"
    sources: Optional[Dict[str, Tuple[str, ...]]] = None


class QuerySpec(NamedTuple):
    """One declared query inside a spec file's ``"queries"`` section.

    ``query`` is an algebra expression over source relations (warehouse
    names are also legal — Theorem 3.1's translation leaves them alone).
    ``expect`` is the translation verdict CI treats as success; ``name``
    labels the query in reports and defaults to the query text itself.
    """

    query: str
    expect: str = "proved"
    name: Optional[str] = None

    def label(self) -> str:
        """The display name: explicit ``name`` or the query text."""
        return self.name if self.name is not None else self.query


class QueryOptions(NamedTuple):
    """Per-file options for ``python -m repro prove-query``.

    ``items`` declares the queries to decide; ``budget`` is an optional
    kernel-cost ceiling (W0204 fires above it); ``rows`` optionally
    estimates per-relation cardinalities for the cost model (defaulted
    when omitted).
    """

    items: Tuple[QuerySpec, ...]
    budget: Optional[int] = None
    rows: Optional[Dict[str, int]] = None


class LintTarget(NamedTuple):
    """One loaded spec file, ready for :func:`repro.analysis.lint.lint_views`."""

    path: str
    catalog: Catalog
    views: List[View]
    ignore: Dict[str, str]
    prover: ProverOptions = ProverOptions()
    sharding: Optional[ShardingOptions] = None
    queries: Optional[QueryOptions] = None

    def ignored_codes(self) -> List[str]:
        """The suppressed diagnostic codes."""
        return list(self.ignore)


def _parse_ignore(data: Mapping[str, Any], path: str) -> Dict[str, str]:
    lint_section = data.get("lint", {})
    if not isinstance(lint_section, Mapping):
        raise SchemaError(f"{path}: 'lint' must be an object")
    raw = lint_section.get("ignore", {})
    if not isinstance(raw, Mapping):
        raise SchemaError(
            f"{path}: 'lint.ignore' must map diagnostic codes to justifications"
        )
    ignore: Dict[str, str] = {}
    for code, justification in raw.items():
        if code not in CATALOG:
            raise SchemaError(
                f"{path}: unknown diagnostic code {code!r} in lint.ignore"
            )
        if not isinstance(justification, str) or not justification.strip():
            raise SchemaError(
                f"{path}: lint.ignore[{code!r}] needs a non-empty justification"
            )
        ignore[code] = justification
    return ignore


def _parse_prover(data: Mapping[str, Any], path: str) -> ProverOptions:
    raw = data.get("prover", {})
    if not isinstance(raw, Mapping):
        raise SchemaError(f"{path}: 'prover' must be an object")
    options = ProverOptions()
    mode = raw.get("mode", options.mode)
    if mode not in PROVER_MODES:
        raise SchemaError(
            f"{path}: prover.mode must be one of {list(PROVER_MODES)}, "
            f"got {mode!r}"
        )
    expect = raw.get("expect", options.expect)
    if expect not in PROVER_EXPECTATIONS:
        raise SchemaError(
            f"{path}: prover.expect must be one of {list(PROVER_EXPECTATIONS)}, "
            f"got {expect!r}"
        )
    sizes: Dict[str, int] = {}
    for field, default in (
        ("max_model_size", options.max_model_size),
        ("domain_size", options.domain_size),
    ):
        value = raw.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise SchemaError(
                f"{path}: prover.{field} must be a positive integer"
            )
        sizes[field] = value
    unknown = set(raw) - {"mode", "expect", "max_model_size", "domain_size"}
    if unknown:
        raise SchemaError(
            f"{path}: unknown prover option(s) {sorted(unknown)}"
        )
    return ProverOptions(
        mode=mode,
        expect=expect,
        max_model_size=sizes["max_model_size"],
        domain_size=sizes["domain_size"],
    )


def _parse_routing(raw: Any, path: str, index: int) -> RoutingSpec:
    where = f"{path}: sharding.routings[{index}]"
    if not isinstance(raw, Mapping):
        raise SchemaError(f"{where} must be an object")
    unknown = set(raw) - {"relation", "attribute", "boundaries", "shards"}
    if unknown:
        raise SchemaError(f"{where}: unknown key(s) {sorted(unknown)}")
    relation = raw.get("relation")
    attribute = raw.get("attribute")
    for field, value in (("relation", relation), ("attribute", attribute)):
        if not isinstance(value, str) or not value:
            raise SchemaError(f"{where}: {field!r} must be a non-empty string")
    boundaries = raw.get("boundaries")
    shards = raw.get("shards")
    if (boundaries is None) == (shards is None):
        raise SchemaError(
            f"{where}: give exactly one of 'boundaries' (range strategy) "
            "or 'shards' (hash strategy)"
        )
    if boundaries is not None:
        if not isinstance(boundaries, list) or not boundaries:
            raise SchemaError(f"{where}: 'boundaries' must be a non-empty list")
        return RoutingSpec(str(relation), str(attribute), tuple(boundaries), None)
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise SchemaError(f"{where}: 'shards' must be a positive integer")
    return RoutingSpec(str(relation), str(attribute), None, shards)


def _parse_sharding(data: Mapping[str, Any], path: str) -> Optional[ShardingOptions]:
    raw = data.get("sharding")
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise SchemaError(f"{path}: 'sharding' must be an object")
    unknown = set(raw) - {"routings", "expect", "sources"}
    if unknown:
        raise SchemaError(f"{path}: unknown sharding option(s) {sorted(unknown)}")
    routings_raw = raw.get("routings")
    if not isinstance(routings_raw, list) or not routings_raw:
        raise SchemaError(
            f"{path}: 'sharding.routings' must be a non-empty list"
        )
    routings = tuple(
        _parse_routing(entry, path, index)
        for index, entry in enumerate(routings_raw)
    )
    expect = raw.get("expect", "proved")
    if expect not in SHARDING_EXPECTATIONS:
        raise SchemaError(
            f"{path}: sharding.expect must be one of "
            f"{list(SHARDING_EXPECTATIONS)}, got {expect!r}"
        )
    sources_raw = raw.get("sources")
    sources: Optional[Dict[str, Tuple[str, ...]]] = None
    if sources_raw is not None:
        if not isinstance(sources_raw, Mapping) or not sources_raw:
            raise SchemaError(
                f"{path}: 'sharding.sources' must map source names to "
                "non-empty lists of owned relations"
            )
        sources = {}
        for name, owned in sources_raw.items():
            if (
                not isinstance(owned, list)
                or not owned
                or not all(isinstance(item, str) and item for item in owned)
            ):
                raise SchemaError(
                    f"{path}: sharding.sources[{name!r}] must be a non-empty "
                    "list of relation names"
                )
            sources[str(name)] = tuple(owned)
    return ShardingOptions(routings=routings, expect=str(expect), sources=sources)


def _parse_query_item(raw: Any, path: str, index: int) -> QuerySpec:
    where = f"{path}: queries.items[{index}]"
    if not isinstance(raw, Mapping):
        raise SchemaError(f"{where} must be an object")
    unknown = set(raw) - {"query", "expect", "name"}
    if unknown:
        raise SchemaError(f"{where}: unknown key(s) {sorted(unknown)}")
    query = raw.get("query")
    if not isinstance(query, str) or not query.strip():
        raise SchemaError(f"{where}: 'query' must be a non-empty string")
    expect = raw.get("expect", "proved")
    if expect not in QUERY_EXPECTATIONS:
        raise SchemaError(
            f"{where}: expect must be one of {list(QUERY_EXPECTATIONS)}, "
            f"got {expect!r}"
        )
    name = raw.get("name")
    if name is not None and (not isinstance(name, str) or not name.strip()):
        raise SchemaError(f"{where}: 'name' must be a non-empty string")
    return QuerySpec(query=query, expect=str(expect), name=name)


def _parse_queries(data: Mapping[str, Any], path: str) -> Optional[QueryOptions]:
    raw = data.get("queries")
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise SchemaError(f"{path}: 'queries' must be an object")
    unknown = set(raw) - {"items", "budget", "rows"}
    if unknown:
        raise SchemaError(f"{path}: unknown queries option(s) {sorted(unknown)}")
    items_raw = raw.get("items")
    if not isinstance(items_raw, list) or not items_raw:
        raise SchemaError(f"{path}: 'queries.items' must be a non-empty list")
    items = tuple(
        _parse_query_item(entry, path, index)
        for index, entry in enumerate(items_raw)
    )
    budget = raw.get("budget")
    if budget is not None and (
        not isinstance(budget, int) or isinstance(budget, bool) or budget < 1
    ):
        raise SchemaError(f"{path}: queries.budget must be a positive integer")
    rows_raw = raw.get("rows")
    rows: Optional[Dict[str, int]] = None
    if rows_raw is not None:
        if not isinstance(rows_raw, Mapping) or not rows_raw:
            raise SchemaError(
                f"{path}: 'queries.rows' must map relation names to "
                "positive row estimates"
            )
        rows = {}
        for name, estimate in rows_raw.items():
            if (
                not isinstance(estimate, int)
                or isinstance(estimate, bool)
                or estimate < 1
            ):
                raise SchemaError(
                    f"{path}: queries.rows[{name!r}] must be a positive integer"
                )
            rows[str(name)] = estimate
    return QueryOptions(items=items, budget=budget, rows=rows)


def load_target(path: str) -> LintTarget:
    """Load a spec file into a :class:`LintTarget`.

    Raises :class:`~repro.errors.ReproError` subclasses for malformed
    content and ``OSError``/``json.JSONDecodeError`` for unreadable files.
    """
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, Mapping):
        raise SchemaError(f"{path}: spec file must contain a JSON object")
    catalog = catalog_from_dict(
        {
            "relations": data.get("relations", []),
            "inclusions": data.get("inclusions", []),
            "checks": data.get("checks", {}),
        }
    )
    views = [View(v["name"], parse(v["definition"])) for v in data.get("views", [])]
    return LintTarget(
        path,
        catalog,
        views,
        _parse_ignore(data, path),
        _parse_prover(data, path),
        _parse_sharding(data, path),
        _parse_queries(data, path),
    )
