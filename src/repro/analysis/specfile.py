"""Loading lintable warehouse definitions from JSON spec files.

The file format is the one ``python -m repro spec`` already consumes
(relations, inclusions, checks, views — see :mod:`repro.__main__`), plus an
optional ``"lint"`` section for per-file suppressions::

    {
      "relations": [...],
      "inclusions": [...],
      "views": [{"name": "Sold", "definition": "Sale join Emp"}],
      "lint": {
        "ignore": {
          "W0033": "Audit is intentionally warehouse-only replicated"
        }
      }
    }

Every ignored code must exist in the diagnostic catalog and must carry a
non-empty justification string — a suppression without a reason is itself a
spec bug.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, NamedTuple

from repro.errors import SchemaError
from repro.algebra.parser import parse
from repro.schema.catalog import Catalog
from repro.storage.persist import catalog_from_dict
from repro.views.psj import View
from repro.analysis.diagnostics import CATALOG


class LintTarget(NamedTuple):
    """One loaded spec file, ready for :func:`repro.analysis.lint.lint_views`."""

    path: str
    catalog: Catalog
    views: List[View]
    ignore: Dict[str, str]

    def ignored_codes(self) -> List[str]:
        """The suppressed diagnostic codes."""
        return list(self.ignore)


def _parse_ignore(data: Mapping[str, Any], path: str) -> Dict[str, str]:
    lint_section = data.get("lint", {})
    if not isinstance(lint_section, Mapping):
        raise SchemaError(f"{path}: 'lint' must be an object")
    raw = lint_section.get("ignore", {})
    if not isinstance(raw, Mapping):
        raise SchemaError(
            f"{path}: 'lint.ignore' must map diagnostic codes to justifications"
        )
    ignore: Dict[str, str] = {}
    for code, justification in raw.items():
        if code not in CATALOG:
            raise SchemaError(
                f"{path}: unknown diagnostic code {code!r} in lint.ignore"
            )
        if not isinstance(justification, str) or not justification.strip():
            raise SchemaError(
                f"{path}: lint.ignore[{code!r}] needs a non-empty justification"
            )
        ignore[code] = justification
    return ignore


def load_target(path: str) -> LintTarget:
    """Load a spec file into a :class:`LintTarget`.

    Raises :class:`~repro.errors.ReproError` subclasses for malformed
    content and ``OSError``/``json.JSONDecodeError`` for unreadable files.
    """
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, Mapping):
        raise SchemaError(f"{path}: spec file must contain a JSON object")
    catalog = catalog_from_dict(
        {
            "relations": data.get("relations", []),
            "inclusions": data.get("inclusions", []),
            "checks": data.get("checks", {}),
        }
    )
    views = [View(v["name"], parse(v["definition"])) for v in data.get("views", [])]
    return LintTarget(path, catalog, views, _parse_ignore(data, path))
