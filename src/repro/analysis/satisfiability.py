"""Static satisfiability analysis of selection conditions (W002x).

Decides two cheap, sound properties of a condition's top-level conjuncts:

* **unsatisfiable** — no row can satisfy the condition. Detected from the
  constant ``false``, from a constant-constant conjunct that evaluates
  false, or from contradictory constraints on one attribute (two different
  required equalities, an equality excluded by a disequality, or an empty
  ordering interval). Attribute-attribute equalities are propagated:
  conjuncts like ``a = b`` merge the two attributes into one equivalence
  class, so constant constraints anywhere along the chain combine
  (``a = b and b = 3 and a != 3`` is unsatisfiable), and an ordering or
  disequality conjunct between two attributes of the same class is itself
  a contradiction. Attribute-attribute *orderings* are propagated
  transitively over the equality classes: ``a < b and b < c`` implies
  ``a < c``, so a strict cycle (``a < b and b < a``, or any longer chain
  back to itself) is reported, and constant bounds travel along the
  chains (``a < b and b < 3`` bounds ``a`` above by 3, which then
  contradicts ``a > 5``). Sound but incomplete; deeper cross-attribute
  reasoning is left to the conjunctive-query machinery in
  :mod:`repro.algebra.containment`, which the lint pass consults as a
  second opinion.
* **tautological conjuncts** — conjuncts that filter nothing: the constant
  ``true`` or a constant-constant comparison that evaluates true. These are
  reported individually (the rest of the condition may still be doing
  work).

Only conjunctive structure is analyzed: a top-level ``Or``/``Not`` is one
opaque conjunct. Attribute-self comparisons (``a < a``) are deliberately
skipped here — the typechecker reports them as ``E0108``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.conditions import (
    AttributeRef,
    Comparison,
    Condition,
    Constant,
    FalseCondition,
    TrueCondition,
    _OPS,
)


def _evaluate_constant(comparison: Comparison) -> Optional[bool]:
    """The truth value of a constant-constant comparison, else ``None``."""
    if isinstance(comparison.left, Constant) and isinstance(
        comparison.right, Constant
    ):
        return _OPS[comparison.op](comparison.left.value, comparison.right.value)
    return None


class _Bounds:
    """Accumulated constraints on one attribute across conjuncts."""

    def __init__(self) -> None:
        self.equal: Optional[object] = None
        self.not_equal: List[object] = []
        # (value, strict): x > value / x >= value and x < value / x <= value.
        self.lower: List[Tuple[object, bool]] = []
        self.upper: List[Tuple[object, bool]] = []

    def add(self, op: str, value: object) -> Optional[str]:
        """Fold one comparison in; returns a contradiction reason or None."""
        if op == "=":
            if self.equal is not None and not _same(self.equal, value):
                return (
                    f"required to equal both {self.equal!r} and {value!r}"
                )
            if any(_same(value, other) for other in self.not_equal):
                return f"required to equal and not equal {value!r}"
            self.equal = value
        elif op == "!=":
            if self.equal is not None and _same(self.equal, value):
                return f"required to equal and not equal {value!r}"
            self.not_equal.append(value)
        elif op in (">", ">="):
            self.lower.append((value, op == ">"))
        elif op in ("<", "<="):
            self.upper.append((value, op == "<"))
        return self._interval_contradiction()

    def _interval_contradiction(self) -> Optional[str]:
        points: List[Tuple[object, bool]] = list(self.lower)
        if self.equal is not None:
            points.append((self.equal, False))
        for low, low_strict in points:
            for high, high_strict in self.upper:
                verdict = _empty_interval(low, low_strict, high, high_strict)
                if verdict:
                    return verdict
        if self.equal is not None:
            for low, low_strict in self.lower:
                verdict = _empty_interval(low, low_strict, self.equal, False)
                if verdict:
                    return verdict
        return None


def _same(left: object, right: object) -> bool:
    return type(left) is type(right) and left == right


class _EqualityClasses:
    """Union-find over the ``attr = attr`` conjuncts of one condition."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, name: str) -> str:
        parent = self._parent.setdefault(name, name)
        if parent != name:
            parent = self._parent[name] = self.find(parent)
        return parent

    def union(self, left: str, right: str) -> None:
        roots = sorted((self.find(left), self.find(right)))
        if roots[0] != roots[1]:
            self._parent[roots[1]] = roots[0]

    def members(self, name: str) -> List[str]:
        root = self.find(name)
        return sorted(
            member for member in self._parent if self.find(member) == root
        )

    def label(self, name: str) -> str:
        """Human-readable name for the class: the ``a = b`` chain itself."""
        members = self.members(name)
        if len(members) == 1:
            return f"attribute {members[0]!r}"
        return "attributes " + " = ".join(repr(member) for member in members)


def _empty_interval(
    low: object, low_strict: bool, high: object, high_strict: bool
) -> Optional[str]:
    """Whether ``low < x < high`` (strictness as flagged) has no solution.

    Conservative: values of different types are never reported (the
    engine's total order over mixed types makes such comparisons legal,
    but reasoning about them statically would be fragile).
    """
    if type(low) is not type(high):
        return None
    try:
        above = low > high  # type: ignore[operator]
        equal = low == high
    except TypeError:
        return None
    if above:
        return f"requires a value both > {high!r} and < {low!r}"
    if equal and (low_strict or high_strict):
        return f"requires a value both above and below {low!r}"
    return None


def _ordering_contradiction(
    edges: List[Tuple[str, str, bool]],
    bounds: Dict[str, _Bounds],
    classes: _EqualityClasses,
) -> Optional[str]:
    """Transitive closure over the ``attr < attr`` conjuncts.

    ``edges`` are ``(low, high, strict)`` triples between equality-class
    roots. A strict cycle (some class below itself via a path with at
    least one strict edge) is a contradiction outright; otherwise constant
    bounds travel along the closure (``a < b and b < 3`` gives ``a < 3``)
    and are folded into ``bounds`` where the interval check may fire.
    """
    if not edges:
        return None
    # best[(u, v)]: v is reachable from u; True iff some path is strict.
    best: Dict[Tuple[str, str], bool] = {}
    for low, high, strict in edges:
        best[(low, high)] = best.get((low, high), False) or strict
    nodes = sorted({node for edge in edges for node in edge[:2]})
    for k in nodes:
        for i in nodes:
            through = best.get((i, k))
            if through is None:
                continue
            for j in nodes:
                onward = best.get((k, j))
                if onward is None:
                    continue
                combined = through or onward
                best[(i, j)] = best.get((i, j), False) or combined
    for node in nodes:
        if best.get((node, node)):
            return (
                f"{classes.label(node)} is required strictly less than "
                "itself by the ordering conjuncts"
            )
    derived: List[Tuple[str, str, object]] = []
    for (low, high), strict in sorted(best.items(), key=lambda item: item[0]):
        if low == high:
            continue
        low_bounds = bounds.get(low)
        if low_bounds is not None:  # low's lower bounds push high up
            points = list(low_bounds.lower)
            if low_bounds.equal is not None:
                points.append((low_bounds.equal, False))
            for value, value_strict in points:
                derived.append(
                    (high, ">" if (strict or value_strict) else ">=", value)
                )
        high_bounds = bounds.get(high)
        if high_bounds is not None:  # high's upper bounds push low down
            points = list(high_bounds.upper)
            if high_bounds.equal is not None:
                points.append((high_bounds.equal, False))
            for value, value_strict in points:
                derived.append(
                    (low, "<" if (strict or value_strict) else "<=", value)
                )
    for name, op, value in derived:
        reason = bounds.setdefault(name, _Bounds()).add(op, value)
        if reason:
            return f"{classes.label(name)} {reason}"
    return None


def unsatisfiable_reason(condition: Condition) -> Optional[str]:
    """Why no row can satisfy ``condition``, or ``None`` if undecided.

    Examples
    --------
    >>> from repro.algebra.parser import parse_condition
    >>> unsatisfiable_reason(parse_condition("a = 1 and a = 2"))
    "attribute 'a' required to equal both 1 and 2"
    >>> unsatisfiable_reason(parse_condition("a > 5 and a < 3"))
    "attribute 'a' requires a value both > 3 and < 5"
    >>> unsatisfiable_reason(parse_condition("a = 1 and b = 2")) is None
    True

    Constant constraints propagate along ``attr = attr`` equality chains:

    >>> unsatisfiable_reason(parse_condition("a = b and b = 3 and a != 3"))
    "attributes 'a' = 'b' required to equal and not equal 3"
    >>> unsatisfiable_reason(parse_condition("a = b and b < c and c = a"))
    "attributes 'a' = 'b' = 'c' are required equal, contradicting 'b' < 'c'"

    Orderings propagate transitively (``a < b and b < c`` implies
    ``a < c``), so strict cycles and chained constant bounds are caught:

    >>> unsatisfiable_reason(parse_condition("a < b and b < a"))
    "attribute 'a' is required strictly less than itself by the ordering conjuncts"
    >>> unsatisfiable_reason(parse_condition("a < b and b < c and c <= a"))
    "attribute 'a' is required strictly less than itself by the ordering conjuncts"
    >>> unsatisfiable_reason(parse_condition("a <= b and b <= a")) is None
    True
    >>> unsatisfiable_reason(parse_condition("a < b and b < c and c < 3 and a > 5"))
    "attribute 'c' requires a value both > 3 and < 5"
    """
    if isinstance(condition, FalseCondition):
        return "the condition is the constant false"
    conjuncts = list(condition.conjuncts())
    classes = _EqualityClasses()
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, AttributeRef)
            and isinstance(conjunct.right, AttributeRef)
            and conjunct.left.name != conjunct.right.name
        ):
            classes.union(conjunct.left.name, conjunct.right.name)
    bounds: Dict[str, _Bounds] = {}
    order_edges: List[Tuple[str, str, bool]] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, FalseCondition):
            return "a conjunct is the constant false"
        if not isinstance(conjunct, Comparison):
            continue
        verdict = _evaluate_constant(conjunct)
        if verdict is False:
            return f"the constant conjunct {conjunct} is false"
        if verdict is not None:
            continue
        oriented = conjunct.canonical()
        if isinstance(oriented.left, AttributeRef) and isinstance(
            oriented.right, AttributeRef
        ):
            left, right = oriented.left.name, oriented.right.name
            if left == right or oriented.op == "=":
                continue
            if classes.find(left) == classes.find(right):
                if oriented.op in ("<=", ">="):
                    continue  # consistent with the required equality
                return (
                    f"{classes.label(left)} are required equal, "
                    f"contradicting {left!r} {oriented.op} {right!r}"
                )
            if oriented.op in ("<", "<="):
                order_edges.append(
                    (classes.find(left), classes.find(right), oriented.op == "<")
                )
            elif oriented.op in (">", ">="):
                order_edges.append(
                    (classes.find(right), classes.find(left), oriented.op == ">")
                )
            continue
        if not (
            isinstance(oriented.left, AttributeRef)
            and isinstance(oriented.right, Constant)
        ):
            continue
        name = classes.find(oriented.left.name)
        reason = bounds.setdefault(name, _Bounds()).add(
            oriented.op, oriented.right.value
        )
        if reason:
            return f"{classes.label(name)} {reason}"
    return _ordering_contradiction(order_edges, bounds, classes)


def tautological_conjuncts(condition: Condition) -> List[Condition]:
    """The conjuncts of ``condition`` that provably filter nothing.

    Examples
    --------
    >>> from repro.algebra.parser import parse_condition
    >>> [str(c) for c in tautological_conjuncts(parse_condition("1 = 1 and a = 2"))]
    ['1 = 1']
    """
    out: List[Condition] = []
    for conjunct in condition.conjuncts():
        if isinstance(conjunct, TrueCondition):
            out.append(conjunct)
        elif isinstance(conjunct, Comparison):
            if _evaluate_constant(conjunct) is True:
                out.append(conjunct)
    return out
