"""The static independence prover behind ``python -m repro prove``.

The paper's guarantees are decision-shaped: Proposition 2.1 says a
complement is exactly an injectivity witness for the warehouse mapping
``W``, and Theorems 3.1/4.1 say that storing ``W = V ∪ C`` buys query and
update independence. This module decides those questions per spec file and
emits evidence either way:

* **PROVED** — an explicit inversion plan exists: per base relation, the
  Equation (4) reconstruction expression over warehouse names, packaged
  with the key/inclusion/cover facts it depends on as a machine-checkable
  JSON **certificate** (:func:`build_certificate`). Certificates are
  self-validating: :func:`check_certificate` re-parses every expression,
  checks the structural invariants, and replays the ``W -> W^{-1}``
  round-trip on randomly generated constraint-satisfying databases. The
  differential suite (``tests/differential/test_certificates.py``) replays
  each shipped golden certificate the same way in CI.
* **REFUTED** — no proof exists and the bounded small-model search
  (:mod:`repro.analysis.counterexample`) found two distinct source
  databases with identical warehouse images — an injectivity violation per
  Proposition 2.1, shrunk to a minimal pair.
* **UNKNOWN** — neither: the sufficient conditions did not apply and the
  bounded search found no collision. The prover is sound, not complete.

Two modes per spec file (the ``"prover"`` section, see
:mod:`repro.analysis.specfile`): ``with-complement`` proves the derived
``V ∪ C`` invertible; ``views-only`` asks whether ``V`` alone already
determines the sources (Example 2.3/2.4 shapes, select-only warehouses).
Every certificate also embeds the plan-dataflow verdict
(:mod:`repro.analysis.dataflow`): which source relations each update shape
must read — empty everywhere iff the spec is update-independent
(Theorem 4.1).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.algebra.evaluator import evaluate_all
from repro.algebra.expressions import Expression
from repro.algebra.parser import parse
from repro.schema.catalog import Catalog
from repro.views.psj import View
from repro.core.complement import (
    WarehouseSpec,
    provably_empty_complements,
    specify,
)
from repro.core.covers import enumerate_covers, ind_key_views
from repro.analysis.counterexample import (
    SearchOutcome,
    Witness,
    search_counterexample,
    verify_witness,
)
from repro.analysis.dataflow import (
    DataflowReport,
    spec_read_sets,
    views_only_read_sets,
)
from repro.analysis.report import display_path
from repro.analysis.specfile import LintTarget, ProverOptions, load_target

CERTIFICATE_VERSION = 1

PROVED = "PROVED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"

_REPLAY_SEEDS = (0, 1, 2)
_REPLAY_ROWS = 12
_REPLAY_DOMAIN = 8


class ProofResult(NamedTuple):
    """The prover's verdict for one spec file."""

    path: str
    verdict: str
    mode: str
    method: str
    detail: str
    certificate: Optional[Dict[str, object]] = None
    witness: Optional[Witness] = None
    expect: str = "proved"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the verdict matches the spec's declared expectation."""
        if self.error is not None:
            return False
        return self.verdict.lower() == self.expect

    def document(self) -> Dict[str, object]:
        """The per-file JSON document (written as the certificate artifact)."""
        out: Dict[str, object] = {
            "version": CERTIFICATE_VERSION,
            "spec": display_path(self.path),
            "verdict": self.verdict,
            "mode": self.mode,
            "method": self.method,
            "expect": self.expect,
            "detail": self.detail,
        }
        if self.certificate is not None:
            out["certificate"] = self.certificate
        if self.witness is not None:
            out["witness"] = self.witness.to_dict()
        if self.error is not None:
            out["error"] = self.error
        return out


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------


def _catalog_facts(catalog: Catalog) -> List[Dict[str, object]]:
    facts: List[Dict[str, object]] = []
    for schema in catalog.schemas():
        if schema.key is not None:
            facts.append(
                {
                    "kind": "key",
                    "relation": schema.name,
                    "attributes": list(schema.key),
                }
            )
    for ind in catalog.inclusions():
        facts.append(
            {
                "kind": "inclusion",
                "lhs": ind.lhs,
                "lhs_attributes": list(ind.lhs_attributes),
                "rhs": ind.rhs,
                "rhs_attributes": list(ind.rhs_attributes),
            }
        )
    return facts


def _cover_facts(spec: WarehouseSpec) -> List[Dict[str, object]]:
    """The Theorem 2.2 cover structure each inversion draws on."""
    if spec.method != "thm22":
        return []
    facts: List[Dict[str, object]] = []
    for schema in spec.catalog.schemas():
        elements = ind_key_views(spec.catalog, list(spec.views), schema.name)
        covers = enumerate_covers(elements, frozenset(schema.attribute_set))
        for cover in covers:
            facts.append(
                {
                    "kind": "cover",
                    "relation": schema.name,
                    "elements": [element.label for element in cover],
                }
            )
    return facts


def _empty_complement_facts(spec: WarehouseSpec) -> List[Dict[str, object]]:
    return [
        {
            "kind": "empty_complement",
            "relation": complement.relation,
            "complement": complement.name,
        }
        for complement in spec.complements.values()
        if complement.provably_empty
    ]


def build_certificate(
    spec: WarehouseSpec, dataflow: DataflowReport, mode: str
) -> Dict[str, object]:
    """The machine-checkable certificate for a successfully inverted spec.

    Contains the warehouse mapping ``W`` (every stored relation as an
    expression over sources), the per-relation Equation (4) inversion with
    the warehouse relations it references, the key/inclusion/cover/
    emptiness facts the construction used, and the dataflow read sets.
    All expressions are serialized in the parseable algebra syntax, so a
    consumer needs only :func:`repro.algebra.parser.parse` to re-check it.
    """
    catalog = spec.catalog
    warehouse = {
        name: str(expression)
        for name, expression in spec.definitions_over_sources().items()
    }
    warehouse_names = frozenset(spec.warehouse_names())
    inversion: Dict[str, object] = {}
    for relation in catalog.relation_names():
        expression = spec.inverse_for(relation)
        inversion[relation] = {
            "expression": str(expression),
            "references": sorted(
                expression.relation_names() & warehouse_names
            ),
        }
    facts = (
        _catalog_facts(catalog)
        + _empty_complement_facts(spec)
        + _cover_facts(spec)
    )
    return {
        "version": CERTIFICATE_VERSION,
        "mode": mode,
        "method": spec.method,
        "source_relations": {
            schema.name: list(schema.attributes) for schema in catalog.schemas()
        },
        "warehouse": warehouse,
        "inversion": inversion,
        "facts": facts,
        "dataflow": dataflow.to_dict(),
    }


def check_certificate(
    catalog: Catalog, certificate: Mapping[str, object]
) -> List[str]:
    """Independently validate a certificate; returns problem descriptions.

    Structural checks: every inversion references only declared warehouse
    relations (never a source — that would break update independence), and
    every key/inclusion fact is actually declared in the catalog. Numeric
    replay: for several seeded random constraint-satisfying databases,
    evaluate ``W``, then the inversions over the image alone, and require
    the exact original state back (the Proposition 2.1 round-trip).

    An empty result means the certificate stands on its own: nothing here
    consults the spec object that produced it.
    """
    from repro.workloads.generator import random_database

    problems: List[str] = []
    warehouse_raw = certificate.get("warehouse")
    inversion_raw = certificate.get("inversion")
    if not isinstance(warehouse_raw, Mapping) or not isinstance(
        inversion_raw, Mapping
    ):
        return ["certificate lacks 'warehouse'/'inversion' sections"]

    sources = frozenset(catalog.relation_names())
    warehouse_names = frozenset(str(name) for name in warehouse_raw)
    definitions: Dict[str, Expression] = {}
    inverses: Dict[str, Expression] = {}
    try:
        for name, text in warehouse_raw.items():
            definitions[str(name)] = parse(str(text))
        for relation, entry in inversion_raw.items():
            if not isinstance(entry, Mapping):
                problems.append(f"inversion of {relation!r} is not an object")
                continue
            inverses[str(relation)] = parse(str(entry["expression"]))
    except ReproError as exc:
        return [f"certificate expression failed to parse: {exc}"]

    missing = sources - frozenset(inverses)
    if missing:
        problems.append(f"no inversion recorded for relation(s) {sorted(missing)}")
    for relation, expression in inverses.items():
        source_refs = sorted(expression.relation_names() & sources)
        if source_refs:
            problems.append(
                f"inversion of {relation!r} references source relation(s) "
                f"{source_refs} — reconstruction must read the warehouse only"
            )
        unknown = sorted(
            expression.relation_names() - warehouse_names - sources
        )
        if unknown:
            problems.append(
                f"inversion of {relation!r} references undeclared relation(s) "
                f"{unknown}"
            )
    facts_raw = certificate.get("facts", [])
    if not isinstance(facts_raw, Sequence) or isinstance(facts_raw, str):
        problems.append("certificate 'facts' is not a list")
    else:
        for fact in facts_raw:
            if not isinstance(fact, Mapping):
                problems.append(f"malformed fact {fact!r}")
                continue
            problems.extend(_check_fact(catalog, fact))
    if problems:
        return problems

    # Numeric replay: W then W^{-1} must be the identity on random
    # constraint-satisfying states (sampled, seeded, deterministic).
    for seed in _REPLAY_SEEDS:
        state = random_database(
            seed, catalog, rows_per_relation=_REPLAY_ROWS, domain_size=_REPLAY_DOMAIN
        ).state()
        image = evaluate_all(definitions, state)
        rebuilt = evaluate_all(inverses, image)
        for relation in catalog.relation_names():
            if rebuilt[relation] != state[relation]:
                problems.append(
                    f"replay (seed {seed}): reconstruction of {relation!r} "
                    "does not match the source state"
                )
    return problems


def _check_fact(catalog: Catalog, fact: Mapping[str, object]) -> List[str]:
    kind = fact.get("kind")
    if kind == "key":
        relation = str(fact.get("relation"))
        if relation not in catalog:
            return [f"key fact names unknown relation {relation!r}"]
        declared = catalog.key(relation)
        if declared is None or list(declared) != list(fact.get("attributes", [])):
            return [
                f"key fact on {relation!r} does not match the declared key "
                f"{declared!r}"
            ]
        return []
    if kind == "inclusion":
        wanted = (
            str(fact.get("lhs")),
            tuple(str(a) for a in fact.get("lhs_attributes", ())),
            str(fact.get("rhs")),
            tuple(str(a) for a in fact.get("rhs_attributes", ())),
        )
        declared = {
            (ind.lhs, tuple(ind.lhs_attributes), ind.rhs, tuple(ind.rhs_attributes))
            for ind in catalog.inclusions()
        }
        if wanted not in declared:
            return [f"inclusion fact {wanted!r} is not declared in the catalog"]
        return []
    if kind in ("cover", "empty_complement"):
        return []  # derived facts; the numeric replay validates their effect
    return [f"unknown fact kind {kind!r}"]


# ----------------------------------------------------------------------
# The decision procedure
# ----------------------------------------------------------------------


def prove_target(
    target: LintTarget,
    method: str = "thm22",
    max_model_size: Optional[int] = None,
    mode: Optional[str] = None,
) -> ProofResult:
    """Decide one loaded spec file (see the module docstring for verdicts)."""
    options = target.prover
    chosen_mode = mode if mode is not None else options.mode
    model_size = (
        max_model_size if max_model_size is not None else options.max_model_size
    )
    catalog = target.catalog
    views = target.views
    all_psj = all(view.is_psj() for view in views)

    if chosen_mode == "with-complement" and all_psj:
        try:
            spec = specify(catalog, views, method=method)
        except ReproError as exc:
            return ProofResult(
                target.path, UNKNOWN, chosen_mode, method,
                "complement construction failed", expect=options.expect,
                error=str(exc),
            )
        return _proved(target, spec, spec_read_sets(spec), chosen_mode, method)

    if chosen_mode == "views-only" and all_psj:
        empty = provably_empty_complements(catalog, views)
        if empty >= frozenset(catalog.relation_names()):
            try:
                spec = specify(catalog, views, method=method)
            except ReproError as exc:
                return ProofResult(
                    target.path, UNKNOWN, chosen_mode, method,
                    "complement construction failed", expect=options.expect,
                    error=str(exc),
                )
            if not spec.complement_names():
                # Every complement is provably empty: the views alone are
                # invertible and the certificate's inversions mention view
                # names only.
                return _proved(
                    target, spec, views_only_read_sets(catalog, views),
                    chosen_mode, method,
                )

    # No proof applies — search for an injectivity violation of V itself.
    definitions = {view.name: view.definition for view in views}
    outcome = search_counterexample(
        catalog,
        definitions,
        max_model_size=model_size,
        domain_size=options.domain_size,
    )
    return _refuted_or_unknown(target, outcome, chosen_mode, method, definitions)


def _proved(
    target: LintTarget,
    spec: WarehouseSpec,
    dataflow: DataflowReport,
    mode: str,
    method: str,
) -> ProofResult:
    certificate = build_certificate(spec, dataflow, mode)
    problems = check_certificate(target.catalog, certificate)
    if problems:
        # The construction succeeded but its own evidence does not check
        # out — never claim PROVED on the strength of a broken certificate.
        return ProofResult(
            target.path, UNKNOWN, mode, method,
            "derived certificate failed self-validation",
            expect=target.prover.expect, error="; ".join(problems),
        )
    relations = len(target.catalog.relation_names())
    independent = bool(dataflow.update_independent)
    detail = (
        f"{relations} relation(s) reconstructible via Equation (4); "
        f"update-independent: {'yes' if independent else 'no'}"
    )
    return ProofResult(
        target.path, PROVED, mode, method, detail,
        certificate=certificate, expect=target.prover.expect,
    )


def _refuted_or_unknown(
    target: LintTarget,
    outcome: SearchOutcome,
    mode: str,
    method: str,
    definitions: Mapping[str, Expression],
) -> ProofResult:
    if outcome.witness is not None:
        problems = verify_witness(target.catalog, definitions, outcome.witness)
        if problems:
            return ProofResult(
                target.path, UNKNOWN, mode, method,
                "search produced an invalid witness",
                expect=target.prover.expect, error="; ".join(problems),
            )
        detail = (
            f"W is not injective: two distinct source states with identical "
            f"warehouse images, ≤{outcome.witness.max_rows_per_relation()} "
            f"row(s) per relation "
            f"({outcome.states_examined} state(s) examined)"
        )
        return ProofResult(
            target.path, REFUTED, mode, method, detail,
            witness=outcome.witness, expect=target.prover.expect,
        )
    coverage = "exhaustively" if outcome.exhausted else "partially (budget hit)"
    detail = (
        f"no sufficient condition applied and the bounded model space "
        f"({outcome.states_examined} state(s), searched {coverage}) "
        "contains no collision"
    )
    return ProofResult(
        target.path, UNKNOWN, mode, method, detail, expect=target.prover.expect
    )


def prove_file(
    path: str,
    method: str = "thm22",
    max_model_size: Optional[int] = None,
    mode: Optional[str] = None,
) -> ProofResult:
    """Load and decide one spec file; load failures become error results."""
    try:
        target = load_target(path)
    except (OSError, ValueError, ReproError) as exc:
        return ProofResult(
            path, UNKNOWN, mode or "with-complement", method,
            "spec file could not be loaded", error=str(exc),
        )
    return prove_target(
        target, method=method, max_model_size=max_model_size, mode=mode
    )


# ----------------------------------------------------------------------
# Rendering and exit codes
# ----------------------------------------------------------------------


def prove_exit_code(results: Sequence[ProofResult], strict: bool = False) -> int:
    """Process verdict: 0 all expectations met, 1 mismatch, 2 load error.

    Without ``strict``, an UNKNOWN verdict fails only when the spec
    expected ``refuted`` (a known-bad spec must stay refuted); with
    ``strict`` every UNKNOWN fails — CI requires a decisive verdict for
    every shipped spec.
    """
    if any(result.error is not None for result in results):
        return 2
    for result in results:
        if result.verdict == UNKNOWN:
            if strict or result.expect == "refuted":
                return 1
        elif not result.ok:
            return 1
    return 0


def render_text(results: Sequence[ProofResult], strict: bool = False) -> str:
    """Human-readable rendering for ``--format text``."""
    lines: List[str] = []
    for result in results:
        status = "" if result.ok else "  [unexpected]"
        if result.verdict == UNKNOWN and not strict and result.expect != "refuted":
            status = ""
        lines.append(
            f"{display_path(result.path)}: {result.verdict} "
            f"({result.mode}, {result.method}) — {result.detail}{status}"
        )
        if result.error is not None:
            lines.append(f"  error: {result.error}")
        if result.witness is not None:
            for line in result.witness.describe().splitlines():
                lines.append(f"  {line}")
    code = prove_exit_code(results, strict=strict)
    verdicts = [result.verdict for result in results]
    lines.append(
        f"{'FAIL' if code else 'OK'}: {len(results)} file(s), "
        f"{verdicts.count(PROVED)} proved, {verdicts.count(REFUTED)} refuted, "
        f"{verdicts.count(UNKNOWN)} unknown"
    )
    return "\n".join(lines)


def render_json(results: Sequence[ProofResult], strict: bool = False) -> str:
    """Machine-readable rendering for ``--format json`` (the CI artifact)."""
    document = {
        "version": CERTIFICATE_VERSION,
        "strict": strict,
        "ok": prove_exit_code(results, strict=strict) == 0,
        "summary": {
            "files": len(results),
            "proved": sum(1 for r in results if r.verdict == PROVED),
            "refuted": sum(1 for r in results if r.verdict == REFUTED),
            "unknown": sum(1 for r in results if r.verdict == UNKNOWN),
        },
        "results": [result.document() for result in results],
    }
    return json.dumps(document, indent=1, sort_keys=True)


def certificate_json(result: ProofResult) -> str:
    """One result's certificate document as deterministic JSON text."""
    return json.dumps(result.document(), indent=1, sort_keys=True) + "\n"
