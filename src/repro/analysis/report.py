"""Lint runs over spec files: reports, text/JSON rendering, exit codes.

This is the engine behind ``python -m repro lint``. Each file becomes a
:class:`FileReport`; the collection renders as human-readable text or as a
stable JSON document (the CI artifact format), and :func:`exit_code` turns
it into the process's verdict:

* ``0`` — no findings at or above the gate;
* ``1`` — findings at or above the gate (``WARNING`` by default; every
  severity with ``--strict``);
* ``2`` — a file could not be loaded at all.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.errors import ReproError
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.lint import lint_spec, lint_views
from repro.analysis.specfile import load_target

REPORT_VERSION = 1


def display_path(path: str) -> str:
    """``path`` relative to the working directory, with POSIX separators.

    Machine-readable artifacts (the lint JSON report, prover certificates)
    must be stable across CI runners, whose absolute checkout prefixes
    differ; a path below the working directory is therefore emitted
    repo-relative. Paths outside the working directory are returned as
    given (normalized to ``/`` separators).

    Examples
    --------
    >>> import os
    >>> display_path(os.path.join(os.getcwd(), "examples", "specs", "a.json"))
    'examples/specs/a.json'
    >>> display_path("examples/specs/a.json")
    'examples/specs/a.json'
    """
    candidate = Path(path)
    try:
        resolved = candidate.resolve()
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except (OSError, ValueError):
        return candidate.as_posix()


class FileReport(NamedTuple):
    """The lint outcome for one spec file."""

    path: str
    diagnostics: List[Diagnostic]
    ignored: Dict[str, str]
    error: Optional[str] = None


def lint_file(
    path: str,
    method: str = "thm22",
    deep: bool = True,
    extra_ignore: Sequence[str] = (),
) -> FileReport:
    """Lint one spec file end to end.

    Runs the definition-level lint first; when it reports no errors and
    every view is in the PSJ fragment, the warehouse specification is
    computed with ``method`` and the spec-level checks (W004x) run too —
    mirroring what a deployment would do. Union-of-PSJ fact tables
    (Section 5) are linted branch-by-branch only: they are specified by
    the star pipeline, not by :func:`repro.core.complement.specify`.
    """
    try:
        target = load_target(path)
    except (OSError, ValueError, ReproError) as exc:
        return FileReport(path, [], {}, error=str(exc))
    ignore = list(target.ignore) + list(extra_ignore)
    diagnostics = lint_views(target.catalog, target.views, deep=deep, ignore=ignore)
    clean = not any(d.severity is Severity.ERROR for d in diagnostics)
    if clean and all(view.is_psj() for view in target.views):
        from repro.core.complement import specify

        try:
            spec = specify(target.catalog, target.views, method=method)
        except ReproError as exc:
            return FileReport(path, diagnostics, target.ignore, error=str(exc))
        diagnostics = lint_spec(spec, deep=deep, ignore=ignore)
    if deep and clean:
        # The W02xx query-translation checks ride along, but only once
        # the definitions themselves are error-free — a view that does
        # not typecheck has no meaningful translation to lint. (Lazy
        # import: repro.analysis.query needs display_path from here.)
        from repro.analysis.diagnostics import filter_ignored, sort_diagnostics
        from repro.analysis.query_lint import lint_queries

        extra = filter_ignored(lint_queries(target, method=method), ignore)
        diagnostics = sort_diagnostics(list(diagnostics) + list(extra))
    return FileReport(path, diagnostics, target.ignore)


def exit_code(reports: Sequence[FileReport], strict: bool = False) -> int:
    """The process verdict for a lint run (see module docstring)."""
    if any(report.error is not None for report in reports):
        return 2
    gate = Severity.INFO if strict else Severity.WARNING
    for report in reports:
        if any(d.severity >= gate for d in report.diagnostics):
            return 1
    return 0


def _summary(reports: Sequence[FileReport]) -> Dict[str, int]:
    counts = {"errors": 0, "warnings": 0, "infos": 0, "files": len(reports)}
    for report in reports:
        for diagnostic in report.diagnostics:
            if diagnostic.severity is Severity.ERROR:
                counts["errors"] += 1
            elif diagnostic.severity is Severity.WARNING:
                counts["warnings"] += 1
            else:
                counts["infos"] += 1
    return counts


def render_text(reports: Sequence[FileReport], strict: bool = False) -> str:
    """The human-readable rendering used by ``--format text``."""
    lines: List[str] = []
    for report in reports:
        if report.error is not None:
            lines.append(f"{report.path}: failed to lint: {report.error}")
            continue
        if not report.diagnostics:
            lines.append(f"{report.path}: clean")
        else:
            lines.append(f"{report.path}:")
            for diagnostic in report.diagnostics:
                for line in diagnostic.render().splitlines():
                    lines.append(f"  {line}")
        for code, justification in report.ignored.items():
            lines.append(f"  ignored {code}: {justification}")
    counts = _summary(reports)
    verdict = "FAIL" if exit_code(reports, strict=strict) else "OK"
    lines.append(
        f"{verdict}: {counts['files']} file(s), {counts['errors']} error(s), "
        f"{counts['warnings']} warning(s), {counts['infos']} info(s)"
    )
    return "\n".join(lines)


def render_json(reports: Sequence[FileReport], strict: bool = False) -> str:
    """The machine-readable rendering used by ``--format json`` (CI artifact).

    File paths are emitted repo-relative (:func:`display_path`) so the
    uploaded artifact is byte-identical across runners with different
    checkout prefixes.
    """
    document = {
        "version": REPORT_VERSION,
        "strict": strict,
        "ok": exit_code(reports, strict=strict) == 0,
        "summary": _summary(reports),
        "files": [
            {
                "path": display_path(report.path),
                "error": report.error,
                "ignored": report.ignored,
                "diagnostics": [d.to_dict() for d in report.diagnostics],
            }
            for report in reports
        ],
    }
    return json.dumps(document, indent=1, sort_keys=True)
