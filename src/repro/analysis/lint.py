"""The warehouse lint pass: paper-semantics checks over view sets and specs.

The checks mirror the preconditions of the paper's results (codes detailed
in ``docs/lint.md``):

* **W001x — PSJ form.** Warehouse views must be PSJ views (Section 2);
  Section 5's union-integrated fact tables — a union whose members are PSJ
  over the same attributes — are recognized and accepted.
* **W002x — selection conditions.** Statically unsatisfiable conditions
  (the view is empty on every state) and tautological conjuncts, via
  :mod:`repro.analysis.satisfiability` with the conjunctive-query
  containment machinery as a second opinion.
* **W003x — Theorem 2.2 preconditions.** A relation whose attributes are
  projected away by every view needs a declared key and a cover from
  ``V_K^ind`` for the theorem's reconstruction to exist; these diagnostics
  name the missing key or the uncoverable attributes.
* **W004x — complement quality.** Stored complements that constraint
  analysis proves empty (Examples 2.3/2.4) and specs without a minimality
  certificate (Theorem 2.1 / Example 2.2).
* **W005x — view-set hygiene.** Duplicate names, names shadowing base
  relations, and provably equivalent view pairs.

Entry points: :func:`lint_views` for a catalog plus view definitions,
:func:`lint_spec` for a computed :class:`~repro.core.complement.WarehouseSpec`
(adds the W004x spec-level checks). Both also run the ``E01xx`` expression
typechecker. ``deep=False`` skips the potentially quadratic or
containment-based checks (W0041/W0042/W0052 and the CQ second opinion) —
the mode :meth:`~repro.core.warehouse.Warehouse.validate` uses on every
initialization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ExpressionError
from repro.algebra.conditions import TrueCondition
from repro.algebra.containment import UnsupportedFragment, is_equivalent, to_union_of_cqs
from repro.algebra.expressions import Expression, Scope, Union as UnionExpr
from repro.schema.catalog import Catalog
from repro.views.analysis import is_join_connected
from repro.views.psj import PSJView, View, as_psj
from repro.core.covers import ind_views
from repro.analysis.diagnostics import (
    Diagnostic,
    SourceSpan,
    filter_ignored,
    has_errors,
    make,
    sort_diagnostics,
)
from repro.analysis.satisfiability import (
    tautological_conjuncts,
    unsatisfiable_reason,
)
from repro.analysis.typecheck import typecheck_expression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.complement import WarehouseSpec


def _union_branches(expression: Expression) -> List[Expression]:
    """The non-union leaves of a (possibly nested) union tree."""
    branches: List[Expression] = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, UnionExpr):
            stack.extend((node.right, node.left))
        else:
            branches.append(node)
    return branches


def _repeats_relation(expression: Expression) -> Optional[str]:
    """A relation name occurring more than once in the tree, if any."""
    from repro.algebra.expressions import RelationRef

    seen: Dict[str, int] = {}
    for node in expression.walk():
        if isinstance(node, RelationRef):
            seen[node.name] = seen.get(node.name, 0) + 1
    for name, count in seen.items():
        if count > 1:
            return name
    return None


def psj_parts(view: View) -> Tuple[List[PSJView], List[Diagnostic]]:
    """The view's PSJ members, plus W001x diagnostics when it has none.

    A plain PSJ view yields one part. A union-integrated fact table
    (Section 5) yields one part per member. A definition outside both
    shapes yields no parts and a ``W0012`` (self-join) or ``W0011``
    (general non-PSJ) diagnostic.
    """
    branches = _union_branches(view.definition)
    parts: List[PSJView] = []
    diagnostics: List[Diagnostic] = []
    for branch in branches:
        try:
            parts.append(as_psj(branch))
            continue
        except ExpressionError as exc:
            where = SourceSpan(
                context=f"view {view.name}", snippet=str(branch)
            )
            repeated = _repeats_relation(branch)
            if repeated is not None:
                diagnostics.append(
                    make(
                        "W0012",
                        f"the join repeats relation {repeated!r}",
                        span=where,
                        hint="self-joins need a renamed copy of the relation; "
                        "they are outside the paper's PSJ fragment",
                    )
                )
            else:
                member = (
                    "a union member of the definition"
                    if len(branches) > 1
                    else "the definition"
                )
                diagnostics.append(
                    make(
                        "W0011",
                        f"{member} is not a PSJ view: {exc}",
                        span=where,
                        hint="write the view as pi_Z(sigma_C(R1 join ... "
                        "join Rk)), or as a union of such members sharing "
                        "one schema (a Section 5 fact table)",
                    )
                )
    if diagnostics:
        return [], diagnostics
    return parts, []


class _ViewRecord:
    """Per-view analysis state shared by the relation-level checks."""

    __slots__ = ("view", "parts", "clean", "part_attrs")

    def __init__(
        self,
        view: View,
        parts: List[PSJView],
        clean: bool,
        part_attrs: List[Tuple[str, ...]],
    ) -> None:
        self.view = view
        self.parts = parts
        self.clean = clean
        self.part_attrs = part_attrs


def _lint_conditions(
    record: _ViewRecord, catalog: Catalog, scope: Scope, deep: bool
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    name = record.view.name
    for part in record.parts:
        span = SourceSpan(context=f"view {name}", snippet=str(part.condition))
        reason = unsatisfiable_reason(part.condition)
        if reason is not None:
            diagnostics.append(
                make(
                    "W0021",
                    f"the selection condition can never hold: {reason}",
                    span=span,
                    hint="the view is empty on every state; fix the "
                    "condition or drop the view",
                )
            )
        elif deep and record.clean:
            # Second opinion: the CQ compiler returns no disjunct exactly
            # when equality reasoning proves the condition unsatisfiable.
            try:
                if not to_union_of_cqs(part.expression(), scope):
                    diagnostics.append(
                        make(
                            "W0021",
                            "containment analysis proves the view empty on "
                            "every state",
                            span=span,
                            hint="the equality conjuncts are contradictory",
                        )
                    )
            except (UnsupportedFragment, ExpressionError):
                pass
        if isinstance(part.condition, TrueCondition):
            # No selection at all — nothing the author could "drop".
            continue
        for conjunct in tautological_conjuncts(part.condition):
            diagnostics.append(
                make(
                    "W0022",
                    f"the conjunct {conjunct} is always true and filters "
                    "nothing",
                    span=span,
                    hint="drop the conjunct",
                )
            )
    return diagnostics


def _lint_join_graphs(
    record: _ViewRecord, catalog: Catalog
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for part in record.parts:
        if len(part.relations) <= 1:
            continue
        if any(relation not in catalog for relation in part.relations):
            continue  # E0101 already reported
        if not is_join_connected(part, catalog):
            diagnostics.append(
                make(
                    "W0013",
                    f"the join of {list(part.relations)} has a disconnected "
                    "join graph: some relations share no attributes "
                    "(cartesian product)",
                    span=SourceSpan(
                        context=f"view {record.view.name}",
                        snippet=str(part.expression()),
                    ),
                    hint="add the linking relation or attribute, or split "
                    "the view",
                )
            )
    return diagnostics


def _lint_coverage(
    records: Sequence[_ViewRecord], catalog: Catalog
) -> List[Diagnostic]:
    """The W003x pass: Theorem 2.2 preconditions, relation by relation."""
    diagnostics: List[Diagnostic] = []
    for schema in catalog.schemas():
        relation = schema.name
        attr_set = set(schema.attribute_set)
        involving: List[Tuple[_ViewRecord, PSJView, Tuple[str, ...]]] = []
        for record in records:
            for part, attrs in zip(record.parts, record.part_attrs):
                if part.involves(relation):
                    involving.append((record, part, attrs))
        span = SourceSpan(context=f"relation {relation}")
        if not involving:
            diagnostics.append(
                make(
                    "W0033",
                    f"no view involves {relation!r}; its complement stores "
                    "the relation in full",
                    span=span,
                    hint="add a view over the relation (even a plain copy) "
                    "or remove it from the catalog",
                )
            )
            continue
        if any(attr_set <= set(attrs) for _, _, attrs in involving):
            continue  # some view retains attr(R): R̂ is non-empty
        if schema.key is None:
            viewed = sorted({rec.view.name for rec, _, _ in involving})
            diagnostics.append(
                make(
                    "W0031",
                    f"views {viewed} project away attributes of "
                    f"{relation!r}, which declares no key: Theorem 2.2's "
                    "V_K^ind reconstruction is unavailable and the "
                    "complement stores the relation in full",
                    span=span,
                    hint=f"declare a key for {relation!r} so key-retaining "
                    "views can form covers",
                )
            )
            continue
        key = set(schema.key)
        covered: Set[str] = set()
        for record, part, attrs in involving:
            if key <= set(attrs):
                covered |= attr_set & set(attrs)
        for element in ind_views(catalog, relation):
            covered |= set(element.attributes)
        missing = sorted(attr_set - covered)
        if missing:
            diagnostics.append(
                make(
                    "W0032",
                    f"no cover of attr({relation}) exists: attributes "
                    f"{missing} are projected away by every key-retaining "
                    "view and no inclusion dependency supplies them",
                    span=span,
                    hint=f"retain {missing} in some view keeping the key "
                    f"{sorted(key)}, or declare a suitable inclusion "
                    "dependency",
                )
            )
    return diagnostics


def _lint_equivalence(
    records: Sequence[_ViewRecord], scope: Scope
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    clean = [record for record in records if record.clean]
    for i, first in enumerate(clean):
        for second in clean[i + 1 :]:
            if first.view.name == second.view.name:
                continue  # W0051 already covers duplicates
            try:
                equivalent = is_equivalent(
                    first.view.definition, second.view.definition, scope
                )
            except (UnsupportedFragment, ExpressionError):
                continue
            if equivalent:
                diagnostics.append(
                    make(
                        "W0052",
                        f"views {first.view.name!r} and {second.view.name!r} "
                        "are provably equivalent; materializing both stores "
                        "the same tuples twice",
                        span=SourceSpan(context=f"view {second.view.name}"),
                        hint="drop one of the two views",
                    )
                )
    return diagnostics


def lint_views(
    catalog: Catalog,
    views: Sequence[View],
    deep: bool = True,
    ignore: Sequence[str] = (),
) -> List[Diagnostic]:
    """Lint a warehouse definition: typecheck plus W001x-W003x, W005x.

    ``deep=False`` skips the pairwise-equivalence check (W0052) and the
    containment-based condition analysis — everything that remains is
    linear in the size of the definitions.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> lint_views(catalog, [View("Sold", parse("Sale join Emp"))])
    []
    """
    scope: Dict[str, Tuple[str, ...]] = {
        s.name: s.attributes for s in catalog.schemas()
    }
    diagnostics: List[Diagnostic] = []
    records: List[_ViewRecord] = []
    seen: Set[str] = set()
    for view in views:
        context = f"view {view.name}"
        if view.name in seen:
            diagnostics.append(
                make(
                    "W0051",
                    f"view name {view.name!r} is defined more than once",
                    span=SourceSpan(context=context),
                    hint="rename one of the definitions",
                )
            )
        seen.add(view.name)
        if view.name in catalog:
            diagnostics.append(
                make(
                    "W0053",
                    f"view name {view.name!r} shadows a base relation",
                    span=SourceSpan(context=context),
                    hint="rename the view; base and warehouse names share "
                    "one namespace in translated queries",
                )
            )
        _, type_diags = typecheck_expression(view.definition, scope, context)
        diagnostics.extend(type_diags)
        clean = not has_errors(type_diags)
        parts, form_diags = psj_parts(view)
        diagnostics.extend(form_diags)
        part_attrs: List[Tuple[str, ...]] = []
        usable_parts: List[PSJView] = []
        for part in parts:
            try:
                attrs = part.attributes(scope)
            except ExpressionError:
                continue  # E01xx already reported for this subtree
            usable_parts.append(part)
            part_attrs.append(attrs)
        record = _ViewRecord(view, usable_parts, clean, part_attrs)
        records.append(record)
        diagnostics.extend(_lint_join_graphs(record, catalog))
        diagnostics.extend(_lint_conditions(record, catalog, scope, deep))
    diagnostics.extend(_lint_coverage(records, catalog))
    if deep:
        diagnostics.extend(_lint_equivalence(records, scope))
    return sort_diagnostics(filter_ignored(diagnostics, ignore))


def lint_spec(
    spec: "WarehouseSpec",
    deep: bool = True,
    ignore: Sequence[str] = (),
) -> List[Diagnostic]:
    """Lint a computed spec: :func:`lint_views` plus the W004x checks.

    The W004x checks need the computed complement, so they only exist at
    spec level; ``deep=False`` skips them (they re-run the constraint
    emptiness analysis, which is the expensive part of ``specify``).
    """
    diagnostics = lint_views(spec.catalog, spec.views, deep=deep)
    if deep:
        from repro.core.complement import provably_empty_complements
        from repro.core.minimality import is_minimal_certificate

        for relation in sorted(
            provably_empty_complements(spec.catalog, spec.views)
        ):
            complement = spec.complements.get(relation)
            if complement is None or complement.provably_empty:
                continue
            diagnostics.append(
                make(
                    "W0041",
                    f"the stored complement {complement.name!r} of "
                    f"{relation!r} is empty on every "
                    "constraint-satisfying state",
                    span=SourceSpan(context=f"complement {complement.name}"),
                    hint="specify with prune_empty=True (method 'thm22') "
                    "to drop it from storage",
                )
            )
        try:
            certificate = is_minimal_certificate(spec)
        except ExpressionError:
            certificate = None
        if certificate is not None and not certificate.certified:
            diagnostics.append(
                make(
                    "W0042",
                    f"no minimality certificate: {certificate.reason}",
                    span=None,
                    hint="use method 'thm22', or restrict the definition "
                    "to SJ views (Theorem 2.1)",
                )
            )
    return sort_diagnostics(filter_ignored(diagnostics, ignore))
