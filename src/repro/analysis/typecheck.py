"""Schema-aware static typechecking of algebra expressions.

:meth:`Expression.attributes` is the library's *runtime* typechecker: it
raises :class:`~repro.errors.ExpressionError` at the first defect. This
module is its *static* twin: it infers output schemata bottom-up against a
scope, keeps going past defects, and reports every one as a structured
:class:`~repro.analysis.diagnostics.Diagnostic` with a path into the tree
(``E01xx`` codes). Where inference cannot recover (an unknown relation), the
affected subtree is skipped rather than cascading follow-on errors.

The guarantee tied to this module (property-tested in
``tests/analysis/test_property_lint.py``): an expression with no ``ERROR``
diagnostics under a scope never raises a schema error when its attributes
are computed or when it is evaluated over a state matching that scope.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.algebra.conditions import (
    AttributeRef,
    Comparison,
    Condition,
    And,
    Not,
    Or,
)
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    Rename,
    RelationRef,
    Scope,
    Select,
    Union,
)
from repro.algebra.visitors import Path, format_path
from repro.analysis.diagnostics import Diagnostic, SourceSpan, make


def comparisons(condition: Condition) -> Iterator[Comparison]:
    """All :class:`Comparison` atoms inside a condition tree."""
    stack: List[Condition] = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, Comparison):
            yield node
        elif isinstance(node, (And, Or)):
            stack.extend(node.parts)
        elif isinstance(node, Not):
            stack.append(node.part)


class _Checker:
    """One typechecking run: accumulates diagnostics while inferring."""

    def __init__(self, root: Expression, scope: Scope, context: str) -> None:
        self.root = root
        self.scope = scope
        self.context = context
        self.diagnostics: List[Diagnostic] = []

    def span(self, path: Path, node: Expression) -> SourceSpan:
        return SourceSpan(
            context=self.context,
            path=format_path(self.root, path),
            snippet=str(node),
        )

    def emit(
        self,
        code: str,
        message: str,
        path: Path,
        node: Expression,
        hint: str = "",
    ) -> None:
        self.diagnostics.append(
            make(code, message, span=self.span(path, node), hint=hint)
        )

    # ------------------------------------------------------------------

    def infer(self, node: Expression, path: Path) -> Optional[Tuple[str, ...]]:
        """The output attributes of ``node``, or ``None`` after an E0101.

        Other defects report a diagnostic but keep the *declared* output
        schema (a bad projection still outputs its projection list), so one
        mistake does not drown the rest of the tree in follow-on errors.
        """
        if isinstance(node, RelationRef):
            attrs = self.scope.get(node.name)
            if attrs is None:
                self.emit(
                    "E0101",
                    f"relation {node.name!r} is not declared",
                    path,
                    node,
                    hint="declare the relation in the catalog or fix the name",
                )
                return None
            return tuple(attrs)
        if isinstance(node, Empty):
            return node.attrs
        if isinstance(node, Project):
            return self._infer_project(node, path)
        if isinstance(node, Select):
            return self._infer_select(node, path)
        if isinstance(node, Join):
            return self._infer_join(node, path)
        if isinstance(node, (Union, Difference)):
            return self._infer_union_like(node, path)
        if isinstance(node, Rename):
            return self._infer_rename(node, path)
        raise TypeError(f"unknown expression node {type(node).__name__}")

    def _infer_project(
        self, node: Project, path: Path
    ) -> Optional[Tuple[str, ...]]:
        child = self.infer(node.child, path + (0,))
        if child is not None:
            missing = set(node.attrs) - set(child)
            if missing:
                self.emit(
                    "E0102",
                    f"projection onto {sorted(missing)}: the input only "
                    f"produces {sorted(child)}",
                    path,
                    node,
                    hint="project onto a subset of the input's attributes",
                )
        return node.attrs

    def _infer_select(
        self, node: Select, path: Path
    ) -> Optional[Tuple[str, ...]]:
        child = self.infer(node.child, path + (0,))
        if child is not None:
            missing = node.condition.attributes() - set(child)
            if missing:
                self.emit(
                    "E0103",
                    f"condition {node.condition} mentions {sorted(missing)}, "
                    f"not attributes of the input {sorted(child)}",
                    path,
                    node,
                    hint="apply the selection below the projection that "
                    "drops these attributes, or keep them",
                )
        for comparison in comparisons(node.condition):
            if (
                isinstance(comparison.left, AttributeRef)
                and isinstance(comparison.right, AttributeRef)
                and comparison.left.name == comparison.right.name
            ):
                verdict = (
                    "constant true"
                    if comparison.op in ("=", "<=", ">=")
                    else "constant false"
                )
                self.emit(
                    "E0108",
                    f"comparison {comparison} relates the attribute "
                    f"{comparison.left.name!r} to itself ({verdict})",
                    path,
                    node,
                    hint="compare against a different attribute or a constant",
                )
        return child

    def _infer_join(self, node: Join, path: Path) -> Optional[Tuple[str, ...]]:
        left = self.infer(node.left, path + (0,))
        right = self.infer(node.right, path + (1,))
        if left is None or right is None:
            return None
        left_set = set(left)
        return left + tuple(a for a in right if a not in left_set)

    def _infer_union_like(
        self, node: Expression, path: Path
    ) -> Optional[Tuple[str, ...]]:
        code = "E0104" if isinstance(node, Union) else "E0105"
        word = "union" if isinstance(node, Union) else "difference"
        left_node, right_node = node.children()
        left = self.infer(left_node, path + (0,))
        right = self.infer(right_node, path + (1,))
        if left is None or right is None:
            return left or right
        if set(left) != set(right):
            self.emit(
                code,
                f"{word} of incompatible schemata: left produces "
                f"{sorted(left)}, right produces {sorted(right)}",
                path,
                node,
                hint="project both sides onto the same attribute set first",
            )
        return left

    def _infer_rename(
        self, node: Rename, path: Path
    ) -> Optional[Tuple[str, ...]]:
        child = self.infer(node.child, path + (0,))
        if child is None:
            return None
        unknown = set(node.mapping) - set(child)
        if unknown:
            self.emit(
                "E0106",
                f"rename of {sorted(unknown)}: not attributes of the input "
                f"{sorted(child)}",
                path,
                node,
                hint="rename only attributes the input produces",
            )
        out = tuple(node.mapping.get(a, a) for a in child)
        if len(set(out)) != len(out):
            collided = sorted({a for a in out if out.count(a) > 1})
            self.emit(
                "E0107",
                f"rename {node.mapping} collides on {collided}",
                path,
                node,
                hint="pick target names distinct from the surviving attributes",
            )
            return None
        return out


def typecheck_expression(
    expression: Expression, scope: Scope, context: str = "expression"
) -> Tuple[Optional[Tuple[str, ...]], List[Diagnostic]]:
    """Typecheck ``expression`` against ``scope``.

    Returns ``(attributes, diagnostics)`` where ``attributes`` is the
    inferred output schema (``None`` when inference could not complete) and
    ``diagnostics`` the ``E01xx`` findings, outermost-first.

    Examples
    --------
    >>> from repro.algebra.parser import parse
    >>> attrs, diags = typecheck_expression(
    ...     parse("pi[item, age](Sale)"), {"Sale": ("item", "clerk")}
    ... )
    >>> attrs
    ('item', 'age')
    >>> [d.code for d in diags]
    ['E0102']
    """
    checker = _Checker(expression, scope, context)
    attributes = checker.infer(expression, ())
    return attributes, checker.diagnostics


def typecheck_aggregate(
    name: str,
    group_by: Tuple[str, ...],
    measure_attributes: Tuple[Optional[str], ...],
    source_attributes: Tuple[str, ...],
) -> List[Diagnostic]:
    """Typecheck an aggregate view's grouping and measures (E0109/E0110).

    ``measure_attributes`` lists each measure's input attribute (``None``
    for ``count``); ``source_attributes`` is the schema of the warehouse
    relation the aggregate rides on.
    """
    diagnostics: List[Diagnostic] = []
    available = set(source_attributes)
    span = SourceSpan(context=f"aggregate {name}")
    for attribute in group_by:
        if attribute not in available:
            diagnostics.append(
                make(
                    "E0109",
                    f"group-by attribute {attribute!r} is not produced by "
                    f"the source ({sorted(available)})",
                    span=span,
                    hint="group by attributes of the source relation",
                )
            )
    for attribute in measure_attributes:
        if attribute is not None and attribute not in available:
            diagnostics.append(
                make(
                    "E0110",
                    f"measure attribute {attribute!r} is not produced by "
                    f"the source ({sorted(available)})",
                    span=span,
                    hint="measure an attribute of the source relation",
                )
            )
    return diagnostics
