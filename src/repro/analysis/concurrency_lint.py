"""AST-level concurrency lint for the integrator/sharding runtime (W01xx).

The shard-independence prover (:mod:`repro.analysis.concurrency`) decides
*algebraic* soundness: batches commute, shard images assemble. Those
verdicts rest on three *protocol* invariants of the runtime code itself,
which this pass checks statically against the actual sources — the same
check-the-checker idea as the hot-path lint, but emitted as first-class
:class:`~repro.analysis.diagnostics.Diagnostic`\\ s:

``W0101`` — **commit atomicity**. Any function named ``commit`` (or
``*_commit``) publishes a batch by capturing state references; it must be
synchronous and must not suspend (no ``await``/``yield``, no calls to
suspending primitives like ``acquire``/``sleep``/``wait``). A suspension
point inside the commit block lets a reader observe a torn batch.

``W0102`` — **lock order**. Inside ``async`` functions, every
``.acquire()`` must happen in a loop over a *sorted* shard index sequence
(directly ``for i in sorted(...)`` or over a variable assigned from
``sorted(...)``). Two workers acquiring shard locks in different orders
deadlock.

``W0103`` — **lock-scoped mutation**. Inside ``async`` functions, shared
warehouse state may only change between acquisition and release: calls to
``.apply_to_shard(...)`` / ``.commit(...)`` must sit inside a ``try`` whose
``finally`` releases the locks.

Run via ``python -m repro prove-sharding`` (the lint rides along with the
prover) or programmatically via :func:`lint_concurrency`. The default
targets are this repo's own concurrency-bearing modules —
:mod:`repro.core.sharding` and :mod:`repro.integrator.async_integrator` —
so CI re-proves the protocol invariants on every change to them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, SourceSpan, make
from repro.analysis.report import display_path

#: Calls that suspend (or hand back a coroutine that should have been
#: awaited) — forbidden inside a commit block.
SUSPENDING_CALLS = frozenset(
    {"sleep", "acquire", "wait", "wait_for", "gather", "send", "get", "next_batch"}
)

#: Mutating warehouse entry points that must stay inside a lock scope.
LOCKED_CALLS = frozenset({"apply_to_shard", "commit"})

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def default_lint_files() -> List[str]:
    """The concurrency-bearing runtime modules this repo ships."""
    import repro.core.sharding
    import repro.integrator.async_integrator

    return [
        str(repro.core.sharding.__file__),
        str(repro.integrator.async_integrator.__file__),
    ]


def _call_name(node: ast.Call) -> Optional[str]:
    """The called attribute/function name, if syntactically evident."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_commit_function(node: FunctionNode) -> bool:
    return node.name == "commit" or node.name.endswith("_commit")


def _own_statements(node: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _span(path: str, lines: Sequence[str], node: ast.AST) -> SourceSpan:
    lineno = getattr(node, "lineno", 0)
    snippet = (
        lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
    )
    return SourceSpan(context=f"{display_path(path)}:{lineno}", snippet=snippet)


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _check_commit_functions(
    tree: ast.AST, path: str, lines: Sequence[str]
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_commit_function(node):
            continue
        if isinstance(node, ast.AsyncFunctionDef):
            findings.append(
                make(
                    "W0101",
                    f"commit function {node.name!r} is declared async: a "
                    "commit must capture every touched shard's state in one "
                    "synchronous block",
                    span=_span(path, lines, node),
                    hint="make the commit synchronous; await before or after it",
                )
            )
        for stmt in _own_statements(node):
            if isinstance(
                stmt, (ast.Await, ast.Yield, ast.YieldFrom, ast.AsyncFor, ast.AsyncWith)
            ):
                findings.append(
                    make(
                        "W0101",
                        f"commit function {node.name!r} suspends "
                        f"({type(stmt).__name__}): readers can observe a "
                        "torn batch",
                        span=_span(path, lines, stmt),
                        hint="hoist the suspension point out of the commit block",
                    )
                )
            elif isinstance(stmt, ast.Call):
                called = _call_name(stmt)
                if called in SUSPENDING_CALLS:
                    findings.append(
                        make(
                            "W0101",
                            f"commit function {node.name!r} calls suspending "
                            f"primitive {called!r}",
                            span=_span(path, lines, stmt),
                            hint="a commit block must be straight-line synchronous code",
                        )
                    )
    return findings


def _check_async_protocol(
    tree: ast.AST, path: str, lines: Sequence[str]
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        sorted_names = {
            target.id
            for stmt in _own_statements(node)
            if isinstance(stmt, ast.Assign) and _is_sorted_call(stmt.value)
            for target in stmt.targets
            if isinstance(target, ast.Name)
        }

        def ordered_iter(loop: ast.For) -> bool:
            if _is_sorted_call(loop.iter):
                return True
            return (
                isinstance(loop.iter, ast.Name) and loop.iter.id in sorted_names
            )

        def guarded_try(trial: ast.Try) -> bool:
            for final_stmt in trial.finalbody:
                for sub in ast.walk(final_stmt):
                    if isinstance(sub, ast.Call) and _call_name(sub) == "release":
                        return True
            return False

        def visit(
            stmt: ast.AST,
            loops: Tuple[ast.For, ...],
            tries: Tuple[ast.Try, ...],
        ) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if isinstance(stmt, ast.Call):
                called = _call_name(stmt)
                if called == "acquire" and not any(
                    ordered_iter(loop) for loop in loops
                ):
                    findings.append(
                        make(
                            "W0102",
                            f"async function {node.name!r} acquires a lock "
                            "outside a loop over sorted(...) shard indices",
                            span=_span(path, lines, stmt),
                            hint="acquire shard locks in ascending index order "
                            "(for index in sorted(parts): ...)",
                        )
                    )
                elif called in LOCKED_CALLS and not any(
                    guarded_try(trial) for trial in tries
                ):
                    findings.append(
                        make(
                            "W0103",
                            f"async function {node.name!r} calls "
                            f"{called!r} outside a try/finally that releases "
                            "the shard locks",
                            span=_span(path, lines, stmt),
                            hint="mutate shared warehouse state only between "
                            "acquire and a finally: release()",
                        )
                    )
            next_loops = loops + (stmt,) if isinstance(stmt, ast.For) else loops
            next_tries = tries + (stmt,) if isinstance(stmt, ast.Try) else tries
            for child in ast.iter_child_nodes(stmt):
                visit(child, next_loops, next_tries)

        for stmt in node.body:
            visit(stmt, (), ())
    return findings


def lint_file(path: str) -> List[Diagnostic]:
    """Lint one Python source file for W01xx protocol violations."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return _check_commit_functions(tree, path, lines) + _check_async_protocol(
        tree, path, lines
    )


def lint_concurrency(paths: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    """Run the W01xx concurrency lint over ``paths`` (default: own runtime).

    Findings are deduplicated per (code, span) and sorted in display order
    by the caller; here they come back in file order.
    """
    targets = list(paths) if paths is not None else default_lint_files()
    findings: List[Diagnostic] = []
    seen: Dict[Tuple[str, str], bool] = {}
    for path in targets:
        for diagnostic in lint_file(path):
            key = (
                diagnostic.code,
                diagnostic.span.context if diagnostic.span else "",
            )
            if key in seen:
                continue
            seen[key] = True
            findings.append(diagnostic)
    return findings
