"""Star schemata (Section 5): union-integrated fact tables.

Section 5 of the paper observes that warehouses are commonly organized as
star schemata — dimension tables plus fact tables "which are extracted by
PSJ queries from the sources and integrated by union" — and that although
union views cannot be used for computing complements in general, "the
presence of foreign keys allows us to uniquely determine the origin of each
tuple in a fact table by selecting on the dimension attributes. Thus, we can
even exploit fact tables, that are integrated by union, for computing the
warehouse complement."

This module implements exactly that trick:

1. each fact-table *member* (one PSJ extraction per source/location) is
   wrapped in a selection pinning its origin attribute, making member
   origins disjoint;
2. the complement machinery (Theorem 2.2) runs over the member views and
   dimension views as if each member were materialized separately;
3. in the resulting complement and inverse expressions, every reference to
   member ``m`` is replaced by ``sigma_{origin = m}(F)`` — a selection on
   the single materialized fact table ``F`` (the union of the members).

The result is an ordinary :class:`~repro.core.complement.WarehouseSpec`
whose stored relations are the dimension views, the fact table, and the
complement — query translation and incremental maintenance work unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.errors import WarehouseError
from repro.algebra.conditions import Comparison, attr as attr_ref, const
from repro.algebra.expressions import Expression, RelationRef, Select, Union
from repro.algebra.rewriting import substitute
from repro.schema.catalog import Catalog
from repro.schema.schema import check_name
from repro.views.psj import View, as_psj
from repro.core.complement import WarehouseSpec, specify


class FactTable:
    """A fact table integrated by union from per-origin PSJ extractions.

    Parameters
    ----------
    name:
        The materialized fact table's name.
    origin_attribute:
        The dimension attribute that identifies each tuple's origin (a
        foreign key into a dimension table, e.g. a location id).
    members:
        ``{origin value: PSJ expression}`` — one extraction per origin. Each
        member expression is automatically wrapped in
        ``sigma_{origin_attribute = value}`` so member origins are disjoint
        (which is what makes ``sigma_{origin = m}(F)`` recover member ``m``
        exactly).
    """

    def __init__(
        self,
        name: str,
        origin_attribute: str,
        members: Mapping[object, Expression],
    ) -> None:
        self.name = check_name(name, "fact table")
        self.origin_attribute = origin_attribute
        if not members:
            raise WarehouseError(f"fact table {name!r} needs at least one member")
        self.members: Dict[object, Expression] = {}
        for value, expression in members.items():
            condition = Comparison(attr_ref(origin_attribute), "=", const(value))
            self.members[value] = Select(expression, condition)

    def member_view_name(self, value: object) -> str:
        """The internal view name used for one member during specification."""
        token = "".join(ch if ch.isalnum() else "_" for ch in str(value))
        return f"{self.name}__at_{token}"

    def member_views(self) -> List[View]:
        """The members as named views (the complement machinery's input)."""
        return [
            View(self.member_view_name(value), expression)
            for value, expression in self.members.items()
        ]

    def union_definition(self) -> Expression:
        """The fact table definition: the union of all members."""
        expressions = list(self.members.values())
        out: Expression = expressions[0]
        for expression in expressions[1:]:
            out = Union(out, expression)
        return out

    def member_selections(self) -> Dict[str, Expression]:
        """``{member view name: sigma_{origin = value}(F)}`` substitutions."""
        out: Dict[str, Expression] = {}
        for value in self.members:
            condition = Comparison(attr_ref(self.origin_attribute), "=", const(value))
            out[self.member_view_name(value)] = Select(RelationRef(self.name), condition)
        return out

    def __repr__(self) -> str:
        return (
            f"FactTable({self.name!r}, origin={self.origin_attribute!r}, "
            f"{len(self.members)} members)"
        )


def star_specify(
    catalog: Catalog,
    fact_tables: Sequence[FactTable],
    dimension_views: Sequence[View] = (),
    method: str = "thm22",
    **options,
) -> WarehouseSpec:
    """Section 5's star-schema specification.

    Runs the ordinary complement computation over the *member* views plus
    the dimension views, then folds every member reference into a selection
    on its fact table. The returned spec stores one relation per fact table
    (the union), the dimension views, and the complement.

    Examples
    --------
    See ``examples/star_schema.py`` and ``tests/core/test_star.py``.
    """
    member_views: List[View] = []
    substitutions: Dict[str, Expression] = {}
    scope = {s.name: s.attributes for s in catalog.schemas()}
    for fact in fact_tables:
        for view in fact.member_views():
            as_psj(view.definition, scope)  # members must be PSJ
            member_views.append(view)
        substitutions.update(fact.member_selections())

    flat_spec = specify(
        catalog, member_views + list(dimension_views), method=method, **options
    )

    final_views: List[View] = list(dimension_views)
    for fact in fact_tables:
        final_views.append(View(fact.name, fact.union_definition()))

    complements = {}
    for relation, complement in flat_spec.complements.items():
        folded = substitute(complement.definition, substitutions)
        complements[relation] = type(complement)(
            complement.name, relation, folded, complement.provably_empty
        )
    inverses = {
        relation: substitute(expression, substitutions)
        for relation, expression in flat_spec.inverses.items()
    }
    return WarehouseSpec(catalog, final_views, complements, inverses, flat_spec.method)
