"""Core: the paper's contribution — complements and independent warehouses.

* :mod:`repro.core.covers` — ``V_K``, ``V_K^ind``, cover enumeration
  ``C_R^ind`` (Theorem 2.2 notation, illustrated in Example 2.3);
* :mod:`repro.core.complement` — Proposition 2.2 and Theorem 2.2 complement
  computation plus the inverse mapping ``W^{-1}`` (Equation (4));
* :mod:`repro.core.independence` — Proposition 2.1 (injectivity) and
  complement verification;
* :mod:`repro.core.translation` — query translation ``Q^ = Q ∘ W^{-1}``
  (Theorem 3.1);
* :mod:`repro.core.maintenance` — maintenance expressions and incremental
  refresh (Theorem 4.1, Example 4.1);
* :mod:`repro.core.warehouse` — the Section 5 specification algorithm and the
  runtime :class:`~repro.core.warehouse.Warehouse`;
* :mod:`repro.core.minimality` — the Definition 2.1 view ordering and
  Theorem 2.1 certificates;
* :mod:`repro.core.selfmaint` — update independence without complements
  (Section 4 end);
* :mod:`repro.core.star` / :mod:`repro.core.aggregates` — Section 5 star
  schemata and aggregate views;
* :mod:`repro.core.sharding` — key-partitioned
  :class:`~repro.core.sharding.ShardedWarehouse` with MVCC snapshot commits.
"""

from repro.core.complement import (
    ComplementView,
    WarehouseSpec,
    complement_prop22,
    complement_thm22,
    complement_trivial,
    specify,
)
from repro.core.auxviews import AuxiliaryViewSet, auxiliary_views
from repro.core.hybrid import HybridWarehouse
from repro.core.covers import CoverElement, enumerate_covers, ind_views, key_views
from repro.core.independence import (
    enumerate_states,
    is_complement,
    verify_complement,
    verify_one_to_one,
)
from repro.core.maintenance import (
    MaintenancePlan,
    maintenance_expressions,
    refresh_state,
)
from repro.core.minimality import (
    compare_view_sets,
    is_minimal_certificate,
    smaller_on_states,
)
from repro.core.selfmaint import (
    is_select_only_update_independent,
    self_maintenance_analysis,
)
from repro.core.sharding import (
    CommitRecord,
    ShardedSnapshot,
    ShardedWarehouse,
    ShardRouter,
    ShardRouting,
)
from repro.core.translation import answer_query, translate_query
from repro.core.warehouse import Warehouse

__all__ = [
    "AuxiliaryViewSet",
    "CommitRecord",
    "ComplementView",
    "CoverElement",
    "HybridWarehouse",
    "MaintenancePlan",
    "ShardRouter",
    "ShardRouting",
    "ShardedSnapshot",
    "ShardedWarehouse",
    "Warehouse",
    "WarehouseSpec",
    "answer_query",
    "auxiliary_views",
    "compare_view_sets",
    "complement_prop22",
    "complement_thm22",
    "complement_trivial",
    "enumerate_covers",
    "enumerate_states",
    "ind_views",
    "is_complement",
    "is_minimal_certificate",
    "is_select_only_update_independent",
    "key_views",
    "maintenance_expressions",
    "refresh_state",
    "self_maintenance_analysis",
    "smaller_on_states",
    "specify",
    "translate_query",
    "verify_complement",
    "verify_one_to_one",
]
