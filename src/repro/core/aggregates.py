"""Materialized aggregate views over fact tables (Section 5, last paragraph).

The paper positions aggregates carefully: "aggregate queries cannot be
exploited when computing complements, [but] they do not restrict the
applicability of our approach either: the fact tables can be maintained as
described above using PSJ views, whereas view maintenance algorithms for
aggregate queries ... can be used to maintain materialized aggregate
queries."

Accordingly, an :class:`AggregateView` here sits *on top of* a maintained
warehouse relation (typically a fact table): the warehouse folds source
updates into the fact table via the complement machinery, and the resulting
fact-table delta drives summary-delta-style aggregate maintenance (after
Mumick/Quass/Mumick, SIGMOD 1997):

* COUNT and SUM (and hence AVG) are maintained purely from the delta;
* MIN/MAX are maintained from the delta on insertion; a deletion that hits
  the current extremum recomputes just the affected groups from the (still
  warehouse-local) new fact table state.

Set semantics throughout, matching the rest of the library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WarehouseError
from repro.schema.schema import check_name
from repro.storage.relation import Relation
from repro.storage.update import Delta

SUPPORTED = ("count", "sum", "avg", "min", "max")


class Measure:
    """One aggregate measure: ``func`` over ``attribute``, named ``output``.

    ``count`` ignores ``attribute`` (it counts tuples per group) — pass
    ``None``.
    """

    __slots__ = ("func", "attribute", "output")

    def __init__(self, func: str, attribute: Optional[str], output: str) -> None:
        if func not in SUPPORTED:
            raise WarehouseError(
                f"unsupported aggregate {func!r}; supported: {SUPPORTED}"
            )
        if func != "count" and attribute is None:
            raise WarehouseError(f"aggregate {func!r} requires an attribute")
        self.func = func
        self.attribute = attribute
        self.output = check_name(output, "measure")

    def __repr__(self) -> str:
        arg = self.attribute if self.attribute is not None else "*"
        return f"{self.output}={self.func}({arg})"


def count(output: str = "n") -> Measure:
    """``COUNT(*)`` per group."""
    return Measure("count", None, output)


def agg_sum(attribute: str, output: Optional[str] = None) -> Measure:
    """``SUM(attribute)`` per group."""
    return Measure("sum", attribute, output or f"sum_{attribute}")


def agg_avg(attribute: str, output: Optional[str] = None) -> Measure:
    """``AVG(attribute)`` per group."""
    return Measure("avg", attribute, output or f"avg_{attribute}")


def agg_min(attribute: str, output: Optional[str] = None) -> Measure:
    """``MIN(attribute)`` per group."""
    return Measure("min", attribute, output or f"min_{attribute}")


def agg_max(attribute: str, output: Optional[str] = None) -> Measure:
    """``MAX(attribute)`` per group."""
    return Measure("max", attribute, output or f"max_{attribute}")


class AggregateView:
    """A materialized group-by aggregate over one warehouse relation.

    Parameters
    ----------
    name:
        Name of the aggregate view.
    source:
        Name of the warehouse relation it aggregates (e.g. a fact table).
    group_by:
        Grouping attributes.
    measures:
        The aggregate measures.

    Examples
    --------
    >>> fact = Relation(("loc", "amount"), [("N", 10), ("N", 20), ("S", 5)])
    >>> view = AggregateView("ByLoc", "F", ("loc",), [count(), agg_sum("amount")])
    >>> view.recompute(fact)
    >>> sorted(view.table().rows)
    [('N', 2, 30), ('S', 1, 5)]
    """

    def __init__(
        self,
        name: str,
        source: str,
        group_by: Sequence[str],
        measures: Sequence[Measure],
    ) -> None:
        self.name = check_name(name, "aggregate view")
        self.source = source
        self.group_by = tuple(group_by)
        self.measures = tuple(measures)
        if not self.measures:
            raise WarehouseError("an aggregate view needs at least one measure")
        # Distinct accumulator slots (sum/avg over the same attribute share
        # one sum slot; min/max each get their own).
        self._sum_attrs = tuple(
            sorted({m.attribute for m in self.measures if m.func in ("sum", "avg")})
        )
        self._min_attrs = tuple(
            sorted({m.attribute for m in self.measures if m.func == "min"})
        )
        self._max_attrs = tuple(
            sorted({m.attribute for m in self.measures if m.func == "max"})
        )
        # Per-group accumulators: group key -> {"count": int, per-measure state}.
        self._groups: Dict[tuple, Dict[str, object]] = {}
        self._attrs: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------

    def _positions(self, relation: Relation) -> Tuple[Tuple[int, ...], Dict[str, int]]:
        attrs = relation.attributes
        try:
            group_pos = tuple(attrs.index(a) for a in self.group_by)
        except ValueError as exc:
            raise WarehouseError(
                f"group-by attributes {self.group_by} not all in {attrs}"
            ) from exc
        measure_pos: Dict[str, int] = {}
        for measure in self.measures:
            if measure.attribute is not None:
                if measure.attribute not in attrs:
                    raise WarehouseError(
                        f"measure attribute {measure.attribute!r} not in {attrs}"
                    )
                measure_pos[measure.attribute] = attrs.index(measure.attribute)
        return group_pos, measure_pos

    def recompute(self, source: Relation) -> None:
        """Recompute all groups from scratch."""
        self._attrs = source.attributes
        group_pos, measure_pos = self._positions(source)
        self._groups = {}
        for row in source:
            key = tuple(row[p] for p in group_pos)
            self._accumulate(key, row, measure_pos, sign=+1)

    def _accumulate(
        self, key: tuple, row: tuple, measure_pos: Dict[str, int], sign: int
    ) -> None:
        state = self._groups.get(key)
        if state is None:
            if sign < 0:
                raise WarehouseError(
                    f"aggregate {self.name}: delete from unknown group {key!r}"
                )
            state = {"count": 0}
            for attribute in self._sum_attrs:
                state[f"sum_{attribute}"] = 0
            for attribute in self._min_attrs:
                state[f"min_{attribute}"] = None
            for attribute in self._max_attrs:
                state[f"max_{attribute}"] = None
            self._groups[key] = state
        state["count"] += sign
        for attribute in self._sum_attrs:
            value = row[measure_pos[attribute]]
            state[f"sum_{attribute}"] = state[f"sum_{attribute}"] + sign * value
        if sign > 0:
            for attribute in self._min_attrs:
                value = row[measure_pos[attribute]]
                slot = f"min_{attribute}"
                current = state[slot]
                state[slot] = value if current is None or value < current else current
            for attribute in self._max_attrs:
                value = row[measure_pos[attribute]]
                slot = f"max_{attribute}"
                current = state[slot]
                state[slot] = value if current is None or value > current else current

    def apply_delta(self, delta: Delta, new_source: Relation) -> None:
        """Fold a source delta into the aggregate (summary-delta style).

        ``new_source`` is the source relation *after* the delta; it is only
        consulted to re-derive MIN/MAX for groups whose extremum was deleted
        and to validate schema positions.
        """
        if self._attrs is None:
            self.recompute(new_source)
            return
        group_pos, measure_pos = self._positions(new_source)
        dirty_minmax: set = set()
        has_minmax = any(m.func in ("min", "max") for m in self.measures)

        for row in delta.deletes.reorder(new_source.attributes):
            key = tuple(row[p] for p in group_pos)
            self._accumulate(key, row, measure_pos, sign=-1)
            if has_minmax:
                state = self._groups[key]
                for measure in self.measures:
                    if measure.func not in ("min", "max"):
                        continue
                    slot = f"{measure.func}_{measure.attribute}"
                    if state[slot] == row[measure_pos[measure.attribute]]:
                        dirty_minmax.add(key)
        for row in delta.inserts.reorder(new_source.attributes):
            key = tuple(row[p] for p in group_pos)
            self._accumulate(key, row, measure_pos, sign=+1)

        # Drop empty groups; recompute dirty MIN/MAX groups from the source.
        empty = [key for key, state in self._groups.items() if state["count"] == 0]
        for key in empty:
            del self._groups[key]
            dirty_minmax.discard(key)
        if dirty_minmax:
            self._repair_minmax(dirty_minmax, new_source, group_pos, measure_pos)

    def _repair_minmax(
        self,
        keys: set,
        source: Relation,
        group_pos: Tuple[int, ...],
        measure_pos: Dict[str, int],
    ) -> None:
        fresh: Dict[tuple, Dict[str, object]] = {
            key: {} for key in keys if key in self._groups
        }
        slots = [
            (f"{m.func}_{m.attribute}", m.func, measure_pos[m.attribute])
            for m in self.measures
            if m.func in ("min", "max")
        ]
        for row in source:
            key = tuple(row[p] for p in group_pos)
            if key not in fresh:
                continue
            state = fresh[key]
            for slot, func, pos in slots:
                value = row[pos]
                current = state.get(slot)
                if current is None:
                    state[slot] = value
                elif func == "min" and value < current:
                    state[slot] = value
                elif func == "max" and value > current:
                    state[slot] = value
        for key, state in fresh.items():
            self._groups[key].update(state)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def output_attributes(self) -> Tuple[str, ...]:
        """Attribute names of the aggregate table."""
        return self.group_by + tuple(m.output for m in self.measures)

    def table(self) -> Relation:
        """The current aggregate table as a relation."""
        rows: List[tuple] = []
        for key, state in self._groups.items():
            values: List[object] = list(key)
            for measure in self.measures:
                if measure.func == "count":
                    values.append(state["count"])
                elif measure.func == "sum":
                    values.append(state[f"sum_{measure.attribute}"])
                elif measure.func == "avg":
                    values.append(state[f"sum_{measure.attribute}"] / state["count"])
                else:
                    values.append(state[f"{measure.func}_{measure.attribute}"])
            rows.append(tuple(values))
        return Relation(self.output_attributes(), rows)

    def __repr__(self) -> str:
        return (
            f"AggregateView({self.name!r} over {self.source!r}, "
            f"group_by={list(self.group_by)}, measures={list(self.measures)})"
        )
