"""Update independence: maintenance expressions and incremental refresh.

Section 4 of the paper: with a complement stored, the warehouse mapping
``W`` is invertible, so the correct new warehouse state after an update
``u`` is ``w' = W(u(W^{-1}(w)))`` (Theorem 4.1). Naively that recomputes
every view; the paper instead derives *incremental maintenance expressions*
by (i) applying a classical delta-rule algorithm to each view definition and
(ii) replacing every base-relation reference by its Equation (4) inverse —
Example 4.1 carries this out for the running example.

This module implements both:

* :func:`maintenance_expressions` — the symbolic derivation (i)+(ii); the
  resulting expressions mention only warehouse relations and the update's
  delta relations (``R__ins`` / ``R__del``);
* :func:`refresh_state` — the numeric engine: normalize the reported update
  to effective form (one ``W^{-1}`` evaluation per updated relation — a
  warehouse-local query, never a source query), bind the delta relations,
  evaluate the maintenance expressions with a shared memo, and apply the
  resulting per-relation deltas;
* :func:`full_recompute_state` — the ``w' = W(u(W^{-1}(w)))`` baseline used
  in the benchmarks.

Maintenance plans are cached per set of updated relations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import WarehouseError
from repro.algebra.deltas import (
    DeltaExpressions,
    del_name,
    delta_scope,
    derive_delta,
    ins_name,
)
from repro.algebra.evaluator import EvalStats, EvaluationCache, evaluate, evaluate_all
from repro.algebra.expressions import Empty, Expression
from repro.algebra.expressions import RelationRef
from repro.algebra.rewriting import fold_occurrences, substitute
from repro.algebra.simplify import simplify
from repro.storage.relation import Relation
from repro.storage.update import Delta, Update
from repro.core.complement import WarehouseSpec

State = Mapping[str, Relation]


class MaintenancePlan:
    """Maintenance expressions for one combination of updated relations.

    ``expressions`` maps each stored warehouse relation to its
    :class:`~repro.algebra.deltas.DeltaExpressions`, stated over warehouse
    relation names plus the delta names of the updated relations.
    """

    __slots__ = ("updated", "expressions")

    def __init__(
        self, updated: FrozenSet[str], expressions: Dict[str, DeltaExpressions]
    ) -> None:
        self.updated = updated
        self.expressions = expressions

    def describe(self) -> str:
        """Human-readable rendering (the shape shown in Example 4.1)."""
        lines = [f"updated: {sorted(self.updated)}"]
        for name, delta in self.expressions.items():
            lines.append(f"  {name}' = ({name} minus [{delta.deletes}]) union [{delta.inserts}]")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MaintenancePlan(updated={sorted(self.updated)})"


def maintenance_expressions(
    spec: WarehouseSpec,
    updated: Iterable[str],
    insert_only: bool = False,
    delete_only: bool = False,
) -> MaintenancePlan:
    """Derive warehouse-only maintenance expressions (Example 4.1).

    Parameters
    ----------
    spec:
        The warehouse specification (must carry a complement; that is what
        makes the inverse — and hence update independence — available).
    updated:
        Base relations the update touches.
    insert_only, delete_only:
        Specialize the derivation for pure insertions (the paper's set
        ``s``) or pure deletions: the unused delta relations are replaced by
        the empty relation and simplified away, which reproduces the compact
        expressions of Example 4.1.
    """
    updated_set = frozenset(updated)
    unknown = updated_set - set(spec.inverses)
    if unknown:
        raise WarehouseError(f"cannot maintain unknown relations {sorted(unknown)}")
    source_scope = spec.source_scope()
    warehouse_scope = spec.warehouse_scope()
    extended_scope = delta_scope(
        {**source_scope, **warehouse_scope}, updated_set
    )

    specialize: Dict[str, Expression] = {}
    for relation in updated_set:
        attrs = source_scope[relation]
        if insert_only:
            specialize[del_name(relation)] = Empty(attrs)
        if delete_only:
            specialize[ins_name(relation)] = Empty(attrs)

    # Recognize materialized warehouse relations inside the derived
    # expressions before falling back to inverse substitution: old-value
    # subtrees that *are* a view (or a complement) stay as a single
    # reference, which reproduces the compact forms of Example 4.1.
    foldable = {
        definition: RelationRef(name)
        for name, definition in spec.definitions_over_sources().items()
    }

    expressions: Dict[str, DeltaExpressions] = {}
    for name, definition in spec.definitions_over_sources().items():
        derived = derive_delta(definition, updated_set, source_scope)
        derived = derived.map(lambda e: fold_occurrences(e, foldable))
        # Replace remaining base relations by their inverses (step (ii)).
        derived = derived.map(lambda e: substitute(e, spec.inverses))
        if specialize:
            derived = derived.map(lambda e: substitute(e, specialize))
        derived = derived.map(lambda e: simplify(e, extended_scope))
        expressions[name] = derived
    return MaintenancePlan(updated_set, expressions)


def delta_bindings(update: Update, scope: Mapping[str, Tuple[str, ...]]) -> Dict[str, Relation]:
    """Bind an update's deltas under the ``R__ins`` / ``R__del`` names."""
    bindings: Dict[str, Relation] = {}
    for delta in update:
        attrs = scope[delta.relation]
        bindings[ins_name(delta.relation)] = delta.inserts.reorder(attrs)
        bindings[del_name(delta.relation)] = delta.deletes.reorder(attrs)
    return bindings


def normalize_update(
    spec: WarehouseSpec,
    warehouse: State,
    update: Update,
    cache: Optional[EvaluationCache] = None,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    tracer=None,
    engine: Optional[str] = None,
) -> Update:
    """The update's effective form w.r.t. the *reconstructed* base state.

    Only the updated relations are reconstructed (one inverse evaluation
    each, against warehouse relations — no source access). With a
    cross-update ``cache``, inverses of relations whose warehouse inputs
    did not change since the last refresh are served without evaluation.
    With a ``tracer``, each inverse evaluation nests under a
    ``reconstruct`` span carrying the relation name.
    """
    reconstructed: Dict[str, Relation] = {}
    memo = cache if cache is not None else {}
    for delta in update:
        if delta.relation not in spec.inverses:
            raise WarehouseError(f"update touches unknown relation {delta.relation!r}")
        if tracer is not None:
            with tracer.span("reconstruct", relation=delta.relation) as span:
                result = evaluate(
                    spec.inverses[delta.relation],
                    warehouse,
                    cache=memo,
                    stats=stats,
                    fastpath=fastpath,
                    tracer=tracer,
                    engine=engine,
                )
                span.attributes["rows_out"] = len(result)
        else:
            result = evaluate(
                spec.inverses[delta.relation],
                warehouse,
                cache=memo,
                stats=stats,
                fastpath=fastpath,
                engine=engine,
            )
        reconstructed[delta.relation] = result
    return update.normalized(reconstructed)


def refresh_state(
    spec: WarehouseSpec,
    warehouse: State,
    update: Update,
    plan: Optional[MaintenancePlan] = None,
    cache: Optional[EvaluationCache] = None,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    tracer=None,
    engine: Optional[str] = None,
) -> Tuple[Dict[str, Relation], Dict[str, Delta]]:
    """Incrementally fold ``update`` into the warehouse state.

    Returns ``(new_state, applied)`` where ``applied`` records the effective
    per-warehouse-relation deltas (useful for cascading, e.g. into aggregate
    views). Uses only warehouse relations and the update — the source
    databases are never consulted (Theorem 4.1's update independence).

    ``cache`` may be a persistent :class:`EvaluationCache` shared across
    refreshes: unchanged warehouse relations keep their object identity from
    one refresh to the next (see below), so cached sub-expressions stay
    valid and only delta-touched sub-trees re-evaluate. ``stats`` collects
    :class:`EvalStats` counters for this refresh; ``fastpath`` toggles the
    evaluator's join fast paths. ``tracer`` (a
    :class:`~repro.obs.trace.Tracer`, or ``None``) records the refresh as a
    span tree: ``normalize_update``, then one ``maintain`` span per
    warehouse relation wrapping its operator spans.
    """
    if tracer is not None:
        with tracer.span("normalize_update", relations=sorted(update.relations())) as span:
            effective = normalize_update(
                spec, warehouse, update, cache=cache, stats=stats,
                fastpath=fastpath, tracer=tracer, engine=engine,
            )
            span.attributes["effective_rows"] = sum(
                len(d.inserts) + len(d.deletes) for d in effective
            )
    else:
        effective = normalize_update(
            spec, warehouse, update, cache=cache, stats=stats, fastpath=fastpath,
            engine=engine,
        )
    if effective.is_empty():
        return dict(warehouse), {}
    updated = frozenset(effective.relations())
    if plan is None or plan.updated != updated:
        plan = maintenance_expressions(spec, updated)

    scope = spec.source_scope()
    combined: Dict[str, Relation] = dict(warehouse)
    combined.update(delta_bindings(effective, scope))

    memo = cache if cache is not None else {}
    applied: Dict[str, Delta] = {}
    new_state: Dict[str, Relation] = {}
    for name, exprs in plan.expressions.items():
        if tracer is not None:
            with tracer.span("maintain", relation=name) as span:
                inserts = evaluate(
                    exprs.inserts, combined, cache=memo, stats=stats,
                    fastpath=fastpath, tracer=tracer, engine=engine,
                )
                deletes = evaluate(
                    exprs.deletes, combined, cache=memo, stats=stats,
                    fastpath=fastpath, tracer=tracer, engine=engine,
                )
                span.set(rows_inserted=len(inserts), rows_deleted=len(deletes))
        else:
            inserts = evaluate(
                exprs.inserts, combined, cache=memo, stats=stats,
                fastpath=fastpath, engine=engine,
            )
            deletes = evaluate(
                exprs.deletes, combined, cache=memo, stats=stats,
                fastpath=fastpath, engine=engine,
            )
        current = warehouse[name]
        if inserts or deletes:
            new_state[name] = current.difference(deletes).union(inserts)
            applied[name] = Delta(name, inserts=inserts, deletes=deletes)
        else:
            # Keep the identical object so its cached join buckets — and any
            # EvaluationCache entries referencing it — survive into the next
            # refresh.
            new_state[name] = current
    return new_state, applied


def full_recompute_state(
    spec: WarehouseSpec,
    warehouse: State,
    update: Update,
    stats: Optional[EvalStats] = None,
    fastpath: bool = True,
    engine: Optional[str] = None,
) -> Dict[str, Relation]:
    """The baseline ``w' = W(u(W^{-1}(w)))``: reconstruct, update, recompute.

    Still update-independent (no source access) but recomputes every view
    from scratch; the benchmarks compare this against :func:`refresh_state`.
    """
    base = evaluate_all(
        spec.inverses, warehouse, stats=stats, fastpath=fastpath, engine=engine
    )
    for delta in update:
        if delta.relation not in base:
            raise WarehouseError(f"update touches unknown relation {delta.relation!r}")
        base[delta.relation] = delta.normalized(base[delta.relation]).apply_to(
            base[delta.relation]
        )
    return evaluate_all(
        spec.definitions_over_sources(), base, stats=stats, fastpath=fastpath,
        engine=engine,
    )
