"""Hybrid warehouses: store the complement's *expression*, not its data.

Section 6 of the paper: "If the queries to base relations required for the
computation of any specific C_i can be answered in reasonable time, then we
do not need to maintain C_i at the warehouse; we simply store the expression
for computing it. Otherwise, we have to maintain C_i at the warehouse."

:class:`HybridWarehouse` implements that knob. Complements named in
``virtual`` are *not* materialized; whenever an operation needs one (a
translated query touching it, an update whose maintenance plan references
it), its defining expression is evaluated against the sources through a
caller-provided access callback. The class counts those source round trips,
making the trade-off measurable: virtual complements save storage but each
use re-opens the dependence on source availability the paper's fully
materialized design removes.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.errors import WarehouseError
from repro.algebra.evaluator import evaluate, evaluate_all
from repro.storage.relation import Relation
from repro.storage.update import Delta, Update
from repro.core.complement import WarehouseSpec
from repro.core.maintenance import refresh_state
from repro.core.translation import translate_query
from repro.core.warehouse import Warehouse

SourceAccess = Callable[[str], Relation]


class HybridWarehouse(Warehouse):
    """A warehouse that keeps selected complements virtual (Section 6).

    Parameters
    ----------
    spec:
        An ordinary :class:`~repro.core.complement.WarehouseSpec`.
    virtual:
        Names of complement views to keep virtual (must be complement names
        from the spec; provably-empty complements are never materialized
        anyway and need not be listed).
    source_access:
        Callback ``relation name -> current Relation`` used whenever a
        virtual complement must be computed. Each *distinct base relation
        read* increments :attr:`source_queries`.
    """

    def __init__(
        self,
        spec: WarehouseSpec,
        virtual: Iterable[str],
        source_access: SourceAccess,
    ) -> None:
        super().__init__(spec)
        self.virtual: FrozenSet[str] = frozenset(virtual)
        unknown = self.virtual - set(spec.complement_names())
        if unknown:
            raise WarehouseError(
                f"virtual names {sorted(unknown)} are not stored complements"
            )
        self._source_access = source_access
        self.source_queries = 0

    # ------------------------------------------------------------------

    def _virtual_definitions(self) -> Dict[str, object]:
        by_name = {
            complement.name: complement
            for complement in self.spec.complements.values()
        }
        return {
            name: by_name[name].definition_over_sources(self.spec.views)
            for name in self.virtual
        }

    def _fetch_virtual(self, undo: Optional[Update] = None) -> Dict[str, Relation]:
        """Evaluate the virtual complements against the live sources.

        During :meth:`apply`, the sources have already applied the update
        being processed, but the maintenance expressions need *pre-update*
        values; ``undo`` reverses exactly that update's deltas on the
        fetched relations. Like any source-querying scheme this is only
        consistent if no *other* update is in flight — the maintenance-
        anomaly caveat (see :mod:`repro.integrator`) that the fully
        materialized design avoids; Section 6's trade-off in one line.
        """
        definitions = self._virtual_definitions()
        needed: set = set()
        for expression in definitions.values():
            needed |= {
                name
                for name in expression.relation_names()
                if name in self.spec.catalog
            }
        source_state = {name: self._source_access(name) for name in sorted(needed)}
        if undo is not None:
            for delta in undo:
                if delta.relation in source_state:
                    source_state[delta.relation] = delta.inverted().apply_to(
                        source_state[delta.relation]
                    )
        self.source_queries += len(needed)
        return evaluate_all(definitions, source_state)

    def _full_state(self, undo: Optional[Update] = None) -> Dict[str, Relation]:
        """Materialized state plus freshly computed virtual complements."""
        state = dict(self.state)
        if self.virtual:
            state.update(self._fetch_virtual(undo))
        return state

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------

    def initialize(self, source) -> Dict[str, Relation]:
        materialized = super().initialize(source)
        # Drop the virtual complements from storage.
        for name in self.virtual:
            self._state.pop(name, None)
        return dict(self._state)

    def storage_rows(self) -> int:
        return sum(len(rel) for rel in self.state.values())

    def answer(self, query) -> Relation:
        expression = self._as_expression(query)
        translated = translate_query(self.spec, expression)
        if translated.relation_names() & self.virtual:
            return evaluate(translated, self._full_state())
        return evaluate(translated, self.state)

    def reconstruct(self, relation: str) -> Relation:
        inverse = self.spec.inverse_for(relation)
        if inverse.relation_names() & self.virtual:
            return evaluate(inverse, self._full_state())
        return evaluate(inverse, self.state)

    def apply(self, update: Update) -> Dict[str, Delta]:
        plan = self.maintenance_plan(update.relations())
        touched: set = set()
        for exprs in plan.expressions.values():
            touched |= exprs.inserts.relation_names()
            touched |= exprs.deletes.relation_names()
        if touched & self.virtual:
            working = self._full_state(undo=update)
        else:
            working = dict(self.state)
        new_state, applied = refresh_state(self.spec, working, update, plan)
        # Persist only the materialized part.
        self._state = {
            name: rel for name, rel in new_state.items() if name not in self.virtual
        }
        for aggregate in self._aggregates:
            delta = applied.get(aggregate.source)
            if delta is not None:
                aggregate.apply_delta(delta, new_state[aggregate.source])
        return {name: d for name, d in applied.items() if name not in self.virtual}

    def __repr__(self) -> str:
        return (
            f"HybridWarehouse(virtual={sorted(self.virtual)}, "
            f"source_queries={self.source_queries})"
        )
