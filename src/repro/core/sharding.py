"""Sharded warehouses: key-range partitioned fact relations, MVCC commits.

A :class:`ShardedWarehouse` scales the Figure 1 warehouse horizontally: one
or more *fact* relations are partitioned by a routing attribute (key-range
or hashed — :class:`ShardRouting`), every shard runs a complete
:class:`~repro.core.warehouse.Warehouse` over the same specification, and a
:class:`ShardRouter` splits each reported update into per-shard parts —
routed deltas go to the shard owning their key range, every other delta is
broadcast to all shards.

Why this is *correct* is the paper's own argument, applied per shard: a
shard's warehouse tracks the source state restricted to (its slice of the
routed relations) ∪ (the unrouted relations in full). Key and inclusion
constraints survive restriction to a slice, so Theorem 2.2's complement and
Theorem 4.1's source-free maintenance hold shard-locally. Construction then
classifies every warehouse relation by how its global image assembles from
the shard images — the classification is the static shard-independence
prover's (:func:`repro.analysis.concurrency.classify_assembly`, surfaced as
``python -m repro prove-sharding``): definitions *rooted* in the routing
attribute satisfy ``V(∪ᵢRᵢ, S) = ∪ᵢV(Rᵢ, S)`` (select/project/join
distribute over union, and rooted tuples from different slices never meet),
while the ``K − π(…R…)`` complement shape of the relations joined against a
routed one flips to intersection: ``K − ∪ᵢBᵢ = ∩ᵢ(K − Bᵢ)``. Everything
independent of routed facts is simply replicated. Views combining *two*
routed relations are admitted when they join on the routing attributes and
the routings are **co-partitioned** (equal values land on the same shard —
:meth:`repro.core.routing.ShardRouting.compatible_with`); anything else
raises at construction with the prover's reasoned refusal.

Under ``REPRO_CHECK_RACES=1`` (sibling of ``REPRO_CHECK_INVARIANTS``) a
:class:`repro.analysis.races.RaceTracker` cross-checks the refresh
protocol at runtime: shard locks acquired in ascending order, no
overlapping uncommitted refreshes on a shard, and every refresh's writes
inside the statically derived footprint
(:func:`repro.analysis.concurrency.write_footprint`).

Commits are MVCC-style: each shard refresh swaps that shard's immutable
state mapping, and :meth:`ShardedWarehouse.commit` publishes the batch by
capturing the touched shards' state references in one synchronous block —
readers resolving :meth:`ShardedWarehouse.snapshot` therefore never observe
a half-applied batch, and a reader holding a snapshot keeps a consistent
image while any number of later commits land (see
:mod:`repro.storage.snapshot`). Every commit is appended to
:attr:`ShardedWarehouse.commit_log`, which is the replay script the
concurrency correctness harness feeds back through a synchronous reference
integrator (``tests/integrator/test_async_integrator.py``).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import WarehouseError
from repro.obs.metrics import MetricsRegistry
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.update import Delta, Update
from repro.views.psj import View
from repro.analysis.concurrency import (
    ASSEMBLE_INTERSECT,
    ASSEMBLE_REPLICATED,
    ASSEMBLE_UNION,
    AssemblyReport,
    classify_assembly,
    sharding_certificate_digest,
    write_footprint,
)
from repro.analysis.races import RaceTracker, races_enabled
from repro.core.complement import WarehouseSpec, specify
from repro.core.routing import ShardRouting, _stable_hash  # noqa: F401 — re-export
from repro.core.translation import answer_query
from repro.core.warehouse import StateLike, Warehouse

__all__ = [
    "ShardRouting",
    "ShardRouter",
    "ShardedSnapshot",
    "ShardedWarehouse",
    "CommitRecord",
    "ASSEMBLE_REPLICATED",
    "ASSEMBLE_UNION",
    "ASSEMBLE_INTERSECT",
]


class ShardRouter:
    """Routes updates and initial states to shards.

    Routed relations split row-by-row on their routing attribute; every
    other relation is *broadcast* — each shard keeps a full replica (the
    classic partitioned-facts / replicated-dimensions layout).

    Examples
    --------
    >>> router = ShardRouter([ShardRouting("Sale", "item", shards=2)])
    >>> router.shards, router.is_routed("Sale"), router.is_routed("Emp")
    (2, True, False)
    """

    def __init__(
        self,
        routings: Sequence[ShardRouting] = (),
        shards: Optional[int] = None,
    ) -> None:
        self._routings: Dict[str, ShardRouting] = {}
        for routing in routings:
            if routing.relation in self._routings:
                raise WarehouseError(
                    f"relation {routing.relation!r} routed more than once"
                )
            self._routings[routing.relation] = routing
        counts = {r.shards for r in self._routings.values()}
        if shards is not None:
            counts.add(shards)
        if not counts:
            raise WarehouseError(
                "router needs at least one routing or an explicit shards="
            )
        if len(counts) != 1:
            raise WarehouseError(
                f"inconsistent shard counts across routings: {sorted(counts)}"
            )
        self.shards = counts.pop()

    @property
    def routed_relations(self) -> Tuple[str, ...]:
        """The partitioned relation names, sorted."""
        return tuple(sorted(self._routings))

    def is_routed(self, relation: str) -> bool:
        """Whether ``relation`` is partitioned (else it is broadcast)."""
        return relation in self._routings

    def routing_for(self, relation: str) -> ShardRouting:
        """The :class:`ShardRouting` of a partitioned relation."""
        try:
            return self._routings[relation]
        except KeyError:
            raise WarehouseError(f"relation {relation!r} is not routed") from None

    def shard_of_row(
        self, relation: str, attributes: Sequence[str], row: Sequence[object]
    ) -> int:
        """The shard owning one row of a routed relation."""
        routing = self.routing_for(relation)
        try:
            position = list(attributes).index(routing.attribute)
        except ValueError:
            raise WarehouseError(
                f"routing attribute {routing.attribute!r} missing from "
                f"{relation!r} schema {tuple(attributes)}"
            ) from None
        return routing.shard_of(row[position])

    def split_relation(self, name: str, relation: Relation) -> List[Relation]:
        """Partition a routed relation instance into per-shard slices."""
        routing = self.routing_for(name)
        try:
            position = relation.attributes.index(routing.attribute)
        except ValueError:
            raise WarehouseError(
                f"routing attribute {routing.attribute!r} missing from "
                f"{name!r} schema {relation.attributes}"
            ) from None
        buckets: List[List[tuple]] = [[] for _ in range(self.shards)]
        for row in relation.rows:
            buckets[routing.shard_of(row[position])].append(row)
        return [Relation(relation.attributes, rows) for rows in buckets]

    def split_update(self, update: Update) -> Dict[int, Update]:
        """Split an update into non-empty per-shard updates.

        Routed deltas are partitioned row-by-row; unrouted deltas are
        broadcast into every shard's part. Shards left with nothing to do
        are absent from the result.
        """
        parts: Dict[int, List[Delta]] = {i: [] for i in range(self.shards)}
        for delta in update:
            if self.is_routed(delta.relation):
                inserts = self.split_relation(delta.relation, delta.inserts)
                deletes = self.split_relation(delta.relation, delta.deletes)
                for i in range(self.shards):
                    if inserts[i] or deletes[i]:
                        parts[i].append(
                            Delta(delta.relation, inserts[i], deletes[i])
                        )
            else:
                for i in range(self.shards):
                    parts[i].append(delta)
        return {
            i: Update(deltas) for i, deltas in parts.items() if deltas
        }

    def split_state(
        self, state: Mapping[str, Relation]
    ) -> List[Dict[str, Relation]]:
        """Per-shard initial states: routed relations sliced, rest shared."""
        shards: List[Dict[str, Relation]] = [dict() for _ in range(self.shards)]
        for name, relation in state.items():
            if self.is_routed(name):
                for i, part in enumerate(self.split_relation(name, relation)):
                    shards[i][name] = part
            else:
                for part_state in shards:
                    part_state[name] = relation
        return shards

    def __repr__(self) -> str:
        return (
            f"ShardRouter({self.shards} shards, "
            f"routed={list(self.routed_relations)})"
        )


class CommitRecord(NamedTuple):
    """One published batch: global version, net update, shards touched."""

    version: int
    update: Update
    shards: Tuple[int, ...]


def _union_all(relations: Sequence[Relation]) -> Relation:
    combined = relations[0]
    for relation in relations[1:]:
        combined = combined.union(relation)
    return combined


def _intersect_all(relations: Sequence[Relation]) -> Relation:
    combined = relations[0]
    for relation in relations[1:]:
        combined = combined.intersection(relation)
    return combined


class ShardedSnapshot:
    """A consistent cross-shard read view at one commit version.

    Holds the per-shard state mappings captured at commit time, plus each
    warehouse relation's *assembly mode* — how its global image is built
    from the shard images. Union-assembled relations (definitions rooted in
    a routed base) union their shard images; intersection-assembled ones
    (the ``K − π(…routed…)`` complement shape) intersect them; replicated
    relations read from shard 0. Assembly is lazy and memoized per
    snapshot. The read API mirrors
    :class:`~repro.storage.snapshot.SnapshotView`.
    """

    __slots__ = ("_version", "_states", "_assembly", "_memo")

    def __init__(
        self,
        version: int,
        states: Sequence[Mapping[str, Relation]],
        assembly: Mapping[str, str],
    ) -> None:
        self._version = version
        self._states: Tuple[Mapping[str, Relation], ...] = tuple(states)
        self._assembly = assembly
        self._memo: Dict[str, Relation] = {}

    @property
    def version(self) -> int:
        """The commit version this snapshot pins."""
        return self._version

    def names(self) -> Tuple[str, ...]:
        """The warehouse relation names visible in this snapshot, sorted."""
        return tuple(sorted(self._states[0]))

    def relation(self, name: str) -> Relation:
        """The assembled global image of one warehouse relation."""
        cached = self._memo.get(name)
        if cached is not None:
            return cached
        if name not in self._states[0]:
            raise WarehouseError(
                f"snapshot (version {self._version}) has no relation {name!r}"
            )
        mode = self._assembly.get(name, ASSEMBLE_REPLICATED)
        if mode == ASSEMBLE_REPLICATED or len(self._states) == 1:
            assembled = self._states[0][name]
        elif mode == ASSEMBLE_UNION:
            assembled = _union_all([state[name] for state in self._states])
        else:
            assembled = _intersect_all([state[name] for state in self._states])
        self._memo[name] = assembled
        return assembled

    def shard_relation(self, shard: int, name: str) -> Relation:
        """One shard's pinned image of a warehouse relation."""
        try:
            return self._states[shard][name]
        except (IndexError, KeyError):
            raise WarehouseError(
                f"snapshot (version {self._version}): no relation "
                f"{name!r} on shard {shard}"
            ) from None

    def state(self) -> Dict[str, Relation]:
        """The fully assembled ``{name: Relation}`` global state."""
        return {name: self.relation(name) for name in self.names()}

    def total_rows(self) -> int:
        """Total tuples in the assembled global image."""
        return sum(len(self.relation(name)) for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._states[0]

    def __iter__(self) -> Iterator[str]:
        return iter(self._states[0])

    def __len__(self) -> int:
        return len(self._states[0])

    def __repr__(self) -> str:
        return (
            f"ShardedSnapshot(version={self._version}, "
            f"{len(self._states)} shards, {len(self._states[0])} relations)"
        )


class ShardedWarehouse:
    """N complete warehouses over one spec, facts partitioned by key range.

    All shards share the same :class:`~repro.core.complement.WarehouseSpec`
    (complements and maintenance plans are state-independent); each holds
    the materialized state for its slice. Reads go through MVCC snapshots
    (:meth:`snapshot`); writes split per shard (:meth:`split`), refresh
    shard-locally (:meth:`apply_to_shard`) and publish atomically
    (:meth:`commit`) — :meth:`apply` bundles the three for synchronous use,
    while the async integrator drives them directly so refreshes on
    disjoint shards can interleave.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.views.psj import View
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> wh = ShardedWarehouse.specify(
    ...     catalog, [View("Sold", parse("Sale join Emp"))],
    ...     routings=[ShardRouting("Sale", "item", shards=2)],
    ... )
    >>> _ = wh.initialize({
    ...     "Sale": Relation(("item", "clerk"), [("TV", "Mary")]),
    ...     "Emp": Relation(("clerk", "age"), [("Mary", 23)]),
    ... })
    >>> wh.relation("Sold").rows
    frozenset({('TV', 'Mary', 23)})
    """

    def __init__(
        self,
        spec: WarehouseSpec,
        router: Optional[ShardRouter] = None,
        shards: Optional[int] = None,
        cached: bool = True,
        engine: Optional[str] = None,
        compile_plans: Optional[bool] = None,
    ) -> None:
        if router is None:
            router = ShardRouter((), shards=shards if shards is not None else 1)
        elif shards is not None and shards != router.shards:
            raise WarehouseError(
                f"shards={shards} disagrees with router ({router.shards} shards)"
            )
        self.spec = spec
        self.router = router
        # Per warehouse relation: how its global image assembles from the
        # shard images (replicated / union / intersect). Relations whose
        # definitions never read a routed base stay replicated — broadcast
        # updates keep all their replicas identical.
        self._report: AssemblyReport = self._validate_routings()
        self._assembly: Dict[str, str] = dict(self._report.assembly)
        self._race_tracker: Optional[RaceTracker] = (
            RaceTracker(router.shards) if races_enabled() else None
        )
        self._footprints: Dict[FrozenSet[str], FrozenSet[str]] = {}
        self._certificate_digest: Optional[str] = None
        self.shards: Tuple[Warehouse, ...] = tuple(
            Warehouse(spec, cached=cached, engine=engine, compile_plans=compile_plans)
            for _ in range(router.shards)
        )
        self._committed: List[Optional[Dict[str, Relation]]] = [
            None for _ in range(router.shards)
        ]
        self._version = 0
        self._snapshot: Optional[ShardedSnapshot] = None
        self._commit_log: List[CommitRecord] = []
        self._metrics = MetricsRegistry()
        self._metrics.gauge("warehouse.shards").set(router.shards)

    def _validate_routings(self) -> AssemblyReport:
        """Check shardability and classify each warehouse relation's assembly.

        Delegates to the static shard-independence prover
        (:func:`repro.analysis.concurrency.classify_assembly`): the same
        walk that decides ``python -m repro prove-sharding`` verdicts also
        gates construction, so a layout that builds is exactly a layout
        the prover admits — including views over two routed relations
        joined on co-partitioned routing attributes.
        """
        catalog = self.spec.catalog
        routings: Dict[str, ShardRouting] = {}
        for name in self.router.routed_relations:
            routing = self.router.routing_for(name)
            if name not in catalog:
                raise WarehouseError(f"routed relation {name!r} not in catalog")
            if routing.attribute not in catalog[name].attributes:
                raise WarehouseError(
                    f"routing attribute {routing.attribute!r} is not an "
                    f"attribute of {name!r}"
                )
            routings[name] = routing
        return classify_assembly(
            self.spec.definitions_over_sources(),
            self.spec.source_scope(),
            routings,
        )

    @classmethod
    def specify(
        cls,
        catalog: Catalog,
        views: Sequence[View],
        routings: Sequence[ShardRouting] = (),
        shards: Optional[int] = None,
        method: str = "thm22",
        cached: bool = True,
        engine: Optional[str] = None,
        compile_plans: Optional[bool] = None,
        **options,
    ) -> "ShardedWarehouse":
        """Build a sharded warehouse from a catalog and PSJ views."""
        router = (
            ShardRouter(routings)
            if routings
            else ShardRouter((), shards=shards if shards is not None else 1)
        )
        return cls(
            specify(catalog, views, method=method, **options),
            router=router,
            shards=shards,
            cached=cached,
            engine=engine,
            compile_plans=compile_plans,
        )

    # ------------------------------------------------------------------
    # State and MVCC reads
    # ------------------------------------------------------------------

    def initialize(self, source: StateLike) -> None:
        """Materialize every shard from an initial source snapshot."""
        state = source.state() if isinstance(source, Database) else dict(source)
        for shard, part in zip(self.shards, self.router.split_state(state)):
            shard.initialize(part)
        self.commit(range(self.router.shards))

    @property
    def version(self) -> int:
        """The global commit version (bumped once per published batch)."""
        return self._version

    @property
    def commit_log(self) -> Tuple[CommitRecord, ...]:
        """Every published update batch, in serialization order.

        Replaying these updates in order through a single synchronous
        reference warehouse must reproduce the assembled global state at
        each version — the differential oracle the concurrency tests run.
        """
        return tuple(self._commit_log)

    def snapshot(self) -> ShardedSnapshot:
        """The newest committed cross-shard snapshot (cached per version)."""
        snapshot = self._snapshot
        if snapshot is None:
            states = []
            for i, state in enumerate(self._committed):
                if state is None:
                    raise WarehouseError(
                        "sharded warehouse not initialized; call initialize()"
                    )
                states.append(state)
            snapshot = ShardedSnapshot(self._version, states, self._assembly)
            self._snapshot = snapshot
        return snapshot

    def relation(self, name: str) -> Relation:
        """The assembled global image of one warehouse relation."""
        return self.snapshot().relation(name)

    def state(self) -> Dict[str, Relation]:
        """The assembled global warehouse state at the newest commit."""
        return self.snapshot().state()

    def storage_rows(self) -> int:
        """Total materialized tuples across all shards (slices, not union)."""
        return sum(shard.storage_rows() for shard in self.shards)

    def reconstruct(self, relation: str) -> Relation:
        """Recompute one base relation via Equation (4), across shards."""
        if self.router.is_routed(relation):
            return _union_all(
                [shard.reconstruct(relation) for shard in self.shards]
            )
        return self.shards[0].reconstruct(relation)

    def answer(self, query) -> Relation:
        """Answer a source query from the newest committed snapshot."""
        self._metrics.counter("warehouse.queries").inc()
        return answer_query(
            self.spec,
            self.snapshot().state(),
            self.shards[0]._as_expression(query),
            engine=self.shards[0].engine,
        )

    # ------------------------------------------------------------------
    # Writes: split / refresh / commit
    # ------------------------------------------------------------------

    def split(self, update: Update) -> Dict[int, Update]:
        """Route an update: non-empty per-shard parts keyed by shard index."""
        return self.router.split_update(update)

    def _write_footprint(self, update: Update) -> FrozenSet[str]:
        """The static write footprint of one update part (memoized by shape)."""
        updated = frozenset(delta.relation for delta in update)
        cached = self._footprints.get(updated)
        if cached is None:
            cached = write_footprint(self.spec, updated)
            self._footprints[updated] = cached
        return cached

    def apply_to_shard(self, index: int, update: Update) -> Dict[str, Delta]:
        """Refresh one shard with its part of a batch (no publication).

        The shard's state swap is locally atomic, but readers keep seeing
        the previous *committed* snapshot until :meth:`commit` publishes
        the whole batch — this is what keeps multi-shard batches untorn.
        Under ``REPRO_CHECK_RACES=1`` the refresh is bracketed by the race
        tracker: an uncommitted refresh by another worker on this shard, or
        a write outside the static footprint, fails loudly.
        """
        tracker = self._race_tracker
        footprint: FrozenSet[str] = frozenset()
        if tracker is not None:
            footprint = self._write_footprint(update)
            tracker.begin_refresh(index, footprint)
        applied = self.shards[index].apply(update)
        if tracker is not None:
            tracker.check_written(
                index,
                footprint,
                [
                    name
                    for name, delta in applied.items()
                    if len(delta.inserts) or len(delta.deletes)
                ],
            )
        metrics = self._metrics
        metrics.counter(f"warehouse.shard_refreshes.{index}").inc()
        rows = sum(len(d.inserts) + len(d.deletes) for d in applied.values())
        if rows:
            metrics.counter(f"warehouse.shard_refresh_rows.{index}").inc(rows)
        return applied

    def commit(
        self, shard_indices: Iterable[int], update: Optional[Update] = None
    ) -> int:
        """Publish the touched shards' current states as one new version.

        Runs as a single synchronous block (no awaits, no I/O): the state
        references of every touched shard are captured together, the global
        version bumps once, and the cached snapshot is invalidated — under
        cooperative (asyncio) concurrency a reader can never observe a
        partially-captured batch. ``update`` (the net batch, pre-split) is
        appended to :attr:`commit_log` for differential replay.
        """
        touched = tuple(sorted(set(shard_indices)))
        for index in touched:
            self._committed[index] = self.shards[index].state
        self._version += 1
        self._snapshot = None
        if update is not None:
            self._commit_log.append(CommitRecord(self._version, update, touched))
        if self._race_tracker is not None:
            self._race_tracker.end_commit(touched)
        self._metrics.counter("warehouse.commits").inc()
        return self._version

    def apply(self, update: Update) -> Dict[str, Delta]:
        """Split, refresh every affected shard, and commit — synchronously.

        Returns the per-shard effective deltas folded together (replicated
        relations report one shard's delta; sliced relations union their
        per-shard deltas — for intersection-assembled complements this fold
        is a diagnostic over-approximation of the global change, since the
        exact global delta needs both assembled images).
        """
        parts = self.split(update)
        if not parts:
            return {}
        merged: Dict[str, Delta] = {}
        for index in sorted(parts):
            for name, delta in self.apply_to_shard(index, parts[index]).items():
                existing = merged.get(name)
                if existing is None or name not in self._assembly:
                    merged[name] = delta
                else:
                    merged[name] = Delta(
                        name,
                        inserts=existing.inserts.union(delta.inserts),
                        deletes=existing.deletes.union(delta.deletes),
                    )
        self.commit(parts, update)
        return merged

    def apply_batch(self, updates: Iterable[Update]) -> Dict[str, Delta]:
        """Compose a batch into one net update and apply it once."""
        batch: Optional[Update] = None
        composed = 0
        for update in updates:
            batch = update if batch is None else batch.compose(update)
            composed += 1
        if batch is None:
            return {}
        self._metrics.histogram("warehouse.batch_size").observe(composed)
        return self.apply(batch)

    def insert(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> Dict[str, Delta]:
        """Convenience: apply an insertion update."""
        attrs = self.spec.catalog[relation].attributes
        return self.apply(Update.insert(relation, attrs, rows))

    def delete(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> Dict[str, Delta]:
        """Convenience: apply a deletion update."""
        attrs = self.spec.catalog[relation].attributes
        return self.apply(Update.delete(relation, attrs, rows))

    # ------------------------------------------------------------------
    # Static-analysis surface
    # ------------------------------------------------------------------

    @property
    def assembly_report(self) -> AssemblyReport:
        """The prover's admission verdict this warehouse was built under."""
        return self._report

    @property
    def co_partitioned(self) -> Tuple[Tuple[str, ...], ...]:
        """Groups of routed relations admitted via co-partitioning."""
        return self._report.co_partitioned

    @property
    def race_tracker(self) -> Optional[RaceTracker]:
        """The ``REPRO_CHECK_RACES=1`` tracker (``None`` when disabled)."""
        return self._race_tracker

    def recertify(
        self, certificate: Optional[Mapping[str, object]] = None
    ) -> bool:
        """Re-validate the sharding certificate; evict stale compiled plans.

        With no argument, every shard re-runs its own compiler
        recertification (:meth:`repro.core.warehouse.Warehouse.recertify`)
        and ``True`` means at least one shard's plans were evicted. Given a
        sharding certificate document (as produced by ``python -m repro
        prove-sharding --certificates``), its canonical digest — the same
        :func:`~repro.analysis.digest.canonical_digest` that keys the
        compiled-plan cache — is compared with the last accepted one: a
        changed digest means the closures were specialized against facts
        that no longer hold, so every shard's compiled plans are evicted.
        A certificate recording *refuted* batch commutativity additionally
        raises after eviction: concurrent use of this warehouse would be
        unsound, and silently continuing on fresh plans would hide that.
        """
        if certificate is None:
            changed = False
            for shard in self.shards:
                changed = shard.recertify() or changed
            return changed
        digest = sharding_certificate_digest(certificate)
        changed = digest != self._certificate_digest
        if changed and self._certificate_digest is not None:
            evicted = sum(shard.evict_plans() for shard in self.shards)
            self._metrics.counter("warehouse.plan_evictions").inc(
                evicted if evicted else 1
            )
        self._certificate_digest = digest
        commutativity = certificate.get("commutativity")
        if isinstance(commutativity, Mapping) and commutativity.get(
            "commute"
        ) is False:
            raise WarehouseError(
                "sharding certificate refutes batch commutativity: "
                "concurrent per-source batches on this layout are "
                "order-dependent; compiled plans evicted, refusing to "
                "accept the certificate"
            )
        return changed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """Cross-shard instruments: commits, per-shard refresh counters."""
        return self._metrics

    def aggregate_metrics(self) -> MetricsRegistry:
        """A fresh registry folding this registry plus every shard's.

        Shard counters and histograms merge flat (summed across shards), so
        e.g. ``warehouse.refreshes`` is the total over all shards; per-shard
        detail stays available on ``shards[i].metrics``.
        """
        combined = MetricsRegistry()
        combined.merge_registry(self._metrics)
        for shard in self.shards:
            combined.merge_registry(shard.metrics)
        return combined

    def enable_tracing(self, capacity: int = 64) -> None:
        """Turn on refresh tracing on every shard (read via ``shards[i]``)."""
        for shard in self.shards:
            shard.enable_tracing(capacity)

    def __repr__(self) -> str:
        status = (
            "uninitialized" if any(s is None for s in self._committed)
            else f"version {self._version}"
        )
        return (
            f"ShardedWarehouse({self.router.shards} shards, "
            f"routed={list(self.router.routed_relations)}, {status})"
        )
