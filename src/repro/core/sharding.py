"""Sharded warehouses: key-range partitioned fact relations, MVCC commits.

A :class:`ShardedWarehouse` scales the Figure 1 warehouse horizontally: one
or more *fact* relations are partitioned by a routing attribute (key-range
or hashed — :class:`ShardRouting`), every shard runs a complete
:class:`~repro.core.warehouse.Warehouse` over the same specification, and a
:class:`ShardRouter` splits each reported update into per-shard parts —
routed deltas go to the shard owning their key range, every other delta is
broadcast to all shards.

Why this is *correct* is the paper's own argument, applied per shard: a
shard's warehouse tracks the source state restricted to (its slice of the
routed relations) ∪ (the unrouted relations in full). Key and inclusion
constraints survive restriction to a slice, so Theorem 2.2's complement and
Theorem 4.1's source-free maintenance hold shard-locally. Construction then
classifies every warehouse relation by how its global image assembles from
the shard images (``_analyze_slices``): definitions *rooted* in the routing
attribute satisfy ``V(∪ᵢRᵢ, S) = ∪ᵢV(Rᵢ, S)`` (select/project/join
distribute over union, and rooted tuples from different slices never meet),
while the ``K − π(…R…)`` complement shape of the relations joined against a
routed one flips to intersection: ``K − ∪ᵢBᵢ = ∩ᵢ(K − Bᵢ)``. Everything
independent of routed facts is simply replicated.

Commits are MVCC-style: each shard refresh swaps that shard's immutable
state mapping, and :meth:`ShardedWarehouse.commit` publishes the batch by
capturing the touched shards' state references in one synchronous block —
readers resolving :meth:`ShardedWarehouse.snapshot` therefore never observe
a half-applied batch, and a reader holding a snapshot keeps a consistent
image while any number of later commits land (see
:mod:`repro.storage.snapshot`). Every commit is appended to
:attr:`ShardedWarehouse.commit_log`, which is the replay script the
concurrency correctness harness feeds back through a synchronous reference
integrator (``tests/integrator/test_async_integrator.py``).
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)
from zlib import crc32

from repro.errors import WarehouseError
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.obs.metrics import MetricsRegistry
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.update import Delta, Update
from repro.views.psj import View
from repro.core.complement import WarehouseSpec, specify
from repro.core.translation import answer_query
from repro.core.warehouse import StateLike, Warehouse


def _stable_hash(value: object) -> int:
    """A process-stable hash (``hash(str)`` is salted per process)."""
    return crc32(repr(value).encode("utf-8"))


class ShardRouting:
    """The partitioning rule for one fact relation.

    Two strategies:

    * **range** — ``boundaries`` is an increasing sequence of split points;
      shard ``i`` owns values ``boundaries[i-1] <= v < boundaries[i]`` (the
      first shard owns everything below the first boundary, the last shard
      everything at or above the last), giving ``len(boundaries) + 1``
      shards. Values must be mutually comparable with the boundaries.
    * **hash** — ``shards`` fixes the shard count and values are assigned
      by a process-stable hash (``crc32`` of ``repr``), for keys with no
      useful order.

    Examples
    --------
    >>> routing = ShardRouting("Sale", "item", boundaries=["m"])
    >>> routing.shards, routing.shard_of("apple"), routing.shard_of("zoo")
    (2, 0, 1)
    """

    __slots__ = ("relation", "attribute", "strategy", "_boundaries", "_shards")

    def __init__(
        self,
        relation: str,
        attribute: str,
        boundaries: Optional[Sequence[object]] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        if (boundaries is None) == (shards is None):
            raise WarehouseError(
                f"routing for {relation!r}: give exactly one of "
                "boundaries= (range strategy) or shards= (hash strategy)"
            )
        if boundaries is not None:
            self._boundaries = tuple(boundaries)
            if not self._boundaries:
                raise WarehouseError(
                    f"routing for {relation!r}: boundaries must be non-empty"
                )
            self._shards = len(self._boundaries) + 1
            self.strategy = "range"
        else:
            assert shards is not None
            if shards < 1:
                raise WarehouseError(
                    f"routing for {relation!r}: shards must be positive: {shards}"
                )
            self._boundaries = ()
            self._shards = shards
            self.strategy = "hash"

    @property
    def shards(self) -> int:
        """The number of shards this routing maps onto."""
        return self._shards

    def shard_of(self, value: object) -> int:
        """The shard owning ``value`` of the routing attribute."""
        if self.strategy == "hash":
            return _stable_hash(value) % self._shards
        try:
            for index, bound in enumerate(self._boundaries):
                if value < bound:  # type: ignore[operator]
                    return index
        except TypeError:
            raise WarehouseError(
                f"routing for {self.relation!r}: value {value!r} is not "
                f"comparable with the range boundaries"
            ) from None
        return self._shards - 1

    def __repr__(self) -> str:
        detail = (
            f"boundaries={list(self._boundaries)}"
            if self.strategy == "range"
            else f"shards={self._shards}"
        )
        return (
            f"ShardRouting({self.relation!r}, {self.attribute!r}, "
            f"{self.strategy}, {detail})"
        )


class ShardRouter:
    """Routes updates and initial states to shards.

    Routed relations split row-by-row on their routing attribute; every
    other relation is *broadcast* — each shard keeps a full replica (the
    classic partitioned-facts / replicated-dimensions layout).

    Examples
    --------
    >>> router = ShardRouter([ShardRouting("Sale", "item", shards=2)])
    >>> router.shards, router.is_routed("Sale"), router.is_routed("Emp")
    (2, True, False)
    """

    def __init__(
        self,
        routings: Sequence[ShardRouting] = (),
        shards: Optional[int] = None,
    ) -> None:
        self._routings: Dict[str, ShardRouting] = {}
        for routing in routings:
            if routing.relation in self._routings:
                raise WarehouseError(
                    f"relation {routing.relation!r} routed more than once"
                )
            self._routings[routing.relation] = routing
        counts = {r.shards for r in self._routings.values()}
        if shards is not None:
            counts.add(shards)
        if not counts:
            raise WarehouseError(
                "router needs at least one routing or an explicit shards="
            )
        if len(counts) != 1:
            raise WarehouseError(
                f"inconsistent shard counts across routings: {sorted(counts)}"
            )
        self.shards = counts.pop()

    @property
    def routed_relations(self) -> Tuple[str, ...]:
        """The partitioned relation names, sorted."""
        return tuple(sorted(self._routings))

    def is_routed(self, relation: str) -> bool:
        """Whether ``relation`` is partitioned (else it is broadcast)."""
        return relation in self._routings

    def routing_for(self, relation: str) -> ShardRouting:
        """The :class:`ShardRouting` of a partitioned relation."""
        try:
            return self._routings[relation]
        except KeyError:
            raise WarehouseError(f"relation {relation!r} is not routed") from None

    def shard_of_row(
        self, relation: str, attributes: Sequence[str], row: Sequence[object]
    ) -> int:
        """The shard owning one row of a routed relation."""
        routing = self.routing_for(relation)
        try:
            position = list(attributes).index(routing.attribute)
        except ValueError:
            raise WarehouseError(
                f"routing attribute {routing.attribute!r} missing from "
                f"{relation!r} schema {tuple(attributes)}"
            ) from None
        return routing.shard_of(row[position])

    def split_relation(self, name: str, relation: Relation) -> List[Relation]:
        """Partition a routed relation instance into per-shard slices."""
        routing = self.routing_for(name)
        try:
            position = relation.attributes.index(routing.attribute)
        except ValueError:
            raise WarehouseError(
                f"routing attribute {routing.attribute!r} missing from "
                f"{name!r} schema {relation.attributes}"
            ) from None
        buckets: List[List[tuple]] = [[] for _ in range(self.shards)]
        for row in relation.rows:
            buckets[routing.shard_of(row[position])].append(row)
        return [Relation(relation.attributes, rows) for rows in buckets]

    def split_update(self, update: Update) -> Dict[int, Update]:
        """Split an update into non-empty per-shard updates.

        Routed deltas are partitioned row-by-row; unrouted deltas are
        broadcast into every shard's part. Shards left with nothing to do
        are absent from the result.
        """
        parts: Dict[int, List[Delta]] = {i: [] for i in range(self.shards)}
        for delta in update:
            if self.is_routed(delta.relation):
                inserts = self.split_relation(delta.relation, delta.inserts)
                deletes = self.split_relation(delta.relation, delta.deletes)
                for i in range(self.shards):
                    if inserts[i] or deletes[i]:
                        parts[i].append(
                            Delta(delta.relation, inserts[i], deletes[i])
                        )
            else:
                for i in range(self.shards):
                    parts[i].append(delta)
        return {
            i: Update(deltas) for i, deltas in parts.items() if deltas
        }

    def split_state(
        self, state: Mapping[str, Relation]
    ) -> List[Dict[str, Relation]]:
        """Per-shard initial states: routed relations sliced, rest shared."""
        shards: List[Dict[str, Relation]] = [dict() for _ in range(self.shards)]
        for name, relation in state.items():
            if self.is_routed(name):
                for i, part in enumerate(self.split_relation(name, relation)):
                    shards[i][name] = part
            else:
                for part_state in shards:
                    part_state[name] = relation
        return shards

    def __repr__(self) -> str:
        return (
            f"ShardRouter({self.shards} shards, "
            f"routed={list(self.routed_relations)})"
        )


class CommitRecord(NamedTuple):
    """One published batch: global version, net update, shards touched."""

    version: int
    update: Update
    shards: Tuple[int, ...]


def _union_all(relations: Sequence[Relation]) -> Relation:
    combined = relations[0]
    for relation in relations[1:]:
        combined = combined.union(relation)
    return combined


def _intersect_all(relations: Sequence[Relation]) -> Relation:
    combined = relations[0]
    for relation in relations[1:]:
        combined = combined.intersection(relation)
    return combined


class ShardedSnapshot:
    """A consistent cross-shard read view at one commit version.

    Holds the per-shard state mappings captured at commit time, plus each
    warehouse relation's *assembly mode* — how its global image is built
    from the shard images. Union-assembled relations (definitions rooted in
    a routed base) union their shard images; intersection-assembled ones
    (the ``K − π(…routed…)`` complement shape) intersect them; replicated
    relations read from shard 0. Assembly is lazy and memoized per
    snapshot. The read API mirrors
    :class:`~repro.storage.snapshot.SnapshotView`.
    """

    __slots__ = ("_version", "_states", "_assembly", "_memo")

    def __init__(
        self,
        version: int,
        states: Sequence[Mapping[str, Relation]],
        assembly: Mapping[str, str],
    ) -> None:
        self._version = version
        self._states: Tuple[Mapping[str, Relation], ...] = tuple(states)
        self._assembly = assembly
        self._memo: Dict[str, Relation] = {}

    @property
    def version(self) -> int:
        """The commit version this snapshot pins."""
        return self._version

    def names(self) -> Tuple[str, ...]:
        """The warehouse relation names visible in this snapshot, sorted."""
        return tuple(sorted(self._states[0]))

    def relation(self, name: str) -> Relation:
        """The assembled global image of one warehouse relation."""
        cached = self._memo.get(name)
        if cached is not None:
            return cached
        if name not in self._states[0]:
            raise WarehouseError(
                f"snapshot (version {self._version}) has no relation {name!r}"
            )
        mode = self._assembly.get(name, ASSEMBLE_REPLICATED)
        if mode == ASSEMBLE_REPLICATED or len(self._states) == 1:
            assembled = self._states[0][name]
        elif mode == ASSEMBLE_UNION:
            assembled = _union_all([state[name] for state in self._states])
        else:
            assembled = _intersect_all([state[name] for state in self._states])
        self._memo[name] = assembled
        return assembled

    def shard_relation(self, shard: int, name: str) -> Relation:
        """One shard's pinned image of a warehouse relation."""
        try:
            return self._states[shard][name]
        except (IndexError, KeyError):
            raise WarehouseError(
                f"snapshot (version {self._version}): no relation "
                f"{name!r} on shard {shard}"
            ) from None

    def state(self) -> Dict[str, Relation]:
        """The fully assembled ``{name: Relation}`` global state."""
        return {name: self.relation(name) for name in self.names()}

    def total_rows(self) -> int:
        """Total tuples in the assembled global image."""
        return sum(len(self.relation(name)) for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._states[0]

    def __iter__(self) -> Iterator[str]:
        return iter(self._states[0])

    def __len__(self) -> int:
        return len(self._states[0])

    def __repr__(self) -> str:
        return (
            f"ShardedSnapshot(version={self._version}, "
            f"{len(self._states)} shards, {len(self._states[0])} relations)"
        )


# How a warehouse relation's global image assembles from its shard images.
ASSEMBLE_REPLICATED = "replicated"  # independent of routed facts: any shard
ASSEMBLE_UNION = "union"  # E(∪ᵢRᵢ) = ∪ᵢ E(Rᵢ)
ASSEMBLE_INTERSECT = "intersect"  # E(∪ᵢRᵢ) = ∩ᵢ E(Rᵢ)


class _SliceAnalysis(NamedTuple):
    """Result of the decomposability walk for one routed relation.

    ``assemble`` — one of the ``ASSEMBLE_*`` modes; ``rooted`` — for
    union-mode subtrees, the output attribute names (after
    renames/projections) that still carry the routing attribute's value for
    *every* tuple the subtree can produce. Non-empty ``rooted`` means each
    output tuple determines its own shard (its slices are disjoint).
    """

    assemble: str
    rooted: frozenset


def _analyze_slices(
    expression: Expression,
    routed: str,
    attribute: str,
    scope: Mapping[str, Tuple[str, ...]],
    context: str,
) -> _SliceAnalysis:
    """Decide how ``expression`` over slices assembles to the global image.

    For disjoint slices ``R = ∪ᵢ Rᵢ`` the walk establishes, per subtree,
    one of three structural identities: independence of ``R``
    (*replicated*), ``E(∪ᵢRᵢ) = ∪ᵢE(Rᵢ)`` (*union* — PSJ operators
    distribute over union in each argument; two ``R``-dependent operands
    may only meet on a *rooted* attribute, one guaranteed to carry the
    routing value, so tuples from different slices never combine), or
    ``E(∪ᵢRᵢ) = ∩ᵢE(Rᵢ)`` (*intersect* — the ``K − π(…R…)`` shape of
    Theorem 2.2 complements for the relations *joined against* the routed
    one: subtracting a growing union flips union-assembly into
    intersection-assembly). Raises :class:`WarehouseError` for shapes where
    no identity can be established.
    """

    def fail(reason: str) -> "WarehouseError":
        return WarehouseError(
            f"cannot shard {routed!r}: warehouse relation {context!r} "
            f"{reason}, so its global image is not assemblable from shard "
            "images"
        )

    def walk(node: Expression) -> _SliceAnalysis:
        if isinstance(node, RelationRef):
            if node.name == routed:
                return _SliceAnalysis(ASSEMBLE_UNION, frozenset((attribute,)))
            return _SliceAnalysis(ASSEMBLE_REPLICATED, frozenset())
        if isinstance(node, Empty):
            return _SliceAnalysis(ASSEMBLE_REPLICATED, frozenset())
        if isinstance(node, Select):
            # Selection commutes with both union and intersection.
            return walk(node.child)
        if isinstance(node, Project):
            inner = walk(node.child)
            if inner.assemble == ASSEMBLE_INTERSECT:
                # Projection does not commute with intersection.
                raise fail(f"projects an intersection-assembled image of {routed!r}")
            return _SliceAnalysis(
                inner.assemble, inner.rooted & frozenset(node.attrs)
            )
        if isinstance(node, Rename):
            inner = walk(node.child)
            mapping = dict(node.mapping)
            return _SliceAnalysis(
                inner.assemble,
                frozenset(mapping.get(name, name) for name in inner.rooted),
            )
        if isinstance(node, Join):
            left, right = walk(node.left), walk(node.right)
            kinds = {left.assemble, right.assemble}
            if kinds == {ASSEMBLE_REPLICATED}:
                return _SliceAnalysis(ASSEMBLE_REPLICATED, frozenset())
            if ASSEMBLE_INTERSECT in kinds:
                # A natural-join tuple determines each operand's sub-tuple
                # (set semantics), so join commutes with intersection —
                # but only against a slice-independent other side.
                if kinds == {ASSEMBLE_INTERSECT, ASSEMBLE_REPLICATED}:
                    return _SliceAnalysis(ASSEMBLE_INTERSECT, frozenset())
                raise fail(
                    f"joins an intersection-assembled image of {routed!r} "
                    "with a slice-dependent side"
                )
            if left.assemble == ASSEMBLE_UNION and right.assemble == ASSEMBLE_UNION:
                shared = frozenset(node.left.attributes(scope)) & frozenset(
                    node.right.attributes(scope)
                )
                if not (left.rooted & right.rooted & shared):
                    raise fail(
                        f"joins two subexpressions over {routed!r} without "
                        f"equating the routing attribute {attribute!r}"
                    )
                return _SliceAnalysis(ASSEMBLE_UNION, left.rooted | right.rooted)
            rooted = left.rooted if left.assemble == ASSEMBLE_UNION else right.rooted
            return _SliceAnalysis(ASSEMBLE_UNION, rooted)
        if isinstance(node, Union):
            left, right = walk(node.left), walk(node.right)
            kinds = {left.assemble, right.assemble}
            if ASSEMBLE_INTERSECT in kinds:
                raise fail(f"unions an intersection-assembled image of {routed!r}")
            if kinds == {ASSEMBLE_REPLICATED}:
                return _SliceAnalysis(ASSEMBLE_REPLICATED, frozenset())
            if kinds == {ASSEMBLE_UNION}:
                if not (left.rooted & right.rooted):
                    raise fail(
                        f"unions two subexpressions over {routed!r} that do "
                        f"not both retain the routing attribute {attribute!r}"
                    )
                return _SliceAnalysis(ASSEMBLE_UNION, left.rooted & right.rooted)
            # Union with a slice-independent side replicates that side into
            # every shard image — still union-assembled (sets dedup), but
            # the result no longer determines a tuple's shard (not rooted).
            return _SliceAnalysis(ASSEMBLE_UNION, frozenset())
        if isinstance(node, Difference):
            left, right = walk(node.left), walk(node.right)
            la, ra = left.assemble, right.assemble
            if la == ASSEMBLE_REPLICATED and ra == ASSEMBLE_REPLICATED:
                return _SliceAnalysis(ASSEMBLE_REPLICATED, frozenset())
            if la == ASSEMBLE_UNION and ra == ASSEMBLE_REPLICATED:
                # (∪ᵢAᵢ) − K = ∪ᵢ(Aᵢ − K), unconditionally.
                return _SliceAnalysis(ASSEMBLE_UNION, left.rooted)
            if la == ASSEMBLE_UNION and ra == ASSEMBLE_UNION:
                if not (left.rooted & right.rooted):
                    raise fail(
                        f"subtracts between subexpressions over {routed!r} "
                        f"that do not both retain the routing attribute "
                        f"{attribute!r}"
                    )
                return _SliceAnalysis(ASSEMBLE_UNION, left.rooted & right.rooted)
            if la == ASSEMBLE_REPLICATED and ra == ASSEMBLE_UNION:
                # K − (∪ᵢBᵢ) = ∩ᵢ(K − Bᵢ): the Theorem 2.2 complement
                # shape for relations joined against the routed one.
                return _SliceAnalysis(ASSEMBLE_INTERSECT, frozenset())
            if la == ASSEMBLE_INTERSECT and ra == ASSEMBLE_REPLICATED:
                # (∩ᵢAᵢ) − K = ∩ᵢ(Aᵢ − K).
                return _SliceAnalysis(ASSEMBLE_INTERSECT, frozenset())
            if la == ASSEMBLE_REPLICATED and ra == ASSEMBLE_INTERSECT:
                # K − (∩ᵢBᵢ) = ∪ᵢ(K − Bᵢ), but slices overlap: not rooted.
                return _SliceAnalysis(ASSEMBLE_UNION, frozenset())
            raise fail(
                f"subtracts incompatibly-assembled images of {routed!r}"
            )
        raise fail(f"uses unsupported operator {type(node).__name__}")

    return walk(expression)


class ShardedWarehouse:
    """N complete warehouses over one spec, facts partitioned by key range.

    All shards share the same :class:`~repro.core.complement.WarehouseSpec`
    (complements and maintenance plans are state-independent); each holds
    the materialized state for its slice. Reads go through MVCC snapshots
    (:meth:`snapshot`); writes split per shard (:meth:`split`), refresh
    shard-locally (:meth:`apply_to_shard`) and publish atomically
    (:meth:`commit`) — :meth:`apply` bundles the three for synchronous use,
    while the async integrator drives them directly so refreshes on
    disjoint shards can interleave.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.views.psj import View
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> wh = ShardedWarehouse.specify(
    ...     catalog, [View("Sold", parse("Sale join Emp"))],
    ...     routings=[ShardRouting("Sale", "item", shards=2)],
    ... )
    >>> _ = wh.initialize({
    ...     "Sale": Relation(("item", "clerk"), [("TV", "Mary")]),
    ...     "Emp": Relation(("clerk", "age"), [("Mary", 23)]),
    ... })
    >>> wh.relation("Sold").rows
    frozenset({('TV', 'Mary', 23)})
    """

    def __init__(
        self,
        spec: WarehouseSpec,
        router: Optional[ShardRouter] = None,
        shards: Optional[int] = None,
        cached: bool = True,
        engine: Optional[str] = None,
        compile_plans: Optional[bool] = None,
    ) -> None:
        if router is None:
            router = ShardRouter((), shards=shards if shards is not None else 1)
        elif shards is not None and shards != router.shards:
            raise WarehouseError(
                f"shards={shards} disagrees with router ({router.shards} shards)"
            )
        self.spec = spec
        self.router = router
        # Per warehouse relation: how its global image assembles from the
        # shard images (replicated / union / intersect). Relations whose
        # definitions never read a routed base stay replicated — broadcast
        # updates keep all their replicas identical.
        self._assembly: Dict[str, str] = self._validate_routings()
        self.shards: Tuple[Warehouse, ...] = tuple(
            Warehouse(spec, cached=cached, engine=engine, compile_plans=compile_plans)
            for _ in range(router.shards)
        )
        self._committed: List[Optional[Dict[str, Relation]]] = [
            None for _ in range(router.shards)
        ]
        self._version = 0
        self._snapshot: Optional[ShardedSnapshot] = None
        self._commit_log: List[CommitRecord] = []
        self._metrics = MetricsRegistry()
        self._metrics.gauge("warehouse.shards").set(router.shards)

    def _validate_routings(self) -> Dict[str, str]:
        """Check shardability and classify each warehouse relation's assembly."""
        catalog = self.spec.catalog
        definitions = self.spec.definitions_over_sources()
        scope = self.spec.source_scope()
        assembly: Dict[str, str] = {}
        contributor: Dict[str, str] = {}
        for name in self.router.routed_relations:
            routing = self.router.routing_for(name)
            if name not in catalog:
                raise WarehouseError(f"routed relation {name!r} not in catalog")
            if routing.attribute not in catalog[name].attributes:
                raise WarehouseError(
                    f"routing attribute {routing.attribute!r} is not an "
                    f"attribute of {name!r}"
                )
            for wh_name, expression in definitions.items():
                analysis = _analyze_slices(
                    expression, name, routing.attribute, scope, wh_name
                )
                if analysis.assemble == ASSEMBLE_REPLICATED:
                    continue
                if wh_name in contributor:
                    # Per-shard evaluation only sees same-shard slices of
                    # both routed relations; cross-shard combinations are
                    # unaccounted for, so this layout is not supported.
                    raise WarehouseError(
                        f"warehouse relation {wh_name!r} depends on two "
                        f"routed relations ({contributor[wh_name]!r} and "
                        f"{name!r}); shard one of them or neither"
                    )
                contributor[wh_name] = name
                assembly[wh_name] = analysis.assemble
        return assembly

    @classmethod
    def specify(
        cls,
        catalog: Catalog,
        views: Sequence[View],
        routings: Sequence[ShardRouting] = (),
        shards: Optional[int] = None,
        method: str = "thm22",
        cached: bool = True,
        engine: Optional[str] = None,
        compile_plans: Optional[bool] = None,
        **options,
    ) -> "ShardedWarehouse":
        """Build a sharded warehouse from a catalog and PSJ views."""
        router = (
            ShardRouter(routings)
            if routings
            else ShardRouter((), shards=shards if shards is not None else 1)
        )
        return cls(
            specify(catalog, views, method=method, **options),
            router=router,
            shards=shards,
            cached=cached,
            engine=engine,
            compile_plans=compile_plans,
        )

    # ------------------------------------------------------------------
    # State and MVCC reads
    # ------------------------------------------------------------------

    def initialize(self, source: StateLike) -> None:
        """Materialize every shard from an initial source snapshot."""
        state = source.state() if isinstance(source, Database) else dict(source)
        for shard, part in zip(self.shards, self.router.split_state(state)):
            shard.initialize(part)
        self.commit(range(self.router.shards))

    @property
    def version(self) -> int:
        """The global commit version (bumped once per published batch)."""
        return self._version

    @property
    def commit_log(self) -> Tuple[CommitRecord, ...]:
        """Every published update batch, in serialization order.

        Replaying these updates in order through a single synchronous
        reference warehouse must reproduce the assembled global state at
        each version — the differential oracle the concurrency tests run.
        """
        return tuple(self._commit_log)

    def snapshot(self) -> ShardedSnapshot:
        """The newest committed cross-shard snapshot (cached per version)."""
        snapshot = self._snapshot
        if snapshot is None:
            states = []
            for i, state in enumerate(self._committed):
                if state is None:
                    raise WarehouseError(
                        "sharded warehouse not initialized; call initialize()"
                    )
                states.append(state)
            snapshot = ShardedSnapshot(self._version, states, self._assembly)
            self._snapshot = snapshot
        return snapshot

    def relation(self, name: str) -> Relation:
        """The assembled global image of one warehouse relation."""
        return self.snapshot().relation(name)

    def state(self) -> Dict[str, Relation]:
        """The assembled global warehouse state at the newest commit."""
        return self.snapshot().state()

    def storage_rows(self) -> int:
        """Total materialized tuples across all shards (slices, not union)."""
        return sum(shard.storage_rows() for shard in self.shards)

    def reconstruct(self, relation: str) -> Relation:
        """Recompute one base relation via Equation (4), across shards."""
        if self.router.is_routed(relation):
            return _union_all(
                [shard.reconstruct(relation) for shard in self.shards]
            )
        return self.shards[0].reconstruct(relation)

    def answer(self, query) -> Relation:
        """Answer a source query from the newest committed snapshot."""
        self._metrics.counter("warehouse.queries").inc()
        return answer_query(
            self.spec,
            self.snapshot().state(),
            self.shards[0]._as_expression(query),
            engine=self.shards[0].engine,
        )

    # ------------------------------------------------------------------
    # Writes: split / refresh / commit
    # ------------------------------------------------------------------

    def split(self, update: Update) -> Dict[int, Update]:
        """Route an update: non-empty per-shard parts keyed by shard index."""
        return self.router.split_update(update)

    def apply_to_shard(self, index: int, update: Update) -> Dict[str, Delta]:
        """Refresh one shard with its part of a batch (no publication).

        The shard's state swap is locally atomic, but readers keep seeing
        the previous *committed* snapshot until :meth:`commit` publishes
        the whole batch — this is what keeps multi-shard batches untorn.
        """
        applied = self.shards[index].apply(update)
        metrics = self._metrics
        metrics.counter(f"warehouse.shard_refreshes.{index}").inc()
        rows = sum(len(d.inserts) + len(d.deletes) for d in applied.values())
        if rows:
            metrics.counter(f"warehouse.shard_refresh_rows.{index}").inc(rows)
        return applied

    def commit(
        self, shard_indices: Iterable[int], update: Optional[Update] = None
    ) -> int:
        """Publish the touched shards' current states as one new version.

        Runs as a single synchronous block (no awaits, no I/O): the state
        references of every touched shard are captured together, the global
        version bumps once, and the cached snapshot is invalidated — under
        cooperative (asyncio) concurrency a reader can never observe a
        partially-captured batch. ``update`` (the net batch, pre-split) is
        appended to :attr:`commit_log` for differential replay.
        """
        touched = tuple(sorted(set(shard_indices)))
        for index in touched:
            self._committed[index] = self.shards[index].state
        self._version += 1
        self._snapshot = None
        if update is not None:
            self._commit_log.append(CommitRecord(self._version, update, touched))
        self._metrics.counter("warehouse.commits").inc()
        return self._version

    def apply(self, update: Update) -> Dict[str, Delta]:
        """Split, refresh every affected shard, and commit — synchronously.

        Returns the per-shard effective deltas folded together (replicated
        relations report one shard's delta; sliced relations union their
        per-shard deltas — for intersection-assembled complements this fold
        is a diagnostic over-approximation of the global change, since the
        exact global delta needs both assembled images).
        """
        parts = self.split(update)
        if not parts:
            return {}
        merged: Dict[str, Delta] = {}
        for index in sorted(parts):
            for name, delta in self.apply_to_shard(index, parts[index]).items():
                existing = merged.get(name)
                if existing is None or name not in self._assembly:
                    merged[name] = delta
                else:
                    merged[name] = Delta(
                        name,
                        inserts=existing.inserts.union(delta.inserts),
                        deletes=existing.deletes.union(delta.deletes),
                    )
        self.commit(parts, update)
        return merged

    def apply_batch(self, updates: Iterable[Update]) -> Dict[str, Delta]:
        """Compose a batch into one net update and apply it once."""
        batch: Optional[Update] = None
        composed = 0
        for update in updates:
            batch = update if batch is None else batch.compose(update)
            composed += 1
        if batch is None:
            return {}
        self._metrics.histogram("warehouse.batch_size").observe(composed)
        return self.apply(batch)

    def insert(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> Dict[str, Delta]:
        """Convenience: apply an insertion update."""
        attrs = self.spec.catalog[relation].attributes
        return self.apply(Update.insert(relation, attrs, rows))

    def delete(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> Dict[str, Delta]:
        """Convenience: apply a deletion update."""
        attrs = self.spec.catalog[relation].attributes
        return self.apply(Update.delete(relation, attrs, rows))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """Cross-shard instruments: commits, per-shard refresh counters."""
        return self._metrics

    def aggregate_metrics(self) -> MetricsRegistry:
        """A fresh registry folding this registry plus every shard's.

        Shard counters and histograms merge flat (summed across shards), so
        e.g. ``warehouse.refreshes`` is the total over all shards; per-shard
        detail stays available on ``shards[i].metrics``.
        """
        combined = MetricsRegistry()
        combined.merge_registry(self._metrics)
        for shard in self.shards:
            combined.merge_registry(shard.metrics)
        return combined

    def enable_tracing(self, capacity: int = 64) -> None:
        """Turn on refresh tracing on every shard (read via ``shards[i]``)."""
        for shard in self.shards:
            shard.enable_tracing(capacity)

    def __repr__(self) -> str:
        status = (
            "uninitialized" if any(s is None for s in self._committed)
            else f"version {self._version}"
        )
        return (
            f"ShardedWarehouse({self.router.shards} shards, "
            f"routed={list(self.router.routed_relations)}, {status})"
        )
