"""Auxiliary views for self-maintainability, after Quass et al. [18].

Section 1 of the paper contrasts its complement-first design with the
approach of Quass, Gupta, Mumick, Widom (PDIS 1996): start from the
*maintenance expressions* of a single view and extract auxiliary views that
make it self-maintainable w.r.t. updates. This module implements the
classical construction for one PSJ view ``V = pi_Z(sigma_C(R_1 ⋈ … ⋈ R_k))``:

* for each base relation ``R_i``, the auxiliary view keeps only the
  attributes the maintenance of ``V`` can ever touch — output attributes,
  join attributes, and selection attributes — and pre-applies the conjuncts
  of ``C`` local to ``R_i``::

      A_i = pi_{N_i}(sigma_{local_i}(R_i)),
      N_i = attr(R_i) ∩ (Z ∪ joinattrs ∪ attr(C))

* an insertion ``Δ`` into ``R_j`` is then folded into ``V`` via

      ΔV = pi_Z(sigma_C(Δ ⋈ ⋈_{i≠j} A_i))

  which references no base relation (Δ is part of the notification, the
  ``A_i`` are materialized at the warehouse).

Deletions in [18] additionally require key information in ``Z``; this
reproduction implements the insertion direction (the one the paper's
comparison discusses) and exposes the storage footprint so the benchmarks
can compare it against the complement (E11). The structural relationship
the paper asserts — the complement materializes exactly the information
the auxiliary-view route would otherwise have to fetch from the sources —
is exercised in ``tests/core/test_auxviews.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.errors import WarehouseError
from repro.algebra.conditions import Condition, conjoin
from repro.algebra.expressions import (
    Expression,
    Join,
    Project,
    RelationRef,
    select as select_expr,
)
from repro.algebra.evaluator import evaluate
from repro.schema.catalog import Catalog
from repro.storage.relation import Relation
from repro.views.psj import View


class AuxiliaryViewSet:
    """The per-relation auxiliary views making one PSJ view self-maintainable
    w.r.t. insertions.

    Attributes
    ----------
    view:
        The target warehouse view.
    auxiliaries:
        ``{relation: expression over that relation}`` — the ``A_i``.
    """

    def __init__(self, view: View, auxiliaries: Dict[str, Expression]) -> None:
        self.view = view
        self.auxiliaries = auxiliaries

    def names(self) -> Tuple[str, ...]:
        """Auxiliary view names, one per base relation (``A_<view>_<R>``)."""
        return tuple(f"A_{self.view.name}_{rel}" for rel in self.auxiliaries)

    def materialize(self, state: Mapping[str, Relation]) -> Dict[str, Relation]:
        """Evaluate all auxiliary views over a source state."""
        return {
            f"A_{self.view.name}_{rel}": evaluate(expr, state)
            for rel, expr in self.auxiliaries.items()
        }

    def storage_rows(self, state: Mapping[str, Relation]) -> int:
        """Total auxiliary tuples on ``state``."""
        return sum(len(rel) for rel in self.materialize(state).values())

    def insert_delta_expression(self, relation: str) -> Expression:
        """``ΔV`` for an insertion into ``relation``.

        The returned expression references ``<relation>__ins`` (the reported
        delta) and the *other* relations' auxiliary view names — nothing
        else, which is the self-maintainability claim.
        """
        if relation not in self.auxiliaries:
            raise WarehouseError(
                f"view {self.view.name!r} does not involve {relation!r}"
            )
        psj = self.view.psj()
        parts: List[Expression] = [RelationRef(relation + "__ins")]
        for other in psj.relations:
            if other != relation:
                parts.append(RelationRef(f"A_{self.view.name}_{other}"))
        body: Expression = parts[0]
        for part in parts[1:]:
            body = Join(body, part)
        body = select_expr(body, psj.condition)
        if psj.projection is not None:
            body = Project(body, psj.projection)
        return body

    def __repr__(self) -> str:
        return f"AuxiliaryViewSet({self.view.name!r}, {list(self.auxiliaries)})"


def _local_condition(condition: Condition, attrs: FrozenSet[str]) -> Condition:
    """The conjuncts of ``condition`` referencing only ``attrs``."""
    return conjoin(
        [part for part in condition.conjuncts() if part.attributes() <= attrs]
    )


def auxiliary_views(catalog: Catalog, view: View) -> AuxiliaryViewSet:
    """Build the [18]-style auxiliary views for one PSJ view.

    Examples
    --------
    >>> from repro import Catalog, View, parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> aux = auxiliary_views(
    ...     catalog, View("V", parse("pi[item, age](Sale join Emp)")))
    >>> print(aux.auxiliaries["Emp"])
    Emp
    >>> print(aux.auxiliaries["Sale"])
    Sale
    """
    scope = {s.name: s.attributes for s in catalog.schemas()}
    psj = view.psj(scope)

    # Attributes that matter: output, join, and selection attributes.
    output = set(psj.attributes(scope))
    condition_attrs = set(psj.condition.attributes())
    join_attrs: set = set()
    relations = psj.relations
    for i, first in enumerate(relations):
        for second in relations[i + 1 :]:
            join_attrs |= catalog.attributes(first) & catalog.attributes(second)
    needed = output | condition_attrs | join_attrs

    auxiliaries: Dict[str, Expression] = {}
    for relation in relations:
        attrs = catalog.attributes(relation)
        keep = tuple(a for a in catalog[relation].attributes if a in needed)
        if not keep:
            # Degenerate: the relation contributes nothing but its presence;
            # keep one attribute so the auxiliary is a relation at all.
            keep = (catalog[relation].attributes[0],)
        local = _local_condition(psj.condition, frozenset(attrs))
        body: Expression = select_expr(RelationRef(relation), local)
        if set(keep) != set(attrs):
            body = Project(body, keep)
        auxiliaries[relation] = body
    return AuxiliaryViewSet(view, auxiliaries)


def verify_insert_maintenance(
    aux: AuxiliaryViewSet,
    state: Mapping[str, Relation],
    relation: str,
    inserted: Relation,
) -> bool:
    """Check the self-maintenance identity on one concrete state.

    Evaluates the true view delta (re-evaluation on the post-insert state)
    against the auxiliary-only delta expression; returns whether they agree.
    """
    view_expr = aux.view.definition
    old_value = evaluate(view_expr, state)
    new_state = dict(state)
    new_state[relation] = state[relation].union(inserted)
    new_value = evaluate(view_expr, new_state)
    true_delta = new_value.difference(old_value)

    bindings: Dict[str, Relation] = dict(aux.materialize(state))
    bindings[relation + "__ins"] = inserted.difference(state[relation])
    computed = evaluate(aux.insert_delta_expression(relation), bindings)
    # The aux route may re-derive tuples already in the view (an insertion
    # joining entirely within existing data); the *effective* delta is what
    # must match.
    return computed.difference(old_value) == true_delta
