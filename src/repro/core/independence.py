"""Independence verification: Proposition 2.1 and complement checks.

Proposition 2.1 characterizes complements: ``C`` is a complement of ``V``
iff the mapping ``d -> (V(d), C(d))`` is injective on database states. This
module provides

* :func:`verify_complement` — the *constructive* check on given states:
  evaluate the warehouse mapping ``W``, then the inverse ``W^{-1}``
  (Equation (4)), and confirm every base relation is reconstructed exactly;
* :func:`verify_one_to_one` — the *extensional* check: injectivity of ``W``
  over an explicit collection of states (used with
  :func:`enumerate_states` for exhaustive small-domain tests, and with
  random states in property tests);
* :func:`enumerate_states` — all constraint-satisfying database states over
  small per-attribute domains.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.evaluator import evaluate_all
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.core.complement import WarehouseSpec

State = Mapping[str, Relation]


def warehouse_state(spec: WarehouseSpec, source_state: State) -> Dict[str, Relation]:
    """Apply the warehouse mapping ``W``: evaluate views and complements.

    Returns the materialized warehouse state ``{name: relation}`` for all
    stored warehouse relations.
    """
    return evaluate_all(spec.definitions_over_sources(), source_state)


def reconstructed_state(
    spec: WarehouseSpec, warehouse: State
) -> Dict[str, Relation]:
    """Apply ``W^{-1}``: reconstruct every base relation (Equation (4))."""
    return evaluate_all(spec.inverses, warehouse)


def verify_complement(
    spec: WarehouseSpec, source_state: State
) -> Tuple[bool, List[str]]:
    """Check on one state that the spec's complement really complements.

    Evaluates ``W`` then ``W^{-1}`` and compares against the original state.
    Returns ``(ok, problems)`` with human-readable mismatch descriptions.
    """
    warehouse = warehouse_state(spec, source_state)
    rebuilt = reconstructed_state(spec, warehouse)
    problems: List[str] = []
    for schema in spec.catalog.schemas():
        original = source_state[schema.name]
        recovered = rebuilt[schema.name]
        if original != recovered:
            missing = original.rows - original._aligned_rows(recovered)
            extra = recovered.rows - recovered._aligned_rows(original)
            problems.append(
                f"{schema.name}: reconstruction mismatch "
                f"(missing {sorted(missing, key=repr)[:5]}, "
                f"extra {sorted(extra, key=repr)[:5]})"
            )
    return (not problems, problems)


def is_complement(spec: WarehouseSpec, states: Iterable[State]) -> bool:
    """Whether reconstruction succeeds on all given states."""
    return all(verify_complement(spec, state)[0] for state in states)


def verify_one_to_one(
    spec: WarehouseSpec, states: Sequence[State]
) -> Tuple[bool, Optional[Tuple[int, int]]]:
    """Proposition 2.1 extensionally: is ``W`` injective on ``states``?

    Returns ``(True, None)`` if no two distinct states map to the same
    warehouse state; otherwise ``(False, (i, j))`` with the indices of a
    colliding pair.
    """
    images: List[Tuple[int, Dict[str, Relation]]] = []
    for index, state in enumerate(states):
        image = warehouse_state(spec, state)
        for other_index, other_image in images:
            if image == other_image and not _states_equal(
                states[other_index], state, spec.catalog
            ):
                return False, (other_index, index)
        images.append((index, image))
    return True, None


def _states_equal(left: State, right: State, catalog: Catalog) -> bool:
    return all(left[name] == right[name] for name in catalog.relation_names())


def _powerset(rows: Sequence[tuple], max_rows: Optional[int]) -> Iterator[frozenset]:
    limit = len(rows) if max_rows is None else min(max_rows, len(rows))
    for size in range(limit + 1):
        for combo in combinations(rows, size):
            yield frozenset(combo)


def enumerate_states(
    catalog: Catalog,
    domains: Mapping[str, Sequence[object]],
    max_rows_per_relation: Optional[int] = None,
    only_valid: bool = True,
) -> Iterator[Dict[str, Relation]]:
    """All database states over small per-attribute domains.

    Parameters
    ----------
    catalog:
        The schema; every attribute must appear in ``domains``.
    domains:
        ``{attribute: candidate values}``. Attributes shared across
        relations share the domain (as natural join semantics expect).
    max_rows_per_relation:
        Cap each relation's cardinality (the state space is exponential —
        keep domains tiny and use this cap in tests).
    only_valid:
        Yield only constraint-satisfying states (the paper's setting: the
        constraints are known to hold in the sources).

    Yields
    ------
    dict
        ``{relation: Relation}`` states, exhaustively.
    """
    per_relation: List[List[frozenset]] = []
    names: List[str] = []
    for schema in catalog.schemas():
        value_lists = []
        for attribute in schema.attributes:
            if attribute not in domains:
                raise KeyError(f"no domain given for attribute {attribute!r}")
            value_lists.append(list(domains[attribute]))
        all_rows = [tuple(row) for row in product(*value_lists)]
        per_relation.append(list(_powerset(all_rows, max_rows_per_relation)))
        names.append(schema.name)

    for combo in product(*per_relation):
        state = {
            name: Relation(catalog[name].attributes, rows)
            for name, rows in zip(names, combo)
        }
        if only_valid:
            db = Database(catalog, state, check=False)
            if not db.satisfies_constraints():
                continue
        yield state
