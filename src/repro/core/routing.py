"""Pure shard-routing math: value → shard, with no warehouse dependencies.

This is a leaf module on purpose. The runtime router
(:class:`repro.core.sharding.ShardRouter`) and the static shard-independence
prover (:mod:`repro.analysis.concurrency`) must agree *exactly* on which
shard owns a value — the prover's PROVED verdict is a claim about the
runtime's row placement — so both import the one :class:`ShardRouting`
defined here instead of reimplementing the mapping.

Two strategies:

* **range** — an increasing sequence of split points; shard ``i`` owns
  ``boundaries[i-1] <= v < boundaries[i]``;
* **hash** — a fixed shard count with a process-stable hash (``crc32`` of
  ``repr``; Python's ``hash(str)`` is salted per process and would re-route
  every restart).

Values that cannot be routed — range values incomparable with the
boundaries, hash values whose ``repr`` fails — raise descriptive
:class:`~repro.errors.WarehouseError`\\ s, never bare ``TypeError``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple
from zlib import crc32

from repro.errors import WarehouseError


def _stable_hash(value: object) -> int:
    """A process-stable hash (``hash(str)`` is salted per process)."""
    return crc32(repr(value).encode("utf-8"))


class ShardRouting:
    """The partitioning rule for one fact relation.

    Two strategies:

    * **range** — ``boundaries`` is an increasing sequence of split points;
      shard ``i`` owns values ``boundaries[i-1] <= v < boundaries[i]`` (the
      first shard owns everything below the first boundary, the last shard
      everything at or above the last), giving ``len(boundaries) + 1``
      shards. Values must be mutually comparable with the boundaries.
    * **hash** — ``shards`` fixes the shard count and values are assigned
      by a process-stable hash (``crc32`` of ``repr``), for keys with no
      useful order.

    Examples
    --------
    >>> routing = ShardRouting("Sale", "item", boundaries=["m"])
    >>> routing.shards, routing.shard_of("apple"), routing.shard_of("zoo")
    (2, 0, 1)
    """

    __slots__ = ("relation", "attribute", "strategy", "_boundaries", "_shards")

    def __init__(
        self,
        relation: str,
        attribute: str,
        boundaries: Optional[Sequence[object]] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.relation = relation
        self.attribute = attribute
        if (boundaries is None) == (shards is None):
            raise WarehouseError(
                f"routing for {relation!r}: give exactly one of "
                "boundaries= (range strategy) or shards= (hash strategy)"
            )
        if boundaries is not None:
            self._boundaries: Tuple[object, ...] = tuple(boundaries)
            if not self._boundaries:
                raise WarehouseError(
                    f"routing for {relation!r}: boundaries must be non-empty"
                )
            self._shards = len(self._boundaries) + 1
            self.strategy = "range"
        else:
            assert shards is not None
            if shards < 1:
                raise WarehouseError(
                    f"routing for {relation!r}: shards must be positive: {shards}"
                )
            self._boundaries = ()
            self._shards = shards
            self.strategy = "hash"

    @property
    def shards(self) -> int:
        """The number of shards this routing maps onto."""
        return self._shards

    @property
    def boundaries(self) -> Tuple[object, ...]:
        """The range split points (empty for the hash strategy)."""
        return self._boundaries

    def shard_of(self, value: object) -> int:
        """The shard owning ``value`` of the routing attribute."""
        if self.strategy == "hash":
            try:
                return _stable_hash(value) % self._shards
            except Exception as exc:  # repr()/encode() of a broken value
                raise WarehouseError(
                    f"routing for {self.relation!r}: value of type "
                    f"{type(value).__name__} cannot be hash-routed "
                    f"(its repr() failed: {exc})"
                ) from None
        try:
            for index, bound in enumerate(self._boundaries):
                if value < bound:  # type: ignore[operator]
                    return index
        except TypeError:
            raise WarehouseError(
                f"routing for {self.relation!r}: value {value!r} is not "
                f"comparable with the range boundaries"
            ) from None
        return self._shards - 1

    def compatible_with(self, other: "ShardRouting") -> bool:
        """Whether equal attribute values land on the same shard under both.

        This is the *co-partitioning* precondition the shard-independence
        prover checks for views joining two routed relations on their
        routing attributes: same strategy and same partition of the value
        domain (identical boundaries for range, identical shard count for
        hash — the hash itself is attribute-independent).
        """
        if self.strategy != other.strategy or self._shards != other._shards:
            return False
        if self.strategy == "range":
            return self._boundaries == other._boundaries
        return True

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form (used inside sharding certificates)."""
        out: Dict[str, object] = {
            "relation": self.relation,
            "attribute": self.attribute,
        }
        if self.strategy == "range":
            out["boundaries"] = list(self._boundaries)
        else:
            out["shards"] = self._shards
        return out

    def __repr__(self) -> str:
        detail = (
            f"boundaries={list(self._boundaries)}"
            if self.strategy == "range"
            else f"shards={self._shards}"
        )
        return (
            f"ShardRouting({self.relation!r}, {self.attribute!r}, "
            f"{self.strategy}, {detail})"
        )
