"""Complement computation: Proposition 2.2 and Theorem 2.2.

Given a catalog ``D`` and a warehouse definition ``V`` (a set of named PSJ
views), this module computes

* a complement ``C = {C_1, ..., C_n}`` — one complementary view per base
  relation, where

  - Proposition 2.2 (no constraints):  ``C_i = R_i - R̂_i`` with
    ``R̂_i = U_{V_j in V_{R_i}} pi_{R_i}(V_j)`` (projection in the paper's
    "or empty" convention);
  - Theorem 2.2 (keys + INDs):  ``C_i = R_i - (R̂_i ∪ R̂_i^ir)`` where
    ``R̂_i^ir`` unions ``pi_{R_i}`` over the extension joins of all covers
    in ``C_{R_i}^ind``;

* the inverse mapping ``W^{-1}`` (Equation (4)):
  ``R_i = C_i ∪ R̂_i ∪ R̂_i^ir`` — expressed over *warehouse* relation names
  only. IND pseudo-views ``pi_X(R_k)`` inside covers are replaced by
  ``R_k``'s own inverse representation, processed in topological order of
  the acyclic IND graph (footnote 3 of the paper; Example 2.3 continued
  shows the effect);

* optional **emptiness pruning**: complements that constraint analysis
  proves empty on every legal state (Example 2.4's referential-integrity
  collapse, and Example 2.3's lossless key-join case) are replaced by
  ``Empty`` and dropped from the stored warehouse.

The result is a :class:`WarehouseSpec`, the object the rest of the library
(query translation, maintenance, the ``Warehouse`` runtime) consumes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError, WarehouseError
from repro.algebra.expressions import (
    Difference,
    Empty,
    Expression,
    Join,
    Project,
    RelationRef,
    Union,
    Scope,
)
from repro.algebra.rewriting import substitute
from repro.algebra.simplify import simplify
from repro.schema.catalog import Catalog
from repro.views.analysis import (
    _join_preserves,
    condition_implied_by_checks,
    join_complete_relations,
)
from repro.views.psj import View
from repro.core.covers import CoverElement, enumerate_covers, ind_key_views


class ComplementView:
    """One complementary view ``C_i`` for base relation ``relation``.

    ``definition`` is an expression over base relations and *view names*
    (view names are convenient for display; substitute the view definitions
    to obtain a pure view over ``D`` — see :meth:`definition_over_sources`).
    """

    __slots__ = ("name", "relation", "definition", "provably_empty")

    def __init__(
        self, name: str, relation: str, definition: Expression, provably_empty: bool
    ) -> None:
        self.name = name
        self.relation = relation
        self.definition = definition
        self.provably_empty = provably_empty

    def definition_over_sources(self, views: Sequence[View]) -> Expression:
        """The definition with view names replaced by view definitions."""
        replacements = {view.name: view.definition for view in views}
        return substitute(self.definition, replacements)

    def __repr__(self) -> str:
        flag = ", provably empty" if self.provably_empty else ""
        return f"ComplementView({self.name} = {self.definition}{flag})"

    def __str__(self) -> str:
        return f"{self.name} = {self.definition}"


class WarehouseSpec:
    """A complete warehouse specification: views, complement, and inverse.

    Attributes
    ----------
    catalog:
        The source catalog ``D``.
    views:
        The warehouse definition ``V`` (named views).
    complements:
        ``{relation: ComplementView}`` — one complement per base relation.
        Provably-empty complements are present (for inspection) but are not
        materialized.
    inverses:
        ``{relation: Expression}`` — Equation (4), over warehouse names only
        (view names plus non-empty complement names).
    method:
        ``"prop22"``, ``"thm22"``, or ``"trivial"``.
    """

    def __init__(
        self,
        catalog: Catalog,
        views: Sequence[View],
        complements: Mapping[str, ComplementView],
        inverses: Mapping[str, Expression],
        method: str,
    ) -> None:
        self.catalog = catalog
        self.views = tuple(views)
        self.complements = dict(complements)
        self.inverses = dict(inverses)
        self.method = method

    # -- naming and scopes ------------------------------------------------

    def view_names(self) -> Tuple[str, ...]:
        """Names of the original warehouse views."""
        return tuple(view.name for view in self.views)

    def complement_names(self) -> Tuple[str, ...]:
        """Names of the *materialized* (non-empty) complements."""
        return tuple(
            c.name for c in self.complements.values() if not c.provably_empty
        )

    def warehouse_names(self) -> Tuple[str, ...]:
        """All materialized warehouse relation names (views + complements)."""
        return self.view_names() + self.complement_names()

    def source_scope(self) -> Dict[str, Tuple[str, ...]]:
        """Scope of the base relations."""
        return {s.name: s.attributes for s in self.catalog.schemas()}

    def warehouse_scope(self) -> Dict[str, Tuple[str, ...]]:
        """Scope of the warehouse relations (views + stored complements)."""
        scope = self.source_scope()
        out: Dict[str, Tuple[str, ...]] = {}
        for view in self.views:
            out[view.name] = view.definition.attributes(scope)
        for complement in self.complements.values():
            if not complement.provably_empty:
                out[complement.name] = self.catalog[complement.relation].attributes
        return out

    def definitions_over_sources(self) -> Dict[str, Expression]:
        """Every warehouse relation as an expression over base relations.

        This is the mapping ``W`` of the paper (Proposition 2.1): evaluating
        these expressions over a database state yields the warehouse state.
        """
        out: Dict[str, Expression] = {}
        for view in self.views:
            out[view.name] = view.definition
        for complement in self.complements.values():
            if not complement.provably_empty:
                out[complement.name] = complement.definition_over_sources(self.views)
        return out

    def storage_expressions(self) -> Dict[str, Expression]:
        """Alias of :meth:`definitions_over_sources`."""
        return self.definitions_over_sources()

    def inverse_for(self, relation: str) -> Expression:
        """Equation (4) for one base relation."""
        if relation not in self.inverses:
            raise WarehouseError(f"no inverse recorded for relation {relation!r}")
        return self.inverses[relation]

    def describe(self) -> str:
        """Multi-line description: views, complements, inverses."""
        lines = [f"method: {self.method}", "views:"]
        lines.extend(f"  {view}" for view in self.views)
        lines.append("complement:")
        for complement in self.complements.values():
            suffix = "  (provably empty, not stored)" if complement.provably_empty else ""
            lines.append(f"  {complement}{suffix}")
        lines.append("inverses (Equation 4):")
        for relation, expr in self.inverses.items():
            lines.append(f"  {relation} = {expr}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------


def _fresh_complement_name(relation: str, taken: FrozenSet[str]) -> str:
    base = f"C_{relation}"
    name = base
    counter = 2
    while name in taken:
        name = f"{base}_{counter}"
        counter += 1
    return name


def _hat_expression(
    catalog: Catalog, views: Sequence[View], relation: str, scope: Scope
) -> Expression:
    """``R̂_i``: union of ``pi_{attr(R_i)}`` over views retaining all of it.

    Views whose output attributes do not include ``attr(R_i)`` contribute the
    empty relation (the paper's projection convention) and are skipped.
    Expressed over *view names*.
    """
    attrs = catalog[relation].attributes
    attr_set = set(attrs)
    parts: List[Expression] = []
    for view in views:
        psj = view.psj(scope)
        if not psj.involves(relation):
            continue
        view_attrs = set(view.definition.attributes(scope))
        if attr_set <= view_attrs:
            parts.append(Project(RelationRef(view.name), attrs))
    if not parts:
        return Empty(attrs)
    out = parts[0]
    for part in parts[1:]:
        out = Union(out, part)
    return out


def _cover_join(
    relation_attrs: Sequence[str], cover: Sequence[CoverElement]
) -> Expression:
    """``pi_{attr(R)}`` of the extension join of one cover."""
    out: Expression = cover[0].expression
    for element in cover[1:]:
        out = Join(out, element.expression)
    return Project(out, relation_attrs)


def _hat_ir_expression(
    catalog: Catalog, views: Sequence[View], relation: str
) -> Tuple[Expression, List[Tuple[CoverElement, ...]]]:
    """``R̂_i^ir``: union over all covers of the projected extension join.

    Expressed over view names and (for IND pseudo-views) base relation
    names; the inverse builder substitutes the latter. Also returns the
    covers for inspection.
    """
    schema = catalog[relation]
    elements = ind_key_views(catalog, views, relation)
    covers = enumerate_covers(elements, frozenset(schema.attribute_set))
    if not covers:
        return Empty(schema.attributes), []
    parts = [_cover_join(schema.attributes, cover) for cover in covers]
    out = parts[0]
    for part in parts[1:]:
        out = Union(out, part)
    return out, covers


def _provably_empty(
    catalog: Catalog,
    views: Sequence[View],
    relation: str,
    scope: Scope,
    use_keys: bool,
) -> bool:
    """Whether ``C_relation`` is empty on every constraint-satisfying state.

    Two sufficient conditions (both realized in the paper's examples):

    * some view retains all of ``attr(R)`` and is join-complete for ``R``
      (Example 2.4 — referential integrity guarantees join partners);
    * ``R`` has a key, and some cover of ``attr(R)`` consists solely of
      *views* (not IND pseudo-views) that each preserve every ``R`` tuple in
      their joins (Example 2.3 — the lossless key-join ``V_3 join V_4``).
    """
    for view in views:
        psj = view.psj(scope)
        if not psj.involves(relation):
            continue
        if relation in join_complete_relations(psj, catalog):
            return True
    if not use_keys:
        return False
    schema = catalog[relation]
    if schema.key is None:
        return False
    # Covers made of tuple-preserving views reconstruct R completely.
    preserving: List[CoverElement] = []
    for element in ind_key_views(catalog, views, relation):
        if element.kind != "view":
            continue
        view = next(v for v in views if v.name == element.label)
        psj = view.psj(scope)
        if condition_implied_by_checks(psj, catalog) and _join_preserves(
            psj, relation, catalog
        ):
            preserving.append(element)
    covers = enumerate_covers(preserving, frozenset(schema.attribute_set))
    return bool(covers)


def provably_empty_complements(
    catalog: Catalog, views: Sequence[View], use_keys: bool = True
) -> FrozenSet[str]:
    """Relations whose complement is empty on every legal state.

    The public face of the emptiness analysis that ``prune_empty`` uses
    internally (see :func:`_provably_empty` for the two sufficient
    conditions); the lint pass reports a stored-but-empty complement as
    ``W0041``. Views that are not PSJ (e.g. union-integrated fact tables)
    are skipped, which can only make the result smaller — the analysis
    stays sound.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> _ = catalog.inclusion("Sale", ("clerk",), "Emp")
    >>> sorted(provably_empty_complements(
    ...     catalog, [View("Sold", parse("Sale join Emp"))]
    ... ))
    ['Sale']
    """
    scope = {s.name: s.attributes for s in catalog.schemas()}
    psj_views = [view for view in views if view.is_psj()]
    return frozenset(
        schema.name
        for schema in catalog.schemas()
        if _provably_empty(catalog, psj_views, schema.name, scope, use_keys=use_keys)
    )


# ----------------------------------------------------------------------
# Proposition 2.2
# ----------------------------------------------------------------------


def complement_prop22(
    catalog: Catalog, views: Sequence[View], prune_empty: bool = False
) -> WarehouseSpec:
    """The Proposition 2.2 complement (no integrity constraints used).

    For each base relation ``R_i``: ``C_i = R_i - R̂_i`` and the inverse is
    ``R_i = C_i ∪ R̂_i``. With ``prune_empty`` the constraint-based emptiness
    analysis still runs (useful for comparison); by default it does not, to
    match the constraint-free setting of the proposition.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.algebra.parser import parse
    >>> from repro.views.psj import View
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"))
    >>> spec = complement_prop22(catalog, [View("Sold", parse("Sale join Emp"))])
    >>> print(spec.complements["Sale"])
    C_Sale = Sale minus pi[item, clerk](Sold)
    """
    _check_views(catalog, views)
    scope = {s.name: s.attributes for s in catalog.schemas()}
    rich_scope = dict(scope)
    for view in views:
        rich_scope[view.name] = view.definition.attributes(scope)
    taken = frozenset(catalog.relation_names()) | {v.name for v in views}
    complements: Dict[str, ComplementView] = {}
    inverses: Dict[str, Expression] = {}
    for schema in catalog.schemas():
        relation = schema.name
        hat = _hat_expression(catalog, views, relation, scope)
        name = _fresh_complement_name(relation, taken)
        taken = taken | {name}
        rich_scope[name] = schema.attributes
        definition = simplify(Difference(RelationRef(relation), hat), rich_scope)
        empty_proof = prune_empty and _provably_empty(
            catalog, views, relation, scope, use_keys=False
        )
        if empty_proof:
            definition = Empty(schema.attributes)
        complements[relation] = ComplementView(name, relation, definition, empty_proof)
        recompute: Expression = hat if empty_proof else Union(RelationRef(name), hat)
        inverses[relation] = simplify(recompute, rich_scope)
    return WarehouseSpec(catalog, views, complements, inverses, "prop22")


# ----------------------------------------------------------------------
# Theorem 2.2
# ----------------------------------------------------------------------


def complement_thm22(
    catalog: Catalog,
    views: Sequence[View],
    use_keys: bool = True,
    use_inds: bool = True,
    prune_empty: bool = True,
) -> WarehouseSpec:
    """The Theorem 2.2 complement (keys and inclusion dependencies).

    Parameters
    ----------
    use_keys, use_inds:
        Ablation switches: with both off this coincides with Proposition
        2.2; with keys only, covers contain warehouse views only; with INDs
        too, covers may contain IND pseudo-views whose base references are
        substituted by their inverses (footnote 3), processed in topological
        IND order.
    prune_empty:
        Replace provably-empty complements by ``Empty`` and drop them from
        storage (Examples 2.3 and 2.4).
    """
    _check_views(catalog, views)
    scope = {s.name: s.attributes for s in catalog.schemas()}
    rich_scope = dict(scope)
    for view in views:
        rich_scope[view.name] = view.definition.attributes(scope)
    taken = frozenset(catalog.relation_names()) | {v.name for v in views}
    complements: Dict[str, ComplementView] = {}
    hats: Dict[str, Expression] = {}
    hat_irs: Dict[str, Expression] = {}

    for schema in catalog.schemas():
        relation = schema.name
        hat = _hat_expression(catalog, views, relation, scope)
        if use_keys:
            restricted_catalog = catalog if use_inds else _without_inds(catalog)
            hat_ir, _covers = _hat_ir_expression(restricted_catalog, views, relation)
        else:
            hat_ir = Empty(schema.attributes)
        hats[relation] = hat
        hat_irs[relation] = hat_ir

        name = _fresh_complement_name(relation, taken)
        taken = taken | {name}
        known = simplify(Union(hat, hat_ir), rich_scope)
        definition = simplify(Difference(RelationRef(relation), known), rich_scope)
        empty_proof = prune_empty and _provably_empty(
            catalog if use_inds else _without_inds(catalog),
            views,
            relation,
            scope,
            use_keys=use_keys,
        )
        if empty_proof:
            definition = Empty(schema.attributes)
        complements[relation] = ComplementView(name, relation, definition, empty_proof)

    inverses = _build_inverses(catalog, views, complements, hats, hat_irs)
    method = "thm22" if (use_keys or use_inds) else "prop22"
    return WarehouseSpec(catalog, views, complements, inverses, method)


def _without_inds(catalog: Catalog) -> Catalog:
    """A copy of ``catalog`` with all inclusion dependencies removed."""
    stripped = Catalog()
    for schema in catalog.schemas():
        stripped.add_relation(schema)
        for check in catalog.checks(schema.name):
            stripped.add_check(schema.name, check)
    return stripped


def _build_inverses(
    catalog: Catalog,
    views: Sequence[View],
    complements: Mapping[str, ComplementView],
    hats: Mapping[str, Expression],
    hat_irs: Mapping[str, Expression],
) -> Dict[str, Expression]:
    """Equation (4) for every relation, over warehouse names only.

    ``R̂_i^ir`` may reference base relations through IND pseudo-views; these
    are substituted by the already-built inverse of the referenced relation.
    The catalog's IND topological order (lhs before rhs) guarantees the
    needed inverse exists when required.
    """
    inverses: Dict[str, Expression] = {}
    scope: Dict[str, Tuple[str, ...]] = {
        s.name: s.attributes for s in catalog.schemas()
    }
    for view in views:
        scope[view.name] = view.definition.attributes(scope)
    for complement in complements.values():
        if not complement.provably_empty:
            scope[complement.name] = catalog[complement.relation].attributes
    for relation in catalog.inclusion_order():
        schema = catalog[relation]
        complement = complements[relation]
        parts: List[Expression] = []
        if not complement.provably_empty:
            parts.append(RelationRef(complement.name))
        parts.append(hats[relation])
        hat_ir = hat_irs[relation]
        # Substitute base references inside the covers by their inverses.
        base_refs = {
            name: inverses[name]
            for name in hat_ir.relation_names()
            if name in inverses
        }
        remaining = {
            name
            for name in hat_ir.relation_names()
            if name in catalog and name not in base_refs
        }
        if remaining:
            raise SchemaError(
                f"inverse of {relation!r} needs inverses of {sorted(remaining)} "
                "which are not yet available; IND order violated"
            )
        parts.append(substitute(hat_ir, base_refs))
        expr: Expression = parts[0]
        for part in parts[1:]:
            expr = Union(expr, part)
        inverses[relation] = simplify(expr, scope)
    return inverses


def _check_views(catalog: Catalog, views: Sequence[View]) -> None:
    scope = {s.name: s.attributes for s in catalog.schemas()}
    seen = set()
    for view in views:
        if view.name in seen:
            raise WarehouseError(f"duplicate view name {view.name!r}")
        if view.name in catalog:
            raise WarehouseError(
                f"view name {view.name!r} collides with a base relation"
            )
        seen.add(view.name)
        psj = view.psj(scope)  # raises for non-PSJ definitions
        for relation in psj.relations:
            if relation not in catalog:
                raise WarehouseError(
                    f"view {view.name!r} references unknown relation {relation!r}"
                )
        view.definition.attributes(scope)  # type check


def complement_trivial(catalog: Catalog, views: Sequence[View]) -> WarehouseSpec:
    """The trivial complement: copy every base relation to the warehouse.

    "Every warehouse has at least one complement (since copying all base
    relations to the warehouse creates a complement), but obviously the
    interest is in complements that are minimal" (Section 1). This spec is
    the storage-maximal baseline the benchmarks compare against: inverses
    are plain references, so maintenance is cheap, but the warehouse stores
    a full replica of the sources.
    """
    _check_views(catalog, views)
    taken = frozenset(catalog.relation_names()) | {v.name for v in views}
    complements: Dict[str, ComplementView] = {}
    inverses: Dict[str, Expression] = {}
    for schema in catalog.schemas():
        name = _fresh_complement_name(schema.name, taken)
        taken = taken | {name}
        complements[schema.name] = ComplementView(
            name, schema.name, RelationRef(schema.name), False
        )
        inverses[schema.name] = RelationRef(name)
    return WarehouseSpec(catalog, views, complements, inverses, "trivial")


def specify(
    catalog: Catalog,
    views: Sequence[View],
    method: str = "thm22",
    **options,
) -> WarehouseSpec:
    """Section 5, Step 1: compute a complement and the inverse mapping.

    ``method`` selects ``"thm22"`` (default; constraints exploited),
    ``"prop22"`` (constraint-free baseline), or ``"trivial"`` (copy all base
    relations — the storage-maximal baseline).
    """
    if method == "thm22":
        return complement_thm22(catalog, views, **options)
    if method == "prop22":
        return complement_prop22(catalog, views, **options)
    if method == "trivial":
        return complement_trivial(catalog, views, **options)
    raise WarehouseError(f"unknown complement method {method!r}")
