"""Covers: the ``V_K`` / ``V_K^ind`` / ``C_R^ind`` machinery of Theorem 2.2.

For a relation ``R_j`` with key ``K_j`` the paper defines (Section 2):

* ``V_{K_j}`` — the views involving ``R_j`` whose schema retains ``K_j``;
* ``V_{K_j}^ind`` — ``V_{K_j}`` plus, for every inclusion dependency
  ``pi_X(R_i) subseteq pi_X(R_j)`` with ``K_j subseteq X``, the pseudo-view
  ``pi_X(R_i)`` (which behaves like a view over ``R_j`` retaining its key);
* a **cover** of ``R_j`` — a subset of ``V_{K_j}^ind`` whose attributes
  jointly cover ``attr(R_j)``, minimal with that property;
* ``C_{R_j}^ind`` — the set of all covers.

Joining the elements of a cover along the key ``K_j`` is an *extension join*
(Honeyman): every element's restriction to its ``R_j``-attributes stems from
a single ``R_j`` tuple identified by the key, so the join is lossless-sound
and ``pi_{attr(R_j)}`` of it is contained in ``R_j``.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    Expression,
    Project,
    RelationRef,
    Rename,
)
from repro.schema.catalog import Catalog
from repro.schema.constraints import InclusionDependency
from repro.views.psj import View


class CoverElement:
    """One element of ``V_{K_j}^ind``: a view or an IND pseudo-view.

    Attributes
    ----------
    kind:
        ``"view"`` for a warehouse view from ``V_{K_j}``; ``"ind"`` for a
        pseudo-view ``pi_X(R_i)`` contributed by an inclusion dependency.
    label:
        The view name, or a rendering of the pseudo-view.
    expression:
        For views: a reference to the view *name* (resolved against the
        warehouse state). For pseudo-views: ``pi_X(R_i)`` over the *base*
        relation name — Theorem 2.2 (footnote 3) replaces this base reference
        by ``R_i``'s warehouse representation when building the inverse.
    attributes:
        The element's attributes *relevant to* ``R_j`` (intersected with
        ``attr(R_j)``); always a superset of ``K_j``.
    """

    __slots__ = ("kind", "label", "expression", "attributes", "ind")

    def __init__(
        self,
        kind: str,
        label: str,
        expression: Expression,
        attributes: FrozenSet[str],
        ind: Optional[InclusionDependency] = None,
    ) -> None:
        self.kind = kind
        self.label = label
        self.expression = expression
        self.attributes = attributes
        self.ind = ind

    def __repr__(self) -> str:
        return f"CoverElement({self.kind}:{self.label}, attrs={sorted(self.attributes)})"


def key_views(
    catalog: Catalog, views: Sequence[View], relation: str
) -> List[CoverElement]:
    """``V_{K_j}``: views involving ``relation`` whose schema keeps its key.

    Returns an empty list when ``relation`` declares no key (Theorem 2.2
    degenerates to Proposition 2.2 for such relations).
    """
    schema = catalog[relation]
    if schema.key is None:
        return []
    key = set(schema.key)
    scope = {s.name: s.attributes for s in catalog.schemas()}
    elements: List[CoverElement] = []
    for view in views:
        psj = view.psj(scope)
        if not psj.involves(relation):
            continue
        view_attrs = set(psj.attributes(scope))
        if not key <= view_attrs:
            continue
        relevant = frozenset(view_attrs & set(schema.attribute_set))
        elements.append(
            CoverElement("view", view.name, RelationRef(view.name), relevant)
        )
    return elements


def ind_views(catalog: Catalog, relation: str) -> List[CoverElement]:
    """IND pseudo-views for ``relation``: the extra elements of ``V_K^ind``.

    For every declared IND ``pi_X(R_i) subseteq pi_Y(relation)`` whose
    right-hand attributes include the key of ``relation``, the pseudo-view
    is ``pi_X(R_i)`` renamed (if necessary) into ``relation``'s attribute
    names — footnote 3's renaming.
    """
    schema = catalog[relation]
    if schema.key is None:
        return []
    key = set(schema.key)
    elements: List[CoverElement] = []
    for ind in catalog.inclusions_into(relation):
        if not key <= set(ind.rhs_attributes):
            continue
        base: Expression = Project(RelationRef(ind.lhs), ind.lhs_attributes)
        if not ind.is_identity():
            mapping = {
                old: new
                for old, new in zip(ind.lhs_attributes, ind.rhs_attributes)
                if old != new
            }
            if mapping:
                base = Rename(base, mapping)
        elements.append(
            CoverElement(
                "ind",
                f"pi[{', '.join(ind.lhs_attributes)}]({ind.lhs})",
                base,
                frozenset(ind.rhs_attributes),
                ind=ind,
            )
        )
    return elements


def ind_key_views(
    catalog: Catalog, views: Sequence[View], relation: str
) -> List[CoverElement]:
    """``V_{K_j}^ind``: key views plus IND pseudo-views."""
    return key_views(catalog, views, relation) + ind_views(catalog, relation)


def enumerate_covers(
    elements: Sequence[CoverElement], target: FrozenSet[str]
) -> List[Tuple[CoverElement, ...]]:
    """All covers of ``target`` by ``elements`` (``C_R^ind``).

    A cover is a subset whose attribute union contains ``target`` and which
    is minimal with that property (dropping any element breaks coverage).
    Enumerates subsets by increasing size, skipping supersets of covers
    already found, so the result contains exactly the minimal covers.
    """
    usable = [e for e in elements if e.attributes]
    covers: List[Tuple[CoverElement, ...]] = []
    cover_index_sets: List[FrozenSet[int]] = []
    indices = range(len(usable))
    for size in range(1, len(usable) + 1):
        for combo in combinations(indices, size):
            combo_set = frozenset(combo)
            if any(found <= combo_set for found in cover_index_sets):
                continue  # strict superset of a known cover: not minimal
            covered: FrozenSet[str] = frozenset()
            for index in combo:
                covered |= usable[index].attributes
            if target <= covered:
                covers.append(tuple(usable[index] for index in combo))
                cover_index_sets.append(combo_set)
    return covers
