"""Query translation: Theorem 3.1, ``Q^ = Q ∘ W^{-1}``.

Section 3, Steps 3-4 of the paper: given the inverse mapping ``W^{-1}``
(Equation (4)), any query over the sources is answered at the warehouse by
substituting, for every base relation, its inverse expression. The
substitution is purely syntactic; correctness is Theorem 3.1 (and is
re-checked empirically in the test suite).

Besides the translation itself this module exposes the static facts the
query-translation prover (:mod:`repro.analysis.query`) certifies and the
serving path caches against:

* :func:`translation_read_set` — the warehouse relations the optimized
  translation will read, the static side of the ``REPRO_CHECK_QUERIES``
  sanitizer's comparison;
* :func:`translation_digest` — a canonical digest over every fact the
  translation depends on (schemata, warehouse definitions, inverses), the
  key under which translated plans may be cached;
* :class:`TranslationCache` — a digest-keyed plan cache; a prover
  re-verdict that changes the digest evicts every cached plan.

This file is on the query-serving hot path and is held to the
``scripts/check_hotpath.py`` rules: no environment reads, no timing, no
tracing here — the sanitizer wiring lives in :mod:`repro.core.warehouse`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import WarehouseError
from repro.algebra.evaluator import evaluate
from repro.algebra.expressions import Expression
from repro.algebra.optimize import optimize
from repro.algebra.rewriting import substitute
from repro.algebra.simplify import simplify
from repro.storage.relation import Relation
from repro.core.complement import WarehouseSpec
from repro.analysis.digest import canonical_digest


def translate_query(
    spec: WarehouseSpec, query: Expression, optimized: bool = False
) -> Expression:
    """Translate a source query into a warehouse query (``Q^``).

    Every reference to a base relation is replaced by its Equation (4)
    inverse; the result is simplified against the warehouse scope so that
    provably-empty complements vanish (Example 2.4's warehouse answers
    ``pi_clerk(Sale) union pi_clerk(Emp)`` without ever mentioning ``C_2``).

    Raises :class:`~repro.errors.WarehouseError` if the query references a
    relation that is neither a base relation nor a warehouse relation.

    Examples
    --------
    See ``tests/paper/test_query_independence.py`` for the paper's worked
    translation of ``pi_age(sigma[item='Computer'](Sale) join Emp)``.
    """
    warehouse_names = set(spec.warehouse_names())
    known = set(spec.inverses) | warehouse_names
    unknown = query.relation_names() - known
    if unknown:
        raise WarehouseError(
            f"query references unknown relations {sorted(unknown)}; "
            f"known base relations: {sorted(spec.inverses)}"
        )
    translated = substitute(query, spec.inverses)
    if optimized:
        return optimize(translated, spec.warehouse_scope())
    return simplify(translated, spec.warehouse_scope())


def translation_read_set(
    spec: WarehouseSpec, query: Expression
) -> Tuple[str, ...]:
    """The warehouse relations the optimized translation of ``query`` reads.

    This is the static read set the translation certificate records and the
    ``REPRO_CHECK_QUERIES`` sanitizer compares traced reads against: by
    Theorem 3.1 it contains warehouse names only, never a source relation.
    """
    translated = translate_query(spec, query, optimized=True)
    return tuple(sorted(translated.relation_names()))


def translation_digest(spec: WarehouseSpec) -> str:
    """Canonical digest over every fact query translation depends on.

    Covers the source schemata, the warehouse mapping ``W`` (each stored
    relation as an expression over sources) and the Equation (4) inverses.
    Any re-specification that changes what ``Q ∘ W^{-1}`` means changes
    this digest — which is exactly when cached translated plans must die.
    The hash is :func:`repro.analysis.digest.canonical_digest`, the same
    function the prover's certificates and the compiler's plan-cache keys
    use, so the three layers stay digest-compatible.
    """
    document: Dict[str, object] = {
        "kind": "translation",
        "method": spec.method,
        "source_relations": {
            schema.name: list(schema.attributes)
            for schema in spec.catalog.schemas()
        },
        "warehouse": {
            name: str(expression)
            for name, expression in spec.definitions_over_sources().items()
        },
        "inverses": {
            name: str(expression) for name, expression in spec.inverses.items()
        },
    }
    return canonical_digest(document)


class TranslationCache:
    """A digest-keyed cache of optimized ``Q ∘ W^{-1}`` plans.

    Keys are structural expression keys (``Expression._key()``), so two
    textual spellings of the same query share one plan. The cache carries
    the :func:`translation_digest` it was built against;
    :meth:`revalidate` compares a fresh digest and evicts everything on
    mismatch — the hook ``Warehouse.recertify_queries`` uses to let prover
    re-verdicts invalidate cached translated plans.
    """

    __slots__ = ("_digest", "_plans", "hits", "misses", "evictions")

    def __init__(self, digest: str) -> None:
        self._digest = digest
        self._plans: Dict[object, Expression] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def digest(self) -> str:
        """The translation digest the cached plans were derived under."""
        return self._digest

    def __len__(self) -> int:
        return len(self._plans)

    def lookup(self, query: Expression) -> Optional[Expression]:
        """The cached optimized translation of ``query``, if any."""
        plan = self._plans.get(query._key())
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
        return plan

    def store(self, query: Expression, translated: Expression) -> None:
        """Remember the optimized translation of ``query``."""
        self._plans[query._key()] = translated

    def clear(self) -> None:
        """Drop every cached plan."""
        self.evictions += len(self._plans)
        self._plans.clear()

    def revalidate(self, digest: str) -> bool:
        """Adopt ``digest``; evict all plans if it differs. True = evicted."""
        if digest == self._digest:
            return False
        self.clear()
        self._digest = digest
        return True


def translate_cached(
    spec: WarehouseSpec, query: Expression, cache: TranslationCache
) -> Expression:
    """The optimized translation of ``query``, through ``cache``."""
    plan = cache.lookup(query)
    if plan is None:
        plan = translate_query(spec, query, optimized=True)
        cache.store(query, plan)
    return plan


def answer_query(
    spec: WarehouseSpec,
    warehouse: Mapping[str, Relation],
    query: Expression,
    optimized: bool = True,
    engine: Optional[str] = None,
) -> Relation:
    """Answer a source query using warehouse relations only.

    ``warehouse`` is the materialized warehouse state; the query is stated
    over base relations (and/or warehouse relations) and is evaluated after
    translation — no source relation is ever touched. ``optimized`` runs
    selection pushdown / projection pruning on the translated expression
    before evaluation (on by default; ``translate_query`` keeps the
    unoptimized, paper-shaped form by default for display). ``engine``
    selects the physical evaluator, as in
    :func:`repro.algebra.evaluator.evaluate`.
    """
    translated = translate_query(spec, query, optimized=optimized)
    return evaluate(translated, warehouse, engine=engine)
