"""Query translation: Theorem 3.1, ``Q^ = Q ∘ W^{-1}``.

Section 3, Steps 3-4 of the paper: given the inverse mapping ``W^{-1}``
(Equation (4)), any query over the sources is answered at the warehouse by
substituting, for every base relation, its inverse expression. The
substitution is purely syntactic; correctness is Theorem 3.1 (and is
re-checked empirically in the test suite).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import WarehouseError
from repro.algebra.evaluator import evaluate
from repro.algebra.expressions import Expression
from repro.algebra.optimize import optimize
from repro.algebra.rewriting import substitute
from repro.algebra.simplify import simplify
from repro.storage.relation import Relation
from repro.core.complement import WarehouseSpec


def translate_query(
    spec: WarehouseSpec, query: Expression, optimized: bool = False
) -> Expression:
    """Translate a source query into a warehouse query (``Q^``).

    Every reference to a base relation is replaced by its Equation (4)
    inverse; the result is simplified against the warehouse scope so that
    provably-empty complements vanish (Example 2.4's warehouse answers
    ``pi_clerk(Sale) union pi_clerk(Emp)`` without ever mentioning ``C_2``).

    Raises :class:`~repro.errors.WarehouseError` if the query references a
    relation that is neither a base relation nor a warehouse relation.

    Examples
    --------
    See ``tests/paper/test_query_independence.py`` for the paper's worked
    translation of ``pi_age(sigma[item='Computer'](Sale) join Emp)``.
    """
    warehouse_names = set(spec.warehouse_names())
    known = set(spec.inverses) | warehouse_names
    unknown = query.relation_names() - known
    if unknown:
        raise WarehouseError(
            f"query references unknown relations {sorted(unknown)}; "
            f"known base relations: {sorted(spec.inverses)}"
        )
    translated = substitute(query, spec.inverses)
    if optimized:
        return optimize(translated, spec.warehouse_scope())
    return simplify(translated, spec.warehouse_scope())


def answer_query(
    spec: WarehouseSpec,
    warehouse: Mapping[str, Relation],
    query: Expression,
    optimized: bool = True,
    engine: Optional[str] = None,
) -> Relation:
    """Answer a source query using warehouse relations only.

    ``warehouse`` is the materialized warehouse state; the query is stated
    over base relations (and/or warehouse relations) and is evaluated after
    translation — no source relation is ever touched. ``optimized`` runs
    selection pushdown / projection pruning on the translated expression
    before evaluation (on by default; ``translate_query`` keeps the
    unoptimized, paper-shaped form by default for display). ``engine``
    selects the physical evaluator, as in
    :func:`repro.algebra.evaluator.evaluate`.
    """
    translated = translate_query(spec, query, optimized=optimized)
    return evaluate(translated, warehouse, engine=engine)
