"""The view ordering of Definition 2.1 and minimality of complements.

The paper orders (sets of) views by information content: ``U <= V`` iff
``U_i(d) subseteq V_i(d)`` for all states ``d``, for *some* pairing of the
two sets' members. General minimality of complements is undecidable-hard and
left partially open by the paper (Section 6); what the paper *proves* is

* Theorem 2.1 — for SJ views without constraints, Proposition 2.2's
  complement is minimal;
* Theorem 2.2 — its complement is minimal among complements whose
  recomputations join along keys and use only complementary views and
  ``V_K^ind`` members.

Accordingly this module offers two tools:

* :func:`smaller_on_states` / :func:`compare_view_sets` — the *empirical*
  ordering over explicit state collections (a sound refuter: if ``U <= V``
  fails on some sampled state, it fails, full stop; if it holds on all
  samples it is only evidence). For PSJ-with-union expressions the exact
  containment test of :mod:`repro.algebra.containment` is used instead of
  sampling whenever both sides fall in the fragment.
* :func:`is_minimal_certificate` — the structural certificates matching the
  two theorems.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.algebra.containment import UnsupportedFragment, is_contained_in
from repro.algebra.evaluator import evaluate
from repro.algebra.expressions import Expression
from repro.storage.relation import Relation
from repro.core.complement import WarehouseSpec

State = Mapping[str, Relation]


def _contained_on_states(
    sub: Expression, sup: Expression, states: Sequence[State]
) -> bool:
    for state in states:
        left = evaluate(sub, state)
        right = evaluate(sup, state)
        if left.attribute_set != right.attribute_set:
            return False
        # Align the right side's rows to the left's column order.
        if not (left.rows <= left._aligned_rows(right)):
            return False
    return True


def _find_matching(compatible: List[List[bool]]) -> Optional[List[int]]:
    """A perfect matching in a bipartite compatibility matrix, or ``None``.

    Classic augmenting-path matching; sizes here are tiny (one view per base
    relation).
    """
    size = len(compatible)
    match_right: List[Optional[int]] = [None] * size

    def try_assign(left: int, visited: List[bool]) -> bool:
        for right in range(size):
            if compatible[left][right] and not visited[right]:
                visited[right] = True
                if match_right[right] is None or try_assign(match_right[right], visited):
                    match_right[right] = left
                    return True
        return False

    for left in range(size):
        if not try_assign(left, [False] * size):
            return None
    result: List[int] = [0] * size
    for right, left in enumerate(match_right):
        assert left is not None
        result[left] = right
    return result


def smaller_on_states(
    candidates: Sequence[Expression],
    references: Sequence[Expression],
    states: Sequence[State],
    scope: Optional[Mapping[str, Tuple[str, ...]]] = None,
) -> bool:
    """Whether ``candidates <= references`` (Definition 2.1, elementwise).

    Tries the exact conjunctive-query containment first (when ``scope`` is
    given and both expressions are in the fragment); otherwise falls back to
    checking containment on every provided state. Set sizes must agree.
    """
    if len(candidates) != len(references):
        return False
    size = len(candidates)
    compatible = [[False] * size for _ in range(size)]
    for i, sub in enumerate(candidates):
        for j, sup in enumerate(references):
            exact: Optional[bool] = None
            if scope is not None:
                try:
                    exact = is_contained_in(sub, sup, scope)
                except UnsupportedFragment:
                    exact = None
            if exact is None:
                exact = _contained_on_states(sub, sup, states)
            compatible[i][j] = exact
    return _find_matching(compatible) is not None


class Comparison(NamedTuple):
    """Outcome of comparing two view sets under Definition 2.1."""

    le: bool
    ge: bool

    @property
    def strictly_smaller(self) -> bool:
        """``candidates < references``."""
        return self.le and not self.ge

    @property
    def equivalent(self) -> bool:
        """Both orderings hold (equal information content on the evidence)."""
        return self.le and self.ge

    @property
    def incomparable(self) -> bool:
        """Neither ordering holds."""
        return not self.le and not self.ge


def compare_view_sets(
    candidates: Sequence[Expression],
    references: Sequence[Expression],
    states: Sequence[State],
    scope: Optional[Mapping[str, Tuple[str, ...]]] = None,
) -> Comparison:
    """Both directions of the Definition 2.1 ordering."""
    return Comparison(
        le=smaller_on_states(candidates, references, states, scope),
        ge=smaller_on_states(references, candidates, states, scope),
    )


class MinimalityCertificate(NamedTuple):
    """A structural minimality statement about a spec's complement."""

    certified: bool
    theorem: Optional[str]
    reason: str


def is_minimal_certificate(spec: WarehouseSpec) -> MinimalityCertificate:
    """The structural minimality certificate the paper's theorems provide.

    * All views SJ and no constraints used: minimal by Theorem 2.1.
    * Theorem 2.2 method: minimal among key-join recomputations over
      ``V_K^ind`` members (the theorem's qualified minimality).
    * Otherwise: no certificate (Example 2.2 shows Proposition 2.2 can be
      non-minimal for proper PSJ views).
    """
    scope = spec.source_scope()
    all_sj = all(view.psj(scope).is_sj(scope) for view in spec.views)
    constraints_present = bool(spec.catalog.inclusions()) or any(
        s.key is not None for s in spec.catalog.schemas()
    )
    if all_sj and not constraints_present:
        return MinimalityCertificate(
            True,
            "Theorem 2.1",
            "all views are SJ views and no integrity constraints are declared",
        )
    if spec.method == "thm22":
        return MinimalityCertificate(
            True,
            "Theorem 2.2",
            "minimal among complements whose recomputation joins along keys "
            "and uses only complementary views and V_K^ind members",
        )
    if all_sj:
        return MinimalityCertificate(
            True,
            "Theorem 2.1",
            "all views are SJ views (constraints declared but unused by prop22)",
        )
    return MinimalityCertificate(
        False,
        None,
        "proper PSJ views without a theorem: Proposition 2.2 may be non-minimal "
        "(Example 2.2)",
    )


def total_rows(
    expressions: Iterable[Expression], state: State
) -> int:
    """Total tuple count of several expressions on one state.

    The benchmarks use this as the *storage size* measure when comparing
    complements against the trivial copy-everything complement.
    """
    return sum(len(evaluate(expr, state)) for expr in expressions)
