"""The ``Warehouse`` runtime: Section 5's specification algorithm, live.

``Warehouse.specify`` performs the paper's Steps 1-3 at definition time:

1. compute a complement of the given PSJ views and the inverse mapping
   ``W^{-1}`` (Theorem 2.2, Equation (4));
2. query translation is then a substitution (Theorem 3.1) — available as
   :meth:`Warehouse.translate` / :meth:`Warehouse.answer`;
3. maintenance expressions are derived per update shape and cached —
   :meth:`Warehouse.apply` folds reported source updates into the
   materialized state using warehouse data only (Theorem 4.1).

The warehouse user "does not need to be aware of complementary views or
query rewriting" (Section 5): queries are posed against base relation names
and updates arrive as plain :class:`~repro.storage.update.Update` objects.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union as TypingUnion

from repro.errors import CompileError, WarehouseError
from repro.algebra.evaluator import EvalStats, EvaluationCache, evaluate, evaluate_all
from repro.algebra.expressions import Expression
from repro.algebra.parser import parse
from repro.obs.explain import explain_refresh
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RingBufferCollector, Span, TraceCollector, Tracer
from repro.schema.catalog import Catalog
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.update import Delta, Update
from repro.views.psj import View
from repro.core.complement import WarehouseSpec, specify
from repro.core.maintenance import (
    MaintenancePlan,
    full_recompute_state,
    maintenance_expressions,
    refresh_state,
)
from repro.core.translation import (
    TranslationCache,
    translate_cached,
    translate_query,
    translation_digest,
)

QueryLike = TypingUnion[str, Expression]
StateLike = TypingUnion[Database, Mapping[str, Relation]]


class Warehouse:
    """A materialized, query- and update-independent warehouse.

    Examples
    --------
    >>> from repro.schema import Catalog
    >>> from repro.views.psj import View
    >>> from repro.algebra.parser import parse
    >>> catalog = Catalog()
    >>> _ = catalog.relation("Sale", ("item", "clerk"))
    >>> _ = catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    >>> wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    >>> sorted(wh.spec.warehouse_names())
    ['C_Emp', 'C_Sale', 'Sold']
    """

    def __init__(
        self,
        spec: WarehouseSpec,
        cached: bool = True,
        engine: Optional[str] = None,
        compile_plans: Optional[bool] = None,
    ) -> None:
        from repro.storage.columnar import ENGINE_COLUMNAR, kernel_totals, resolve_engine
        from repro.compiler import resolve_compile

        self.spec = spec
        # Physical execution engine: "tuple" (frozenset operators) or
        # "columnar" (dictionary-coded batch kernels). ``None`` follows the
        # process default (REPRO_ENGINE), resolved once at construction.
        self.engine = resolve_engine(engine)
        self._columnar_engine = self.engine == ENGINE_COLUMNAR
        # Plan compilation (repro.compiler): refreshes run as per-update-
        # shape closures specialized from the prover's certificate, over
        # the columnar kernels regardless of the interpreted engine.
        # ``None`` follows the process default (REPRO_COMPILE), resolved
        # once at construction; the compiler itself is built lazily on the
        # first apply() and drops to the interpreted path (with a
        # compiler.fallbacks bump) if the spec cannot be certified.
        self._compile = resolve_compile(compile_plans)
        self._compiler = None
        self._compile_refused = False
        # Baseline of the process-wide kernel counters, so per-refresh
        # deltas can be folded into evaluator.columnar.* metrics (the
        # compiled path always runs columnar kernels).
        self._kernel_baseline = (
            kernel_totals() if (self._columnar_engine or self._compile) else {}
        )
        self._state: Optional[Dict[str, Relation]] = None
        # MVCC-style read handles: every initialize()/apply() *replaces*
        # _state and bumps _version, so a SnapshotView is just a pinned set
        # of references. _snapshot caches the view for the current version.
        self._version = 0
        self._snapshot = None
        self._plans: Dict[frozenset, MaintenancePlan] = {}
        self._aggregates: list = []
        # The cross-update evaluation cache: sub-expressions whose inputs an
        # update does not touch are reused across refreshes (and by answer /
        # reconstruct between refreshes). ``cached=False`` reverts to the
        # uncached evaluator — the differential oracle's reference track.
        self._cache: Optional[EvaluationCache] = EvaluationCache() if cached else None
        self._stats = EvalStats()
        self._last_refresh_stats = EvalStats()
        # Observability: metrics are always on (a handful of counter bumps
        # per refresh); tracing is opt-in via enable_tracing() and the
        # engine takes the span-free path while self._tracer is None.
        self._metrics = MetricsRegistry()
        self._tracer: Optional[Tracer] = None
        self._trace_buffer: Optional[RingBufferCollector] = None
        # Sanitizer mode (REPRO_CHECK_INVARIANTS=1): every apply() traces
        # its refresh (with a throwaway buffer if tracing is off) and
        # cross-checks the runtime source reads against the static
        # dataflow analysis. Read once here — never on the evaluator hot
        # path (scripts/check_hotpath.py rule R5).
        from repro.analysis.dataflow import sanitizer_enabled

        self._sanitize = sanitizer_enabled()
        # Query sanitizer mode (REPRO_CHECK_QUERIES=1): every answer()
        # traces the translated evaluation and cross-checks its runtime
        # reads against the translation's static read set (Theorem 3.1's
        # "no source reads", per query). Same read-once discipline.
        from repro.analysis.query import queries_enabled

        self._check_queries = queries_enabled()
        # Translated-plan cache, keyed by the translation digest: the
        # prover's re-verdicts (recertify_queries) evict it wholesale.
        self._translation_cache = TranslationCache(translation_digest(spec))

    # ------------------------------------------------------------------
    # Performance introspection
    # ------------------------------------------------------------------

    @property
    def eval_stats(self) -> EvalStats:
        """Cumulative :class:`EvalStats` across every apply/answer so far."""
        return self._stats

    @property
    def last_refresh_stats(self) -> EvalStats:
        """The :class:`EvalStats` of the most recent :meth:`apply` only."""
        return self._last_refresh_stats

    @property
    def evaluation_cache(self) -> Optional[EvaluationCache]:
        """The persistent cross-update cache (``None`` when ``cached=False``)."""
        return self._cache

    # ------------------------------------------------------------------
    # Observability (docs/observability.md)
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The warehouse's metric registry (catalog: docs/observability.md)."""
        return self._metrics

    @property
    def tracer(self) -> Optional[Tracer]:
        """The active tracer, or ``None`` while tracing is disabled."""
        return self._tracer

    def enable_tracing(
        self,
        capacity: int = 64,
        sink: Optional[TraceCollector] = None,
    ) -> Tracer:
        """Turn on refresh tracing; returns the :class:`Tracer`.

        Traces are kept in an in-memory ring buffer of the last
        ``capacity`` refreshes (read by :meth:`explain` /
        :meth:`last_trace`). Pass ``sink`` (e.g. a
        :class:`~repro.obs.trace.JsonlSink`) to additionally stream every
        span to a file; the caller owns closing such a sink. Idempotent in
        effect: calling again replaces the tracer and buffer.
        """
        self._trace_buffer = RingBufferCollector(capacity)
        collectors = [self._trace_buffer]
        if sink is not None:
            collectors.append(sink)
        self._tracer = Tracer(collectors)
        return self._tracer

    def disable_tracing(self) -> None:
        """Turn tracing back off (buffered traces are dropped)."""
        self._tracer = None
        self._trace_buffer = None

    def last_trace(self, name: Optional[str] = None) -> Optional[Span]:
        """The newest buffered trace root (optionally filtered by name)."""
        if self._trace_buffer is None:
            return None
        return self._trace_buffer.last(name)

    def explain(
        self, max_depth: Optional[int] = None, name: Optional[str] = None
    ) -> str:
        """The newest trace as an annotated operator tree.

        Shows per-operator wall time, rows in/out, cross-update cache
        hits, index hits, and — starred — where the semi-join/anti-join
        fast paths fired. By default explains the newest trace of any
        kind (the last :meth:`apply`'s ``refresh``, or ``initialize``
        right after initialization — where the Prop 2.2 complement shape
        fires the anti-join rewrite); pass ``name="refresh"`` or
        ``name="initialize"`` to pick one. Requires tracing
        (:meth:`enable_tracing`) before the operation to explain.
        """
        if self._tracer is None:
            raise WarehouseError(
                "tracing is disabled; call enable_tracing() before apply()"
            )
        root = self.last_trace(name)
        if root is None:
            wanted = f"{name} trace" if name else "traced operation"
            raise WarehouseError(
                f"no {wanted} buffered yet; run initialize()/apply() with "
                "tracing enabled first"
            )
        return explain_refresh(root, max_depth=max_depth)

    def _record_refresh_metrics(
        self, elapsed: float, applied: Dict[str, Delta], stats: EvalStats
    ) -> None:
        metrics = self._metrics
        metrics.counter("warehouse.refreshes").inc()
        metrics.histogram("warehouse.refresh_seconds").observe(elapsed)
        metrics.counter("warehouse.relations_touched").inc(len(applied))
        if not applied:
            metrics.counter("warehouse.refreshes_noop").inc()
        inserted = sum(len(d.inserts) for d in applied.values())
        deleted = sum(len(d.deletes) for d in applied.values())
        if inserted:
            metrics.counter("warehouse.rows_inserted").inc(inserted)
        if deleted:
            metrics.counter("warehouse.rows_deleted").inc(deleted)
        metrics.merge_eval_stats(stats)
        if self._columnar_engine or self._compiler is not None:
            self._record_kernel_metrics()
        self._update_storage_gauges()

    def _record_kernel_metrics(self) -> None:
        """Fold kernel-counter deltas into ``evaluator.columnar.*``."""
        from repro.storage.columnar import dictionary_size, kernel_totals

        metrics = self._metrics
        totals = kernel_totals()
        baseline = self._kernel_baseline
        for kernel, count in totals.items():
            delta = count - baseline.get(kernel, 0)
            if delta:
                metrics.counter(f"evaluator.columnar.{kernel}").inc(delta)
        self._kernel_baseline = totals
        metrics.gauge("evaluator.columnar.dictionary_size").set(dictionary_size())

    def _record_compiler_metrics(self, compiler) -> None:
        """Drain the compiler's plain-int counters into ``compiler.*``."""
        metrics = self._metrics
        if compiler.compiles:
            metrics.counter("compiler.compiles").inc(compiler.compiles)
            compiler.compiles = 0
        if compiler.plan_hits:
            metrics.counter("compiler.plan_cache_hits").inc(compiler.plan_hits)
            compiler.plan_hits = 0
        if compiler.refreshes:
            metrics.counter("compiler.compiled_refreshes").inc(compiler.refreshes)
            compiler.refreshes = 0
        metrics.gauge("compiler.plans").set(compiler.plan_count)

    def _update_storage_gauges(self) -> None:
        if self._state is None:
            return
        metrics = self._metrics
        complement_names = {c.name for c in self.spec.complements.values()}
        total = view_rows = complement_rows = 0
        for name, relation in self._state.items():
            rows = len(relation)
            total += rows
            if name in complement_names:
                complement_rows += rows
                metrics.gauge(f"warehouse.complement_rows.{name}").set(rows)
            else:
                view_rows += rows
        metrics.gauge("warehouse.rows").set(total)
        metrics.gauge("warehouse.view_rows").set(view_rows)
        metrics.gauge("warehouse.complement_rows").set(complement_rows)
        metrics.histogram("warehouse.complement_rows_per_refresh").observe(
            complement_rows
        )
        if self._cache is not None:
            metrics.gauge("warehouse.cache_entries").set(len(self._cache))

    # ------------------------------------------------------------------
    # Construction (Section 5, Step 1)
    # ------------------------------------------------------------------

    @classmethod
    def specify(
        cls,
        catalog: Catalog,
        views: Sequence[View],
        method: str = "thm22",
        cached: bool = True,
        engine: Optional[str] = None,
        compile_plans: Optional[bool] = None,
        **options,
    ) -> "Warehouse":
        """Build a warehouse from a catalog and PSJ view definitions.

        ``cached``, ``engine``, and ``compile_plans`` configure the
        constructed warehouse (see :meth:`__init__`); all other keyword
        ``options`` go to the specification builder.
        """
        return cls(
            specify(catalog, views, method=method, **options),
            cached=cached,
            engine=engine,
            compile_plans=compile_plans,
        )

    # ------------------------------------------------------------------
    # Static validation (repro.analysis)
    # ------------------------------------------------------------------

    def validate(self, strict: bool = False, deep: bool = False) -> list:
        """Statically check the specification; raise on defects.

        Runs the :mod:`repro.analysis` lint pass over the spec and raises
        :class:`~repro.errors.WarehouseError` listing every diagnostic at
        or above the gate — ``ERROR`` by default, ``WARNING`` too with
        ``strict=True``. Returns the full diagnostic list (including
        findings below the gate) for inspection. ``deep=True`` adds the
        containment- and emptiness-based checks (W0041/W0042/W0052),
        which cost about as much as ``specify`` itself.

        :meth:`initialize` calls this (non-strict, shallow) before
        materializing, so misconfigured warehouses fail at deploy time
        with structured diagnostics instead of raising mid-evaluation.
        """
        from repro.analysis.diagnostics import Severity
        from repro.analysis.lint import lint_spec

        diagnostics = lint_spec(self.spec, deep=deep)
        gate = Severity.WARNING if strict else Severity.ERROR
        failing = [d for d in diagnostics if d.severity >= gate]
        if failing:
            rendered = "\n".join(d.render() for d in failing)
            raise WarehouseError(
                f"invalid warehouse specification "
                f"({len(failing)} finding(s)):\n{rendered}"
            )
        return diagnostics

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    def initialize(self, source: StateLike) -> Dict[str, Relation]:
        """Materialize the warehouse from an initial source snapshot.

        This is the only moment source data is read (the initial extract);
        afterwards the warehouse lives off reported updates alone. The
        spec is statically validated first (:meth:`validate`) so schema
        defects surface as structured diagnostics, not evaluation errors.
        """
        self.validate()
        state = source.state() if isinstance(source, Database) else dict(source)
        started = perf_counter()
        if self._tracer is not None:
            with self._tracer.span("initialize"):
                self._state = evaluate_all(
                    self.spec.definitions_over_sources(), state,
                    tracer=self._tracer, engine=self.engine,
                )
        else:
            self._state = evaluate_all(
                self.spec.definitions_over_sources(), state, engine=self.engine
            )
        self._version += 1
        self._snapshot = None
        self._metrics.histogram("warehouse.initialize_seconds").observe(
            perf_counter() - started
        )
        self._update_storage_gauges()
        for aggregate in self._aggregates:
            aggregate.recompute(self._state[aggregate.source])
        return dict(self._state)

    @property
    def state(self) -> Dict[str, Relation]:
        """The materialized warehouse state (views plus stored complements)."""
        if self._state is None:
            raise WarehouseError("warehouse not initialized; call initialize() first")
        return self._state

    @property
    def version(self) -> int:
        """The commit version: bumped by every initialize()/apply()."""
        return self._version

    def snapshot(self):
        """A :class:`~repro.storage.snapshot.SnapshotView` of the current state.

        Refreshes replace the state mapping rather than mutating it, so the
        returned view stays a consistent image of this exact version while
        any number of later :meth:`apply` calls land — the MVCC read path.
        The view is cached per version, so repeated calls between refreshes
        are O(1).
        """
        from repro.storage.snapshot import SnapshotView

        snapshot = self._snapshot
        if snapshot is None or snapshot.version != self._version:
            snapshot = SnapshotView(self.state, self._version)
            self._snapshot = snapshot
        return snapshot

    def relation(self, name: str) -> Relation:
        """One materialized warehouse relation by name."""
        state = self.state
        if name not in state:
            raise WarehouseError(f"no warehouse relation named {name!r}")
        return state[name]

    def storage_rows(self) -> int:
        """Total number of materialized tuples (views + complements)."""
        return sum(len(rel) for rel in self.state.values())

    def storage_by_relation(self) -> Dict[str, int]:
        """Tuple counts per materialized warehouse relation."""
        return {name: len(rel) for name, rel in self.state.items()}

    # ------------------------------------------------------------------
    # Query independence (Section 3)
    # ------------------------------------------------------------------

    def translate(self, query: QueryLike) -> Expression:
        """Translate a source query to a warehouse query (``Q^``)."""
        return translate_query(self.spec, self._as_expression(query))

    @property
    def translation_cache(self) -> TranslationCache:
        """The digest-keyed cache of optimized ``Q ∘ W^{-1}`` plans."""
        return self._translation_cache

    def answer(self, query: QueryLike) -> Relation:
        """Answer a source query from warehouse relations only.

        The optimized translation is cached per query shape
        (:class:`~repro.core.translation.TranslationCache`); under
        ``REPRO_CHECK_QUERIES=1`` the evaluation is traced (with a
        throwaway buffer if tracing is off) and its runtime reads are
        cross-checked against the plan's static read set.
        """
        self._metrics.counter("warehouse.queries").inc()
        expression = self._as_expression(query)
        plan = translate_cached(self.spec, expression, self._translation_cache)
        tracer = self._tracer
        sanitize_buffer = None
        if self._check_queries:
            sanitize_buffer = RingBufferCollector(capacity=1)
            if tracer is None:
                tracer = Tracer([sanitize_buffer])
            else:
                tracer.collectors.append(sanitize_buffer)
        try:
            if tracer is not None:
                with tracer.span("answer", query=str(expression)):
                    result = evaluate(
                        plan, self.state, tracer=tracer, engine=self.engine
                    )
            else:
                result = evaluate(plan, self.state, engine=self.engine)
        finally:
            if sanitize_buffer is not None and self._tracer is not None:
                self._tracer.collectors.remove(sanitize_buffer)
        if sanitize_buffer is not None:
            root = sanitize_buffer.last("answer")
            if root is not None:
                from repro.analysis.query import check_translation_reads
                from repro.core.translation import translation_read_set

                # The static read set is recomputed from the spec, not
                # taken from the cached plan — a stale or corrupted plan
                # must not self-certify.
                check_translation_reads(
                    self.spec, translation_read_set(self.spec, expression), root
                )
        return result

    def reconstruct(self, relation: str) -> Relation:
        """Recompute one base relation via Equation (4)."""
        self._metrics.counter("warehouse.reconstructions").inc()
        return evaluate(
            self.spec.inverse_for(relation), self.state, cache=self._cache,
            engine=self.engine,
        )

    def reconstruct_all(self) -> Dict[str, Relation]:
        """Recompute every base relation (the full ``W^{-1}``)."""
        return evaluate_all(
            self.spec.inverses, self.state, cache=self._cache, engine=self.engine
        )

    def audit(self) -> list:
        """Self-check: do the reconstructed base relations satisfy ``D``?

        Because the warehouse state determines the base state (Proposition
        2.1), every declared constraint is checkable *locally*. A non-empty
        result means either the sources violated their own constraints or a
        reported update was lost/corrupted in transit — exactly the failure
        a decoupled pipeline wants to detect early. Returns human-readable
        violation descriptions (empty list = consistent).
        """
        rebuilt = Database(self.spec.catalog, self.reconstruct_all(), check=False)
        return rebuilt.constraint_violations()

    # ------------------------------------------------------------------
    # Update independence (Section 4)
    # ------------------------------------------------------------------

    def maintenance_plan(
        self, updated: Iterable[str], **options
    ) -> MaintenancePlan:
        """The (cached) symbolic maintenance plan for an update shape."""
        updated_set = frozenset(updated)
        if options:
            return maintenance_expressions(self.spec, updated_set, **options)
        plan = self._plans.get(updated_set)
        if plan is None:
            plan = maintenance_expressions(self.spec, updated_set)
            self._plans[updated_set] = plan
        return plan

    def _active_compiler(self):
        """The refresh compiler, built lazily; ``None`` when off/refused."""
        if not self._compile or self._compile_refused:
            return None
        if self._compiler is None:
            from repro.compiler import build_refresh_compiler

            try:
                self._compiler = build_refresh_compiler(self.spec, self._metrics)
            except CompileError:
                # The prover could not certify the spec: stay on the
                # interpreted path for the lifetime of this warehouse
                # (recertify() can re-arm after the spec is fixed).
                self._compile_refused = True
                self._metrics.counter("compiler.fallbacks").inc()
                return None
        return self._compiler

    @property
    def plan_compiler(self):
        """The active :class:`~repro.compiler.RefreshCompiler`, if built."""
        return self._compiler

    def recertify(self) -> bool:
        """Re-run the prover; evict compiled plans if the verdict changed.

        Re-certifies the spec and compares certificate digests. An
        unchanged digest keeps every cached compiled program (returns
        ``False``). A changed digest — or a certificate that now fails
        validation — evicts the whole plan cache (counted by
        ``compiler.evictions``) and returns ``True``; on failure the
        warehouse additionally drops to the interpreted path
        (``compiler.fallbacks``). A no-op unless plan compilation is
        enabled for this warehouse.
        """
        if not self._compile:
            return False
        from repro.compiler import certify
        from repro.compiler.runtime import RefreshCompiler

        old = self._compiler
        try:
            certificate = certify(self.spec)
        except CompileError:
            self._compiler = None
            self._compile_refused = True
            self._metrics.counter("compiler.fallbacks").inc()
            if old is not None:
                self._metrics.counter("compiler.evictions").inc(old.plan_count)
                self._metrics.gauge("compiler.plans").set(0)
            return True
        self._compile_refused = False
        if old is not None and old.certificate.digest == certificate.digest:
            return False
        self._metrics.counter("compiler.certificates").inc()
        if old is not None:
            self._metrics.counter("compiler.evictions").inc(old.plan_count)
        self._compiler = RefreshCompiler(self.spec, certificate)
        self._metrics.gauge("compiler.plans").set(0)
        return True

    def evict_plans(self) -> int:
        """Drop every cached compiled program, keeping the certificate.

        The hard-eviction half of :meth:`recertify`: used when an
        *external* certificate (e.g. a sharding certificate —
        :meth:`repro.core.sharding.ShardedWarehouse.recertify`) changed
        and the closures must be rebuilt even though this warehouse's own
        compiler certificate still validates. Returns the number of
        evicted plans (0 when compilation is off or nothing was cached).
        """
        old = self._compiler
        if old is None:
            return 0
        from repro.compiler.runtime import RefreshCompiler

        evicted = old.plan_count
        self._compiler = RefreshCompiler(self.spec, old.certificate)
        if evicted:
            self._metrics.counter("compiler.evictions").inc(evicted)
        self._metrics.gauge("compiler.plans").set(0)
        return evicted

    def recertify_queries(
        self, document: Optional[Mapping[str, object]] = None
    ) -> bool:
        """Revalidate cached translated plans against a prover verdict.

        ``document`` is a ``python -m repro prove-query`` file document
        (any mapping with a ``"translation_digest"`` key works). Its
        recorded digest is compared against a freshly computed
        :func:`~repro.core.translation.translation_digest`: a mismatch
        means the prover's verdicts were issued under a *different*
        warehouse mapping than the one now serving queries, so every
        cached translated plan is evicted (counted by
        ``warehouse.plan_evictions``). Without a document, the cache is
        simply revalidated against the fresh digest. Returns ``True``
        when plans were evicted.
        """
        fresh = translation_digest(self.spec)
        recorded = None if document is None else document.get("translation_digest")
        if recorded is not None and str(recorded) != fresh:
            evicted = len(self._translation_cache)
            self._translation_cache.clear()
            self._translation_cache.revalidate(fresh)
            if evicted:
                self._metrics.counter("warehouse.plan_evictions").inc(evicted)
            return True
        evicted_now = self._translation_cache.revalidate(fresh)
        if evicted_now:
            self._metrics.counter("warehouse.plan_evictions").inc()
        return evicted_now

    def apply(self, update: Update) -> Dict[str, Delta]:
        """Incrementally fold a reported source update into the warehouse.

        Returns the effective per-warehouse-relation deltas. Touches no
        source database. With the default persistent cache, sub-expressions
        over relations this update leaves unchanged are reused from earlier
        refreshes; per-refresh counters land in :attr:`last_refresh_stats`.
        With plan compilation on (``REPRO_COMPILE=1`` /
        ``compile_plans=True``), the refresh runs as a compiled closure
        specialized to this update's shape instead of interpreting the
        maintenance expressions.
        """
        compiler = self._active_compiler()
        plan = (
            None if compiler is not None
            else self.maintenance_plan(update.relations())
        )
        stats = EvalStats()
        started = perf_counter()
        tracer = self._tracer
        sanitize_buffer = None
        if self._sanitize:
            # Capture the refresh span tree even when tracing is off, so
            # the runtime read set can be checked against the static one.
            sanitize_buffer = RingBufferCollector(capacity=1)
            if tracer is None:
                tracer = Tracer([sanitize_buffer])
            else:
                tracer.collectors.append(sanitize_buffer)
        try:
            if tracer is not None:
                with tracer.span(
                    "refresh", relations=sorted(update.relations())
                ) as span:
                    if compiler is not None:
                        new_state, applied = compiler.refresh(
                            self.state, update, tracer=tracer
                        )
                    else:
                        new_state, applied = refresh_state(
                            self.spec, self.state, update, plan,
                            cache=self._cache, stats=stats, tracer=tracer,
                            engine=self.engine,
                        )
                    span.set(relations_touched=len(applied))
            else:
                if compiler is not None:
                    new_state, applied = compiler.refresh(self.state, update)
                else:
                    new_state, applied = refresh_state(
                        self.spec, self.state, update, plan,
                        cache=self._cache, stats=stats, engine=self.engine,
                    )
        finally:
            if sanitize_buffer is not None and self._tracer is not None:
                self._tracer.collectors.remove(sanitize_buffer)
        if sanitize_buffer is not None:
            root = sanitize_buffer.last("refresh")
            if root is not None:
                from repro.analysis.dataflow import check_refresh_reads

                check_refresh_reads(self.spec, update.relations(), root)
        self._last_refresh_stats = stats
        self._stats.merge(stats)
        self._state = new_state
        self._version += 1
        self._snapshot = None
        self._record_refresh_metrics(perf_counter() - started, applied, stats)
        if compiler is not None:
            self._record_compiler_metrics(compiler)
        for aggregate in self._aggregates:
            delta = applied.get(aggregate.source)
            if delta is not None:
                aggregate.apply_delta(delta, new_state[aggregate.source])
        return applied

    def apply_batch(self, updates: Iterable[Update]) -> Dict[str, Delta]:
        """Fold a batch of reported updates in with a single refresh.

        The updates are composed sequentially (:meth:`Update.compose`) and
        the net update is applied once: one normalization, one maintenance
        evaluation, one cache-invalidation pass — instead of one per
        notification. Equivalent to applying them in order.
        """
        batch: Optional[Update] = None
        composed = 0
        for update in updates:
            batch = update if batch is None else batch.compose(update)
            composed += 1
        if batch is None:
            # Nothing to fold: don't pollute warehouse.batch_size with zeros.
            return {}
        self._metrics.histogram("warehouse.batch_size").observe(composed)
        return self.apply(batch)

    def apply_full(self, update: Update) -> None:
        """Baseline: ``w' = W(u(W^{-1}(w)))`` — full recomputation."""
        self._state = full_recompute_state(
            self.spec, self.state, update, engine=self.engine
        )
        self._version += 1
        self._snapshot = None
        for aggregate in self._aggregates:
            aggregate.recompute(self._state[aggregate.source])

    def attach_aggregate(self, aggregate) -> None:
        """Attach a materialized aggregate view (Section 5, last paragraph).

        The aggregate rides on one warehouse relation (typically a fact
        table): every :meth:`apply` forwards that relation's effective delta
        to the aggregate's summary-delta maintenance. If the warehouse is
        already initialized the aggregate is computed immediately.
        """
        if aggregate.source not in self.spec.warehouse_names():
            raise WarehouseError(
                f"aggregate source {aggregate.source!r} is not a warehouse relation"
            )
        self._aggregates.append(aggregate)
        if self._state is not None:
            aggregate.recompute(self._state[aggregate.source])

    def aggregate(self, name: str) -> Relation:
        """The current table of an attached aggregate view, by name."""
        for aggregate in self._aggregates:
            if aggregate.name == name:
                return aggregate.table()
        raise WarehouseError(f"no aggregate view named {name!r}")

    def insert(self, relation: str, rows: Iterable[Sequence[object]]) -> Dict[str, Delta]:
        """Convenience: apply an insertion update."""
        attrs = self.spec.catalog[relation].attributes
        return self.apply(Update.insert(relation, attrs, rows))

    def delete(self, relation: str, rows: Iterable[Sequence[object]]) -> Dict[str, Delta]:
        """Convenience: apply a deletion update."""
        attrs = self.spec.catalog[relation].attributes
        return self.apply(Update.delete(relation, attrs, rows))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _as_expression(self, query: QueryLike) -> Expression:
        if isinstance(query, str):
            return parse(query)
        return query

    def describe(self) -> str:
        """The full specification, human-readable."""
        return self.spec.describe()

    def __repr__(self) -> str:
        status = "uninitialized" if self._state is None else f"{self.storage_rows()} rows"
        return f"Warehouse({len(self.spec.views)} views, {self.spec.method}, {status})"
