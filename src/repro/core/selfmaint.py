"""Update independence *without* complements (Section 4, end).

The paper closes Section 4 by noting that query independence strictly
implies update independence: a selection view ``W = sigma_c(R)`` is
update-independent with *no* auxiliary data (insertions and deletions
translate directly), while it is clearly not query-independent.

This module provides

* :func:`is_select_only_update_independent` — the paper's closing example as
  a predicate;
* :func:`self_maintainable_without_complement` — a syntactic
  self-maintainability check in the spirit of Quass et al. [18]: derive each
  view's maintenance expressions, fold occurrences of the warehouse views
  back into view references, and test whether any base relation remains. It
  is *conservative* (sound "yes", possibly pessimistic "no" — e.g. it does
  not discover Example 2.1's Huyn-style multi-view self-maintainability,
  which the complement machinery handles instead);
* :func:`self_maintenance_analysis` — a per-warehouse report used by the
  examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, NamedTuple, Sequence, Tuple

from repro.algebra.deltas import (
    del_name,
    delta_scope,
    derive_delta,
    ins_name,
)
from repro.algebra.expressions import Empty, Expression, RelationRef
from repro.algebra.rewriting import fold_occurrences, substitute
from repro.algebra.simplify import simplify
from repro.errors import ExpressionError
from repro.schema.catalog import Catalog
from repro.views.psj import View


def is_select_only_update_independent(view: View, catalog: Catalog) -> bool:
    """Whether ``view`` is a selection over a single base relation.

    Such views are update-independent without any complement: for an
    insertion ``Delta r``, the new state is ``w ∪ sigma_c(Delta r)``; for a
    deletion, ``w - sigma_c(Delta r)`` (the paper's closing calculation).
    The final projection must keep all attributes (otherwise deletions are
    ambiguous under set semantics).
    """
    scope = {s.name: s.attributes for s in catalog.schemas()}
    try:
        psj = view.psj(scope)
    except ExpressionError:
        return False
    if len(psj.relations) != 1:
        return False
    return psj.is_sj(scope)


def _fold_views(expression: Expression, views: Sequence[View]) -> Expression:
    """Replace subtrees equal to a view definition by the view's name.

    This lets the self-maintainability check recognize, e.g., that
    ``pi_Z(R)`` inside a maintenance expression *is* the materialized view
    ``V = pi_Z(R)``.
    """
    return fold_occurrences(
        expression, {view.definition: RelationRef(view.name) for view in views}
    )


def self_maintainable_without_complement(
    catalog: Catalog,
    views: Sequence[View],
    updated: Iterable[str],
    insert_only: bool = False,
    delete_only: bool = False,
) -> Dict[str, bool]:
    """Syntactic self-maintainability per view, without auxiliary data.

    For each view, derives the delta expressions for updates to ``updated``,
    folds view definitions back into view references, simplifies, and checks
    that no base relation reference survives (delta relations ``R__ins`` /
    ``R__del`` are allowed — they are part of the reported update).

    Returns ``{view name: bool}``.
    """
    updated_set = frozenset(updated)
    source_scope = {s.name: s.attributes for s in catalog.schemas()}
    extended = delta_scope(source_scope, updated_set)
    for view in views:
        extended[view.name] = view.definition.attributes(source_scope)

    specialize: Dict[str, Expression] = {}
    for relation in updated_set:
        attrs = source_scope[relation]
        if insert_only:
            specialize[del_name(relation)] = Empty(attrs)
        if delete_only:
            specialize[ins_name(relation)] = Empty(attrs)

    allowed = (
        {view.name for view in views}
        | {ins_name(r) for r in updated_set}
        | {del_name(r) for r in updated_set}
    )

    verdict: Dict[str, bool] = {}
    for view in views:
        derived = derive_delta(view.definition, updated_set, source_scope)
        if specialize:
            derived = derived.map(lambda e: substitute(e, specialize))
        derived = derived.map(lambda e: _fold_views(e, views))
        derived = derived.map(lambda e: simplify(e, extended))
        remaining = (
            derived.inserts.relation_names() | derived.deletes.relation_names()
        ) - allowed
        verdict[view.name] = not remaining
    return verdict


class SelfMaintenanceReport(NamedTuple):
    """Outcome of :func:`self_maintenance_analysis`."""

    select_only_views: Tuple[str, ...]
    self_maintainable_for_inserts: Dict[str, bool]
    self_maintainable_for_deletes: Dict[str, bool]
    needs_complement: bool

    def describe(self) -> str:
        """Human-readable, multi-line summary of the report."""
        lines = [
            f"select-only (update-independent with no auxiliary data): "
            f"{list(self.select_only_views)}",
            f"self-maintainable for inserts: {self.self_maintainable_for_inserts}",
            f"self-maintainable for deletes: {self.self_maintainable_for_deletes}",
            f"complement needed: {self.needs_complement}",
        ]
        return "\n".join(lines)


def self_maintenance_analysis(
    catalog: Catalog, views: Sequence[View]
) -> SelfMaintenanceReport:
    """Classify a warehouse definition's self-maintainability.

    Checks every view against updates to *each* base relation it involves
    (both pure insertions and pure deletions). ``needs_complement`` is true
    iff some view fails some check — the situation in which the paper's
    complement machinery earns its keep.
    """
    scope = {s.name: s.attributes for s in catalog.schemas()}
    select_only = tuple(
        view.name for view in views if is_select_only_update_independent(view, catalog)
    )
    inserts_ok: Dict[str, bool] = {view.name: True for view in views}
    deletes_ok: Dict[str, bool] = {view.name: True for view in views}
    for view in views:
        for relation in view.psj(scope).relations:
            ins = self_maintainable_without_complement(
                catalog, views, [relation], insert_only=True
            )
            dels = self_maintainable_without_complement(
                catalog, views, [relation], delete_only=True
            )
            inserts_ok[view.name] = inserts_ok[view.name] and ins[view.name]
            deletes_ok[view.name] = deletes_ok[view.name] and dels[view.name]
    needs = not (all(inserts_ok.values()) and all(deletes_ok.values()))
    return SelfMaintenanceReport(select_only, inserts_ok, deletes_ok, needs)
