"""E13 — observability overhead: untraced vs ring buffer vs JSONL sink.

Replays the E7 maintenance workload (the same stream E12 benchmarks) through
the warehouse in three configurations:

* **off** — tracing disabled (the default). The evaluator and maintenance
  engine branch to their span-free twins, so this is byte-for-byte the path
  E12 measured; the zero-allocation guarantee is unit-tested in
  ``tests/obs/test_zero_overhead.py``.
* **ring** — ``enable_tracing()``: spans built and kept in the in-memory
  ring buffer (the ``explain()`` configuration).
* **jsonl** — ring buffer plus a :class:`~repro.obs.trace.JsonlSink`
  streaming every span to a file (the post-mortem configuration).

The report prints per-configuration wall time and the relative overhead.
Overhead is workload-dependent (span cost is per evaluated operator, so
cache-heavy streams show more relative overhead than compute-heavy ones);
no hard bound is asserted here — the structural guarantee that **off**
cannot regress is the zero-allocation test, and E12's speedup bar keeps
running in CI against the untraced path.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import Warehouse
from repro.obs import JsonlSink
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows

from _helpers import print_table

SCALE = 2.0


def build():
    inst = tpcd_instance(scale=SCALE, seed=21)
    rng = random.Random(3)
    batches = []
    for _ in range(3):
        orders, lines = order_insert_rows(rng, inst.database, count=3)
        batches.append(("Orders", orders))
        batches.append(("Lineitem", lines))
    return inst, batches


def run(inst, batches, tracing=None, sink=None):
    wh = Warehouse.specify(inst.catalog, inst.views)
    if tracing:
        wh.enable_tracing(sink=sink)
    wh.initialize(inst.database)
    for relation, rows in batches:
        wh.insert(relation, rows)
    return wh


def test_obs_overhead_off(benchmark):
    inst, batches = build()
    benchmark(lambda: run(inst, batches))


def test_obs_overhead_ring(benchmark):
    inst, batches = build()
    benchmark(lambda: run(inst, batches, tracing=True))


def test_obs_overhead_jsonl(benchmark, tmp_path):
    inst, batches = build()

    def traced_to_file():
        with JsonlSink(str(tmp_path / "trace.jsonl"), mode="w") as sink:
            return run(inst, batches, tracing=True, sink=sink)

    benchmark(traced_to_file)


def test_report_overhead(tmp_path):
    inst, batches = build()

    def timed(func):
        best = float("inf")
        result = None
        for _ in range(5):  # best-of-5 damps scheduler noise
            start = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - start)
        return best, result

    off_time, off_wh = timed(lambda: run(inst, batches))
    ring_time, ring_wh = timed(lambda: run(inst, batches, tracing=True))

    def jsonl_run():
        with JsonlSink(str(tmp_path / "trace.jsonl"), mode="w") as sink:
            return run(inst, batches, tracing=True, sink=sink)

    jsonl_time, jsonl_wh = timed(jsonl_run)

    # All three configurations produce the same warehouse state.
    assert off_wh.state == ring_wh.state == jsonl_wh.state
    # The traced runs really did record something.
    assert ring_wh.last_trace("refresh") is not None
    assert (tmp_path / "trace.jsonl").stat().st_size > 0

    rows = [
        ("off (default)", f"{off_time * 1e3:.1f}", "1.00x"),
        ("ring buffer", f"{ring_time * 1e3:.1f}", f"{ring_time / off_time:.2f}x"),
        ("ring + jsonl", f"{jsonl_time * 1e3:.1f}", f"{jsonl_time / off_time:.2f}x"),
    ]
    print_table(
        "E13: E7 update stream (scale 2.0) under tracing configurations",
        ("tracing", "time [ms]", "vs off"),
        rows,
    )
