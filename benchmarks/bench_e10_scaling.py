"""E10 — Specification-time scaling of the complement machinery.

Sweeps the number of relations and views on random catalogs and times
``complement_thm22`` (Theorem 2.2: hats, covers, IND substitution, pruning),
plus the storage ratio of the computed complement against the trivial one.

Expected shape: specification cost is polynomial in schema size (cover
enumeration dominates but view counts per relation are small), and the
computed complement consistently stores a fraction of the trivial replica.
"""

from __future__ import annotations

import pytest

from repro import complement_thm22, complement_trivial
from repro.core.independence import warehouse_state
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_views,
)

from _helpers import print_table

SWEEP = [
    (3, 2),
    (5, 4),
    (8, 6),
    (12, 8),
]


@pytest.mark.parametrize("n_relations,n_views", SWEEP)
def test_specification_cost(benchmark, n_relations, n_views):
    config = GeneratorConfig(n_relations=n_relations)
    catalog = random_catalog(7, config)
    views = random_views(7, catalog, n_views=n_views)
    benchmark(lambda: complement_thm22(catalog, views))


def stored_complement_rows(spec, state) -> int:
    names = set(spec.complement_names())
    image = warehouse_state(spec, state)
    return sum(len(rel) for name, rel in image.items() if name in names)


def test_report_series(benchmark):
    import time

    rows = []
    for n_relations, n_views in SWEEP:
        config = GeneratorConfig(n_relations=n_relations)
        catalog = random_catalog(7, config)
        views = random_views(7, catalog, n_views=n_views)
        db = random_database(7, catalog, rows_per_relation=40)
        state = db.state()

        t0 = time.perf_counter()
        spec = complement_thm22(catalog, views)
        elapsed = time.perf_counter() - t0

        minimal_rows = stored_complement_rows(spec, state)
        trivial_rows = stored_complement_rows(
            complement_trivial(catalog, views), state
        )
        assert minimal_rows <= trivial_rows
        rows.append(
            (
                n_relations,
                n_views,
                len(catalog.inclusions()),
                f"{elapsed * 1e3:.2f}",
                minimal_rows,
                trivial_rows,
                f"{minimal_rows / max(trivial_rows, 1):.2f}",
            )
        )
    print_table(
        "E10: complement specification cost and storage vs the trivial replica",
        ("#rel", "#views", "#INDs", "spec [ms]", "thm22 rows", "trivial rows", "ratio"),
        rows,
    )
    config = GeneratorConfig(n_relations=SWEEP[-1][0])
    catalog = random_catalog(7, config)
    views = random_views(7, catalog, n_views=SWEEP[-1][1])
    benchmark(lambda: complement_thm22(catalog, views))
