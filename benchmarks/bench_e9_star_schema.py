"""E9 — Section 5: star schemata with union fact tables and aggregates.

Builds a two-location star warehouse (per-location order sources, shared
customer dimension, union-integrated ``Sales`` fact table, revenue
aggregate) and times initialization, per-batch maintenance, and aggregate
upkeep across source sizes.

Expected shape: all order complements are proven empty (foreign keys plus
origin check constraints), so warehouse storage is just the star schema;
maintenance stays delta-proportional per batch.
"""

from __future__ import annotations

import random

import pytest

from repro import Catalog, Database, Update, View, Warehouse, parse, parse_condition
from repro.core.aggregates import AggregateView, agg_sum, count
from repro.core.star import FactTable, star_specify

from _helpers import print_table

LOCATIONS = ("N", "S", "W")


def build(n_customers: int, orders_per_loc: int, seed: int = 0):
    rng = random.Random(seed)
    catalog = Catalog()
    catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
    for loc in LOCATIONS:
        name = f"Orders{loc}"
        catalog.relation(name, ("loc", "okey", "custkey", "price"), key=("okey",))
        catalog.inclusion(name, ("custkey",), "Customer")
        catalog.add_check(name, parse_condition(f"loc = '{loc}'"))

    db = Database(catalog)
    db.load(
        "Customer",
        [(i, rng.choice(("RETAIL", "CORP", "GOV"))) for i in range(n_customers)],
    )
    for index, loc in enumerate(LOCATIONS):
        base = (index + 1) * 1_000_000
        db.load(
            f"Orders{loc}",
            [
                (loc, base + i, rng.randrange(n_customers), rng.randint(10, 5000))
                for i in range(orders_per_loc)
            ],
        )

    fact = FactTable(
        "Sales",
        "loc",
        {loc: parse(f"Orders{loc} join Customer") for loc in LOCATIONS},
    )
    spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
    return catalog, db, spec


def order_batch(db: Database, loc: str, size: int, seed: int) -> Update:
    rng = random.Random(seed)
    existing = {r[1] for r in db[f"Orders{loc}"].rows}
    next_key = max(existing) + 1
    customers = sorted(r[0] for r in db["Customer"].rows)
    rows = [
        (loc, next_key + i, rng.choice(customers), rng.randint(10, 5000))
        for i in range(size)
    ]
    return Update.insert(f"Orders{loc}", ("loc", "okey", "custkey", "price"), rows)


SIZES = [(50, 100), (200, 400)]


@pytest.mark.parametrize("n_cust,per_loc", SIZES)
def test_initialization(benchmark, n_cust, per_loc):
    catalog, db, spec = build(n_cust, per_loc)
    wh = Warehouse(spec)
    benchmark(lambda: wh.initialize(db))


@pytest.mark.parametrize("n_cust,per_loc", SIZES)
def test_fact_maintenance(benchmark, n_cust, per_loc):
    catalog, db, spec = build(n_cust, per_loc)
    wh = Warehouse(spec)
    wh.initialize(db)
    update = order_batch(db, "N", 10, seed=5)
    state = dict(wh.state)
    plan = wh.maintenance_plan(update.relations())
    from repro.core.maintenance import refresh_state

    benchmark(lambda: refresh_state(wh.spec, state, update, plan))


def test_report_series(benchmark):
    import time

    rows = []
    for n_cust, per_loc in SIZES:
        catalog, db, spec = build(n_cust, per_loc)
        wh = Warehouse(spec)
        wh.initialize(db)
        wh.attach_aggregate(
            AggregateView(
                "Revenue", "Sales", ("segment",), [count("orders"), agg_sum("price")]
            )
        )
        empty = sum(1 for c in spec.complements.values() if c.provably_empty)
        source_rows = db.total_rows()
        warehouse_rows = wh.storage_rows()

        t0 = time.perf_counter()
        for step, loc in enumerate(LOCATIONS):
            update = order_batch(db, loc, 10, seed=step)
            db.apply(update)
            wh.apply(update)
        elapsed = time.perf_counter() - t0

        # Invariants: fact table reflects all sources, aggregate is exact.
        reference = AggregateView(
            "Ref", "Sales", ("segment",), [count("orders"), agg_sum("price")]
        )
        reference.recompute(wh.relation("Sales"))
        assert wh.aggregate("Revenue") == reference.table()
        rows.append(
            (
                f"{n_cust}/{per_loc}",
                source_rows,
                warehouse_rows,
                empty,
                f"{elapsed / len(LOCATIONS) * 1e3:.1f}",
            )
        )
    print_table(
        "E9 (Section 5): star warehouse — storage and per-batch maintenance",
        ("cust/orders", "src rows", "wh rows", "empty complements", "ms/batch (10 rows + agg)"),
        rows,
    )
    # All four order complements and the customer complement vanish.
    assert all(row[3] == len(LOCATIONS) + 1 for row in rows)

    catalog, db, spec = build(*SIZES[0])
    wh = Warehouse(spec)
    benchmark(lambda: wh.initialize(db))
