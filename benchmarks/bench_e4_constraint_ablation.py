"""E4 — Example 2.3 / Theorem 2.2: the constraint ablation.

For the Example 2.3 schema and views, sweeps the constraint configuration
(none / keys only / keys + INDs) and reports how many complements survive
and how many tuples they store on generated data.

Expected shape (paper): with keys, C1 collapses (lossless key join V3⋈V4);
with INDs, covers multiply; our semantic emptiness analysis additionally
proves C2 and C3 empty under the INDs.
"""

from __future__ import annotations

import random

import pytest

from repro import Catalog, Relation, View, complement_thm22, parse
from repro.core.covers import enumerate_covers, ind_key_views
from repro.core.independence import warehouse_state

from _helpers import print_table


def make_catalog(with_keys: bool, with_inds: bool) -> Catalog:
    catalog = Catalog()
    key = ("A",) if with_keys else None
    catalog.relation("R1", ("A", "B", "C"), key=key)
    catalog.relation("R2", ("A", "C", "D"), key=key)
    catalog.relation("R3", ("A", "B"), key=key)
    if with_inds:
        catalog.inclusion("R3", ("A", "B"), "R1")
        catalog.inclusion("R2", ("A", "C"), "R1")
    return catalog


def make_views():
    return [
        View("V1", parse("R1 join R2")),
        View("V2", parse("R3")),
        View("V3", parse("pi[A, B](R1)")),
        View("V4", parse("pi[A, C](R1)")),
    ]


def generate_state(n: int, seed: int = 0):
    rng = random.Random(seed)
    r1 = [(f"k{i}", rng.randrange(6), rng.randrange(6)) for i in range(n)]
    r3 = [(a, b) for (a, b, _c) in rng.sample(r1, n // 2)]
    r2 = [(a, c, rng.randrange(6)) for (a, _b, c) in rng.sample(r1, n // 3)]
    return {
        "R1": Relation(("A", "B", "C"), r1),
        "R2": Relation(("A", "C", "D"), r2),
        "R3": Relation(("A", "B"), r3),
    }


CONFIGS = [
    ("none", False, False),
    ("keys", True, False),
    ("keys+INDs", True, True),
]


@pytest.mark.parametrize("label,with_keys,with_inds", CONFIGS)
def test_specification_cost(benchmark, label, with_keys, with_inds):
    catalog = make_catalog(with_keys, with_inds)
    views = make_views()
    benchmark(lambda: complement_thm22(catalog, views))


def test_cover_enumeration_cost(benchmark):
    catalog = make_catalog(True, True)
    views = make_views()
    elements = ind_key_views(catalog, views, "R1")
    target = frozenset(catalog.attributes("R1"))
    benchmark(lambda: enumerate_covers(elements, target))


def test_report_series(benchmark):
    views = make_views()
    state = generate_state(300)
    rows = []
    for label, with_keys, with_inds in CONFIGS:
        catalog = make_catalog(with_keys, with_inds)
        spec = complement_thm22(catalog, views)
        empty_count = sum(
            1 for c in spec.complements.values() if c.provably_empty
        )
        image = warehouse_state(spec, state)
        names = set(spec.complement_names())
        stored = sum(len(rel) for name, rel in image.items() if name in names)
        covers = len(
            enumerate_covers(
                ind_key_views(catalog, views, "R1"),
                frozenset(catalog.attributes("R1")),
            )
        )
        rows.append((label, empty_count, 3 - empty_count, stored, covers))
    print_table(
        "E4 (Example 2.3): complements under the constraint ablation (n=300)",
        ("constraints", "provably empty", "stored", "stored tuples", "covers of R1"),
        rows,
    )
    # Keys strictly help; INDs strictly help again.
    assert rows[0][1] < rows[1][1] <= rows[2][1]
    assert rows[0][3] >= rows[1][3] >= rows[2][3]
    assert rows[1][4] < rows[2][4]

    catalog = make_catalog(True, True)
    benchmark(lambda: complement_thm22(catalog, views))
