"""Shared builders and reporting helpers for the benchmark suite.

Every ``bench_e*.py`` file regenerates one experiment from the per-experiment
index in DESIGN.md. The paper reports no wall-clock numbers (it is a theory
paper), so each benchmark both *times* the relevant machinery with
pytest-benchmark and *prints* the series EXPERIMENTS.md records (complement
sizes, speedups, correctness checks). Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

import pytest

from repro import Catalog, Database, Relation, View, parse


def figure1_catalog(with_ri: bool = False) -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    if with_ri:
        catalog.inclusion("Sale", ("clerk",), "Emp")
    return catalog


def figure1_database(
    catalog: Catalog, n_emps: int, sales_per_emp: int, seed: int = 0
) -> Database:
    """A scaled-up Figure 1 instance (every clerk exists in Emp)."""
    rng = random.Random(seed)
    db = Database(catalog)
    emps = [(f"clerk{i}", rng.randint(18, 65)) for i in range(n_emps)]
    db.load("Emp", emps)
    sales = []
    for i in range(n_emps * sales_per_emp):
        clerk = f"clerk{rng.randrange(n_emps)}"
        sales.append((f"item{i}", clerk))
    db.load("Sale", sales)
    return db


def sold_view() -> View:
    return View("Sold", parse("Sale join Emp"))


def print_table(title: str, header: Sequence[str], rows: List[Sequence[object]]) -> None:
    """Print a small aligned table (the series EXPERIMENTS.md records)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row):
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(row))

    print()
    print(title)
    print(fmt(header))
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print(fmt(row))
