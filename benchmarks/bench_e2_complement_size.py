"""E2 — Example 2.1 / Theorem 2.1: complement storage vs view sets.

Regenerates the Example 2.1 comparison quantitatively: the stored complement
shrinks as views are added, and every variant stays strictly below the
trivial copy-everything complement on joinable data.

Expected shape (paper): trivial > single-view prop22 >= multi-view, with the
multi-view C_S identically empty.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    View,
    complement_prop22,
    complement_thm22,
    complement_trivial,
    parse,
)
from repro.core.independence import warehouse_state

from _helpers import print_table


def example21_catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("X", "Y"))
    catalog.relation("S", ("Y", "Z"))
    catalog.relation("T", ("Z",))
    return catalog


def joinable_state(n: int, seed: int = 0):
    """Data where roughly half of R/S/T participates in the 3-way join."""
    rng = random.Random(seed)
    r = [(i, i % (n // 2 + 1)) for i in range(n)]
    s = [(y, y * 2) for y in range(0, n, 2)]
    t = [(z,) for z in range(0, 2 * n, 3)]
    return {
        "R": Relation(("X", "Y"), r),
        "S": Relation(("Y", "Z"), s),
        "T": Relation(("Z",), t),
    }


def stored_rows(spec, state) -> int:
    image = warehouse_state(spec, state)
    names = set(spec.complement_names())
    return sum(len(rel) for name, rel in image.items() if name in names)


SIZES = [50, 200, 800]


@pytest.mark.parametrize("n", SIZES)
def test_complement_computation_cost(benchmark, n):
    """Specification cost is data-independent (pure schema work)."""
    catalog = example21_catalog()
    views = [View("V1", parse("R join S join T")), View("V2", parse("S"))]
    benchmark(lambda: complement_prop22(catalog, views))


@pytest.mark.parametrize("n", SIZES)
def test_complement_materialization_cost(benchmark, n):
    catalog = example21_catalog()
    views = [View("V1", parse("R join S join T")), View("V2", parse("S"))]
    spec = complement_prop22(catalog, views)
    state = joinable_state(n)
    benchmark(lambda: warehouse_state(spec, state))


def test_report_series(benchmark):
    catalog = example21_catalog()
    single = [View("V1", parse("R join S join T"))]
    multi = [View("V1", parse("R join S join T")), View("V2", parse("S"))]

    rows = []
    for n in SIZES:
        state = joinable_state(n)
        source_rows = sum(len(r) for r in state.values())
        trivial = stored_rows(complement_trivial(catalog, single), state)
        prop_single = stored_rows(complement_prop22(catalog, single), state)
        prop_multi = stored_rows(complement_prop22(catalog, multi), state)
        thm_multi = stored_rows(complement_thm22(catalog, multi), state)
        # The paper's ordering: multi <= single < trivial.
        assert prop_multi <= prop_single <= trivial
        assert thm_multi <= prop_multi  # pruned C_S is gone entirely
        rows.append((n, source_rows, trivial, prop_single, prop_multi, thm_multi))

    print_table(
        "E2 (Example 2.1): stored complement tuples by method",
        ("n", "source rows", "trivial", "prop22 {V1}", "prop22 {V1,V2}", "thm22 {V1,V2}"),
        rows,
    )
    state = joinable_state(SIZES[-1])
    spec = complement_prop22(catalog, multi)
    benchmark(lambda: stored_rows(spec, state))
