"""E12 — indexed-join fast path + cross-update cache vs the seed evaluator.

Replays the E7 maintenance workload (TPC-D-like order/lineitem insertion
streams, 6 batches) through two evaluator configurations:

* **fast** — the production path: a persistent
  :class:`~repro.algebra.evaluator.EvaluationCache` shared across refreshes,
  semi-/anti-join fast paths on, and ``Relation`` hash indexes / projection
  caches patched through delta-sized unions and differences, so the big
  warehouse relations keep their indexes across updates;
* **seed** — the evaluator as it was before the fast path landed: per-refresh
  memo only, no fast paths, and every state relation re-wrapped in a fresh
  ``Relation`` after each refresh. That re-wrap is what the old
  ``union``/``difference`` produced anyway (new objects, empty caches), so
  the baseline reproduces the seed's cost model: no index, projection, or
  evaluation cache survives a refresh.

Both configurations must produce identical states (checked every series run);
the speedup floor asserted at the largest scale is the E12 acceptance bar.
"""

from __future__ import annotations

import random

import pytest

from repro import Relation, Warehouse
from repro.algebra.evaluator import EvaluationCache
from repro.core.maintenance import refresh_state
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows

from _helpers import print_table

SCALES = [0.5, 2.0, 6.0]


def build(scale: float):
    """The E7 workload: 3 order batches + 3 lineitem batches, interleaved."""
    inst = tpcd_instance(scale=scale, seed=21)
    wh = Warehouse.specify(inst.catalog, inst.views)
    wh.initialize(inst.database)
    rng = random.Random(3)
    updates = []
    for _ in range(3):
        orders, lines = order_insert_rows(rng, inst.database, count=3)
        updates.append(inst.database.insert("Orders", orders))
        updates.append(inst.database.insert("Lineitem", lines))
    plans = {u.relations(): wh.maintenance_plan(u.relations()) for u in updates}
    return wh, dict(wh.state), updates, plans


def strip_caches(state):
    """Fresh ``Relation`` objects — the seed's post-refresh cache state."""
    return {name: Relation(rel.attributes, rel.rows) for name, rel in state.items()}


def run_seed(wh, base_state, updates, plans):
    state = strip_caches(base_state)
    for update in updates:
        state, _ = refresh_state(
            wh.spec, state, update, plans[update.relations()],
            cache=None, fastpath=False,
        )
        state = strip_caches(state)
    return state


def run_fast(wh, base_state, updates, plans, cache=None):
    cache = EvaluationCache() if cache is None else cache
    state = base_state
    for update in updates:
        state, _ = refresh_state(
            wh.spec, state, update, plans[update.relations()],
            cache=cache, fastpath=True,
        )
    return state


@pytest.mark.parametrize("scale", SCALES)
def test_seed_evaluator_stream(benchmark, scale):
    wh, base_state, updates, plans = build(scale)
    benchmark(lambda: run_seed(wh, base_state, updates, plans))


@pytest.mark.parametrize("scale", SCALES)
def test_fastpath_stream(benchmark, scale):
    wh, base_state, updates, plans = build(scale)
    benchmark(lambda: run_fast(wh, base_state, updates, plans))


def test_report_series(benchmark):
    import time

    def timed(func):
        best = float("inf")
        result = None
        for _ in range(5):  # best-of-5 damps scheduler noise
            start = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - start)
        return best, result

    rows = []
    speedups = []
    for scale in SCALES:
        wh, base_state, updates, plans = build(scale)
        seed_time, seed_state = timed(lambda: run_seed(wh, base_state, updates, plans))
        fast_time, fast_state = timed(lambda: run_fast(wh, base_state, updates, plans))
        assert seed_state == fast_state  # both are W(u(...)) — same final state
        speedup = seed_time / fast_time
        speedups.append(speedup)
        rows.append(
            (
                scale,
                sum(len(r) for r in base_state.values()),
                f"{seed_time * 1e3:.1f}",
                f"{fast_time * 1e3:.1f}",
                f"{speedup:.1f}x",
            )
        )
    print_table(
        "E12: 6-batch E7 update stream, seed evaluator vs indexed fast path",
        ("scale", "wh rows", "seed [ms]", "fastpath [ms]", "speedup"),
        rows,
    )
    # The acceptance bar: >= 2x over the seed evaluator at the largest size.
    assert speedups[-1] >= 2.0, speedups

    wh, base_state, updates, plans = build(SCALES[0])
    cache = EvaluationCache()
    run_fast(wh, base_state, updates, plans, cache=cache)  # warm
    benchmark(lambda: run_fast(wh, base_state, updates, plans, cache=cache))
