"""E3 — Example 2.2: Proposition 2.2 is not minimal for proper PSJ views.

Measures, over random states of R(A, B, C), how many tuples the paper's
smaller complement ``C'_R`` stores compared to Proposition 2.2's ``C_R``
(with views V1 = pi_AB(R), V2 = pi_BC(R), V3 = sigma_{B=b}(R)).

Expected shape: ``|C'_R| <= |C_R|`` on every state, strictly smaller on a
substantial fraction (exactly the states where some AB-pair's completions
are all present).
"""

from __future__ import annotations

import random

import pytest

from repro import Catalog, Relation, View, complement_prop22, evaluate, parse

from _helpers import print_table

C_PRIME = parse(
    "(R join pi[A, B]((pi[A, B](R) join pi[B, C](R)) minus R))"
    " minus sigma[B = 'b'](R)"
)


def catalog_and_spec():
    catalog = Catalog()
    catalog.relation("R", ("A", "B", "C"))
    views = [
        View("V1", parse("pi[A, B](R)")),
        View("V2", parse("pi[B, C](R)")),
        View("V3", parse("sigma[B = 'b'](R)")),
    ]
    return catalog, complement_prop22(catalog, views)


def random_state(n: int, domain: int, seed: int):
    rng = random.Random(seed)
    rows = {
        (f"a{rng.randrange(domain)}", f"b{rng.randrange(domain)}", f"c{rng.randrange(domain)}")
        for _ in range(n)
    }
    return {"R": Relation(("A", "B", "C"), rows)}


SIZES = [100, 400]


@pytest.mark.parametrize("n", SIZES)
def test_c_prime_evaluation_cost(benchmark, n):
    state = random_state(n, domain=8, seed=1)
    benchmark(lambda: evaluate(C_PRIME, state))


@pytest.mark.parametrize("n", SIZES)
def test_prop22_complement_evaluation_cost(benchmark, n):
    catalog, spec = catalog_and_spec()
    cr = spec.complements["R"].definition_over_sources(spec.views)
    state = random_state(n, domain=8, seed=1)
    benchmark(lambda: evaluate(cr, state))


def test_report_series(benchmark):
    catalog, spec = catalog_and_spec()
    cr = spec.complements["R"].definition_over_sources(spec.views)
    rows = []
    for n, domain in ((50, 4), (200, 6), (800, 10)):
        cr_total = cp_total = strict = trials = 0
        for seed in range(10):
            state = random_state(n, domain, seed)
            size_cr = len(evaluate(cr, state))
            size_cp = len(evaluate(C_PRIME, state))
            assert size_cp <= size_cr  # C' never stores more
            cr_total += size_cr
            cp_total += size_cp
            strict += size_cp < size_cr
            trials += 1
        rows.append(
            (
                f"{n}/{domain}",
                cr_total // trials,
                cp_total // trials,
                f"{100 * strict / trials:.0f}%",
            )
        )
    print_table(
        "E3 (Example 2.2): avg stored tuples, Prop 2.2 C_R vs paper C'_R",
        ("n/domain", "|C_R|", "|C'_R|", "strictly smaller"),
        rows,
    )
    state = random_state(400, 8, 0)
    benchmark(lambda: evaluate(C_PRIME, state))
