"""E6 — Section 3 / Theorem 3.1: query translation and answering.

Times (i) the symbolic translation ``Q -> Q^`` (pure rewriting, independent
of data size) and (ii) answering the translated query at the warehouse
versus evaluating the original at the sources, across data scales.

Expected shape: translation cost is microseconds and flat in data size;
warehouse answering is within a small constant of source evaluation (both
evaluate one relational expression over comparable data), and the warehouse
keeps answering when sources are gone.
"""

from __future__ import annotations

import pytest

from repro import Warehouse, evaluate, parse
from repro.core.translation import translate_query

from _helpers import figure1_catalog, figure1_database, print_table, sold_view

QUERIES = {
    "paper-age-query": "pi[age](sigma[item = 'item1'](Sale) join Emp)",
    "union-of-clerks": "pi[clerk](Sale) union pi[clerk](Emp)",
    "anti-join": "Emp minus pi[clerk, age](Sale join Emp)",
    "full-join": "Sale join Emp",
    "selection": "sigma[age >= 40](Emp)",
}

SCALES = [(100, 4), (400, 4)]


def build(n_emps: int, per_emp: int):
    catalog = figure1_catalog(with_ri=True)
    db = figure1_database(catalog, n_emps, per_emp)
    wh = Warehouse.specify(catalog, [sold_view()])
    wh.initialize(db)
    return db, wh


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_translation_cost(benchmark, name):
    _, wh = build(50, 2)
    query = parse(QUERIES[name])
    benchmark(lambda: translate_query(wh.spec, query))


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("n_emps,per_emp", [SCALES[-1]])
def test_warehouse_answering(benchmark, name, n_emps, per_emp):
    db, wh = build(n_emps, per_emp)
    query = QUERIES[name]
    translated = translate_query(wh.spec, parse(query), optimized=True)
    state = wh.state
    benchmark(lambda: evaluate(translated, state))


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("n_emps,per_emp", [SCALES[-1]])
def test_source_answering(benchmark, name, n_emps, per_emp):
    db, wh = build(n_emps, per_emp)
    query = parse(QUERIES[name])
    state = db.state()
    benchmark(lambda: evaluate(query, state))


def test_report_series(benchmark):
    import time

    rows = []
    for n_emps, per_emp in SCALES:
        db, wh = build(n_emps, per_emp)
        for name, text in sorted(QUERIES.items()):
            query = parse(text)
            t0 = time.perf_counter()
            translated = translate_query(wh.spec, query, optimized=True)
            t1 = time.perf_counter()
            warehouse_answer = evaluate(translated, wh.state)
            t2 = time.perf_counter()
            source_answer = evaluate(query, db.state())
            t3 = time.perf_counter()
            assert warehouse_answer == source_answer  # Theorem 3.1
            rows.append(
                (
                    f"{n_emps}x{per_emp}",
                    name,
                    f"{(t1 - t0) * 1e6:.0f}",
                    f"{(t2 - t1) * 1e3:.2f}",
                    f"{(t3 - t2) * 1e3:.2f}",
                    len(warehouse_answer),
                )
            )
    print_table(
        "E6 (Theorem 3.1): translation + answering (warehouse == source)",
        ("scale", "query", "translate [us]", "warehouse [ms]", "source [ms]", "|answer|"),
        rows,
    )
    _, wh = build(*SCALES[-1])
    query = parse(QUERIES["union-of-clerks"])
    benchmark(lambda: translate_query(wh.spec, query))
