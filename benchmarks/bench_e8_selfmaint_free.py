"""E8 — Section 4 (end): select-only views need no complement at all.

The paper closes Section 4 with ``W = sigma_c(R)``: update-independent with
zero auxiliary storage. This benchmark compares maintaining such a
warehouse (a) through the generic complement machinery and (b) through the
direct paper calculation ``w' = w ∪ sigma_c(Δr)`` / ``w' = w - sigma_c(Δr)``,
and reports auxiliary storage for both.

Expected shape: identical results; the complement machinery stores C_R
(everything failing the selection) while the direct route stores nothing.
"""

from __future__ import annotations

import random

import pytest

from repro import Relation, Update, View, Warehouse, evaluate, parse
from repro.analysis.dataflow import views_only_read_sets
from repro.core.maintenance import refresh_state
from repro.core.selfmaint import is_select_only_update_independent
from repro.schema import Catalog

from _helpers import print_table

CONDITION = "age >= 40"


def build(n: int):
    catalog = Catalog()
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    rng = random.Random(0)
    rows = [(f"clerk{i}", rng.randint(18, 65)) for i in range(n)]
    state = {"Emp": Relation(("clerk", "age"), rows)}
    view = View("Senior", parse(f"sigma[{CONDITION}](Emp)"))
    return catalog, state, view


def make_update(n: int, batch: int):
    rng = random.Random(1)
    return Update.insert(
        "Emp", ("clerk", "age"), [(f"new{i}", rng.randint(18, 65)) for i in range(batch)]
    )


SIZES = [200, 1000]


@pytest.mark.parametrize("n", SIZES)
def test_complement_machinery(benchmark, n):
    catalog, state, view = build(n)
    wh = Warehouse.specify(catalog, [view])
    wh.initialize(state)
    update = make_update(n, 10)
    warehouse = dict(wh.state)
    plan = wh.maintenance_plan(["Emp"])
    benchmark(lambda: refresh_state(wh.spec, warehouse, update, plan))


@pytest.mark.parametrize("n", SIZES)
def test_direct_selection_maintenance(benchmark, n):
    catalog, state, view = build(n)
    sigma = view.definition
    materialized = evaluate(sigma, state)
    update = make_update(n, 10)
    delta = update.delta_for("Emp")

    def run():
        gained = evaluate(sigma, {"Emp": delta.inserts})
        lost = evaluate(sigma, {"Emp": delta.deletes})
        return materialized.difference(lost).union(gained)

    benchmark(run)


def test_report_series(benchmark):
    rows = []
    for n in SIZES:
        catalog, state, view = build(n)
        assert is_select_only_update_independent(view, catalog)
        # The static prover certifies the same guarantee: maintained
        # without complement, this view reads no source for any update.
        assert views_only_read_sets(catalog, [view]).update_independent
        wh = Warehouse.specify(catalog, [view])
        wh.initialize(state)
        update = make_update(n, 10)

        new_state, _ = refresh_state(wh.spec, wh.state, update, None)

        sigma = view.definition
        delta = update.delta_for("Emp")
        direct = (
            evaluate(sigma, state)
            .difference(evaluate(sigma, {"Emp": delta.deletes}))
            .union(evaluate(sigma, {"Emp": delta.inserts}))
        )
        assert new_state["Senior"] == direct  # the paper's calculation

        auxiliary = sum(
            len(new_state[name]) for name in wh.spec.complement_names()
        )
        rows.append((n, len(direct), auxiliary, 0))
    print_table(
        "E8 (Section 4 end): select-only views — auxiliary storage",
        ("n", "|view|", "aux rows (complement route)", "aux rows (direct route)"),
        rows,
    )
    assert all(row[2] > 0 for row in rows)  # the complement stores the rest

    catalog, state, view = build(SIZES[-1])
    sigma = view.definition
    update = make_update(SIZES[-1], 10)
    delta = update.delta_for("Emp")
    materialized = evaluate(sigma, state)
    benchmark(
        lambda: materialized.union(evaluate(sigma, {"Emp": delta.inserts}))
    )
