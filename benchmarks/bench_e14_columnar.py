"""E14 — dict-encoded columnar kernels vs the PR-1 tuple engine.

Two sections, both against the *PR-1 engine* (the tuple-set ``Relation``
path with persistent hash indexes and delta patching — the production
engine before this PR):

1. **Kernel table at scale 6 (10^6 rows)**: each batch kernel
   (select/project/join/semi-join) timed against the equivalent tuple-set
   operation on cache-free relations (the PR-1 cost model for a first
   evaluation). The acceptance bar — >= 10x at scale 6 — is asserted on
   the dictionary-friendly kernels (equality select, semi-join, project);
   the table records the rest (hash join, range select) where the win is
   real but smaller.
2. **E7 maintenance stream at TPC-D scale 6**: the full refresh pipeline
   (``Warehouse.apply`` over interleaved order/lineitem batches) replayed
   through ``engine="columnar"`` vs the tuple fast path vs the seed
   evaluator. Final states are asserted identical — the speedup numbers
   are only worth recording because the answers agree.

Run with ``pytest benchmarks/bench_e14_columnar.py -s`` (benchmarks are
not part of tier-1).
"""

from __future__ import annotations

import random
import time

import pytest

from repro import Relation, Warehouse
from repro.algebra.conditions import AttributeRef, Comparison, Constant
from repro.algebra.evaluator import EvaluationCache
from repro.core.maintenance import refresh_state
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows

from _helpers import print_table

#: log10 of the kernel-table row count; the ISSUE's "scale 6" = 10^6 rows.
KERNEL_SCALE = 6
KERNEL_ROWS = 10**KERNEL_SCALE

#: The acceptance bar, asserted on the dictionary-friendly kernels.
ACCEPTANCE_FLOOR = 10.0
ACCEPTANCE_KERNELS = ("select=", "semi-join", "project")


def _best(func, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fresh(relation: Relation) -> Relation:
    """Cache-free clone: PR-1 cost for a relation seen for the first time."""
    return Relation._raw(relation.attributes, relation.rows)


def kernel_fixture(n: int):
    left = Relation(("k", "a"), [(i % (n // 4), i) for i in range(n)])
    right = Relation(("k", "b"), [(i % (n // 4), -i) for i in range(n // 10)])
    return left, right


def kernel_cases(left: Relation, right: Relation):
    lt, rt = left.columnar(), right.columnar()
    eq = Comparison(AttributeRef("k"), "=", Constant(17))
    rng = Comparison(AttributeRef("a"), "<", Constant(len(left) // 10))
    eq_pred = eq.compile(left.attributes)
    rng_pred = rng.compile(left.attributes)
    return [
        ("join", lambda: _fresh(left).natural_join(_fresh(right)), lambda: lt.join(rt)),
        ("select=", lambda: _fresh(left).select(eq_pred), lambda: lt.select(eq)),
        ("select<", lambda: _fresh(left).select(rng_pred), lambda: lt.select(rng)),
        (
            "semi-join",
            lambda: _fresh(left).semi_join(_fresh(right)),
            lambda: lt.semi_join(rt),
        ),
        ("project", lambda: _fresh(left).project(("k",)), lambda: lt.project(("k",))),
    ]


def test_kernels_at_scale_6():
    left, right = kernel_fixture(KERNEL_ROWS)
    rows = []
    speedups = {}
    for name, tuple_op, columnar_op in kernel_cases(left, right):
        tuple_time, tuple_result = _best(tuple_op)
        columnar_time, columnar_result = _best(columnar_op)
        # Both sides computed the same relation (late materialization).
        assert columnar_result.to_relation() == tuple_result
        speedup = tuple_time / columnar_time
        speedups[name] = speedup
        rows.append(
            (
                name,
                f"{tuple_time * 1e3:.1f}",
                f"{columnar_time * 1e3:.1f}",
                f"{speedup:.1f}x",
            )
        )
    print_table(
        f"E14: batch kernels at 10^{KERNEL_SCALE} rows, "
        "tuple-set (PR-1) vs columnar",
        ("kernel", "tuple [ms]", "columnar [ms]", "speedup"),
        rows,
    )
    for name in ACCEPTANCE_KERNELS:
        assert speedups[name] >= ACCEPTANCE_FLOOR, (name, speedups)


def build_stream(scale: float):
    """The E7 workload: 3 order + 3 lineitem batches, interleaved (as E12)."""
    inst = tpcd_instance(scale=scale, seed=21)
    wh = Warehouse.specify(inst.catalog, inst.views)
    wh.initialize(inst.database)
    rng = random.Random(3)
    updates = []
    for _ in range(3):
        orders, lines = order_insert_rows(rng, inst.database, count=3)
        updates.append(inst.database.insert("Orders", orders))
        updates.append(inst.database.insert("Lineitem", lines))
    plans = {u.relations(): wh.maintenance_plan(u.relations()) for u in updates}
    return wh, dict(wh.state), updates, plans


def strip_caches(state):
    """Fresh ``Relation`` objects — the seed's post-refresh cache state."""
    return {name: Relation(rel.attributes, rel.rows) for name, rel in state.items()}


def run_engine(wh, base_state, updates, plans, engine=None, seed_mode=False):
    """Replay the stream through ``refresh_state`` with one engine config."""
    cache = None if seed_mode else EvaluationCache()
    state = strip_caches(base_state) if seed_mode else base_state
    for update in updates:
        state, _ = refresh_state(
            wh.spec,
            state,
            update,
            plans[update.relations()],
            cache=cache,
            fastpath=not seed_mode,
            engine=engine,
        )
        if seed_mode:
            state = strip_caches(state)
    return state


def test_maintenance_stream_scale_6():
    wh, base_state, updates, plans = build_stream(6.0)
    tracks = (
        ("seed", dict(seed_mode=True)),
        ("fast (PR-1)", dict(engine="tuple")),
        ("columnar", dict(engine="columnar")),
    )
    results = {}
    for label, kwargs in tracks:
        results[label] = _best(
            lambda kw=kwargs: run_engine(wh, base_state, updates, plans, **kw)
        )
    # Same final state on every engine — the only speedups worth reporting.
    seed_time, seed_state = results["seed"]
    assert results["fast (PR-1)"][1] == seed_state
    assert results["columnar"][1] == seed_state
    print_table(
        "E14: 6-batch E7 update stream at TPC-D scale 6, per engine",
        ("engine", "stream [ms]", "vs seed"),
        [
            (label, f"{elapsed * 1e3:.1f}", f"{seed_time / elapsed:.1f}x")
            for label, (elapsed, _) in results.items()
        ],
    )
    # The refresh pipeline includes delta plumbing shared by both engines,
    # so the end-to-end ratio is smaller than the kernel table; columnar
    # must at least keep pace with the PR-1 fast path (the >= 10x
    # acceptance bar lives in the kernel table above).
    assert results["columnar"][0] <= results["fast (PR-1)"][0] * 1.5, results


@pytest.mark.parametrize("engine", ["tuple", "columnar"])
def test_stream_benchmark(benchmark, engine):
    wh, base_state, updates, plans = build_stream(2.0)
    benchmark(lambda: run_engine(wh, base_state, updates, plans, engine=engine))
