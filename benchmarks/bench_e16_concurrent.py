"""E16 — concurrent integrator throughput: shards, lag, snapshot readers.

ROADMAP item 3 made the integrator concurrent: per-source async channels
fold pending notifications into net batches (``Update.compose``), a
:class:`~repro.core.sharding.ShardedWarehouse` routes each batch to the
shards its rows live on, and MVCC snapshots give readers consistent images
while refreshes land. This benchmark drives a scaled Figure 1 pipeline —
two lag-injecting async sources, one snapshot-reader task hammering
assembled reads — at 1, 2, and 4 shards, and reports:

* **updates/sec** — source notifications folded per wall-clock second of
  the sustained run;
* **reader QPS** — consistent snapshot reads served in the same window;
* **batch fold** — mean notifications folded per refresh (the compose win).

Correctness is the gate, not an afterthought: before any number is
recorded, every configuration must (a) equal direct evaluation over the
final source states, (b) replay its commit log through a synchronous
reference warehouse to the same final state (the differential oracle), and
(c) have every reader-sampled snapshot version match the oracle's state at
that version.

Run with ``pytest benchmarks/bench_e16_concurrent.py -s`` (benchmarks are
not part of tier-1).
"""

from __future__ import annotations

import asyncio
import random
import time

from repro import Relation, View, Warehouse, parse, specify
from repro.algebra.evaluator import evaluate
from repro.core.sharding import ShardRouting
from repro.integrator import AsyncChannel, AsyncConcurrentIntegrator, AsyncSource

from _helpers import figure1_catalog, print_table

N_EMPS = 60
N_SALES = 600
N_SALE_UPDATES = 240
N_EMP_UPDATES = 60
CHANNEL_CAPACITY = 16
SOURCE_LAG = 0.0002  # injected delivery lag per notification (seconds)
SHARD_COUNTS = (1, 2, 4)


def build_initial(seed: int = 7):
    rng = random.Random(seed)
    emps = [(f"clerk{i:03d}", rng.randint(18, 65)) for i in range(N_EMPS)]
    sales = [
        (f"item{i:04d}", f"clerk{rng.randrange(N_EMPS):03d}")
        for i in range(N_SALES)
    ]
    return emps, sales


def sale_ops(rng) -> list:
    """(kind, rows) — inserts with periodic deletes of earlier inserts."""
    ops = []
    inserted = []
    for i in range(N_SALE_UPDATES):
        if inserted and i % 5 == 4:
            ops.append(("delete", [inserted.pop(rng.randrange(len(inserted)))]))
        else:
            row = (f"new{i:04d}", f"clerk{rng.randrange(N_EMPS):03d}")
            inserted.append(row)
            ops.append(("insert", [row]))
    return ops


def emp_ops(rng) -> list:
    """Hire-and-retire churn on the replicated dimension."""
    ops = []
    for i in range(N_EMP_UPDATES):
        name = f"temp{i:03d}"
        ops.append(("insert", [(name, rng.randint(18, 65))]))
        if i % 3 == 2:
            ops.append(("delete", [ops[-1][1][0]]))
    return ops


async def drive(shards: int, emps, sales):
    catalog = figure1_catalog()
    views = [View("Sold", parse("Sale join Emp"))]
    routings = [ShardRouting("Sale", "item", shards=shards)]

    sales_src = AsyncSource(
        "SalesDB", catalog, ("Sale",),
        channel=AsyncChannel("SalesDB", capacity=CHANNEL_CAPACITY),
        delay=SOURCE_LAG,
    )
    company_src = AsyncSource(
        "CompanyDB", catalog, ("Emp",),
        channel=AsyncChannel("CompanyDB", capacity=CHANNEL_CAPACITY),
        delay=SOURCE_LAG,
    )
    sales_src.load("Sale", sales)
    company_src.load("Emp", emps)

    integrator = AsyncConcurrentIntegrator(catalog, views, routings=routings)
    integrator.initialize([sales_src, company_src])

    rng = random.Random(13)
    observed = []
    reads = 0
    done = asyncio.Event()

    async def run_sales():
        for kind, rows in sale_ops(rng):
            if kind == "insert":
                await sales_src.insert_async("Sale", rows)
            else:
                await sales_src.delete_async("Sale", rows)
        sales_src.channel.close()

    async def run_company():
        for kind, rows in emp_ops(rng):
            if kind == "insert":
                await company_src.insert_async("Emp", rows)
            else:
                await company_src.delete_async("Emp", rows)
        company_src.channel.close()

    async def reader():
        nonlocal reads
        while not done.is_set():
            snapshot = integrator.snapshot()
            # Assemble the hot relation — a real consistent read.
            image = snapshot.relation("Sold")
            reads += 1
            if reads % 50 == 0:  # sample for the per-version oracle check
                observed.append((snapshot.version, snapshot.state()))
            del image
            await asyncio.sleep(0)

    async def produce_and_integrate():
        await asyncio.gather(run_sales(), run_company(), integrator.run())
        done.set()

    started = time.perf_counter()
    await asyncio.gather(produce_and_integrate(), reader())
    elapsed = time.perf_counter() - started

    return {
        "integrator": integrator,
        "sales": sales_src,
        "company": company_src,
        "views": views,
        "catalog": catalog,
        "elapsed": elapsed,
        "reads": reads,
        "observed": observed,
        "initial": {"Sale": sales, "Emp": emps},
    }


def check_correctness(result) -> None:
    integrator = result["integrator"]
    live = {
        "Sale": result["sales"].relation("Sale"),
        "Emp": result["company"].relation("Emp"),
    }
    # (a) final assembled state equals direct evaluation over live sources
    assert integrator.relation("Sold") == evaluate(
        result["views"][0].definition, live
    )
    for base in ("Sale", "Emp"):
        assert integrator.warehouse.reconstruct(base) == live[base]
    # (b) + (c) the differential oracle: replay the commit log through a
    # synchronous reference; final state and every sampled snapshot version
    # must match.
    reference = Warehouse(specify(result["catalog"], result["views"]))
    reference.initialize(
        {
            "Sale": Relation(("item", "clerk"), result["initial"]["Sale"]),
            "Emp": Relation(("clerk", "age"), result["initial"]["Emp"]),
        }
    )
    states = {1: dict(reference.state)}
    for record in integrator.warehouse.commit_log:
        reference.apply(record.update)
        states[record.version] = dict(reference.state)
    assert states[integrator.warehouse.version] == integrator.warehouse.state()
    for version, image in result["observed"]:
        assert image == states[version], f"torn read at version {version}"


def test_e16_concurrent_throughput():
    emps, sales = build_initial()
    rows = []
    for shards in SHARD_COUNTS:
        result = asyncio.run(drive(shards, emps, sales))
        check_correctness(result)
        integrator = result["integrator"]
        elapsed = result["elapsed"]
        batches = integrator.metrics.value("integrator.batches")
        fold = integrator.processed / batches if batches else 0.0
        rows.append(
            [
                shards,
                integrator.processed,
                f"{integrator.processed / elapsed:.0f}",
                f"{result['reads'] / elapsed:.0f}",
                f"{fold:.2f}",
                integrator.warehouse.version,
                "ok",
            ]
        )
    print_table(
        "E16: concurrent integrator, sustained stream "
        f"({N_SALE_UPDATES + N_EMP_UPDATES}+ notifications, "
        f"lag {SOURCE_LAG * 1000:.1f}ms, capacity {CHANNEL_CAPACITY})",
        ["shards", "notifs", "updates/s", "reader QPS", "fold", "commits", "oracle"],
        rows,
    )


if __name__ == "__main__":
    test_e16_concurrent_throughput()
