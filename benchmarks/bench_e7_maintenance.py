"""E7 — Section 4 / Theorem 4.1 / Example 4.1: update independence at scale.

Replays TPC-D-like order/lineitem insertion streams against the warehouse
and times the two source-free strategies (and the trivial-complement
replica for the storage trade-off).

Expected shape: incremental refresh beats full recomputation, with the gap
growing with scale (the view recomputation performs the 3-way fact join
from scratch; the incremental plan joins only the delta against
materialized warehouse relations).
"""

from __future__ import annotations

import random

import pytest

from repro import Warehouse, complement_trivial
from repro.core.maintenance import full_recompute_state, refresh_state
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows

from _helpers import print_table

SCALES = [0.5, 2.0, 6.0]


def build(scale: float):
    inst = tpcd_instance(scale=scale, seed=21)
    wh = Warehouse.specify(inst.catalog, inst.views)
    wh.initialize(inst.database)
    rng = random.Random(3)
    updates = []
    for _ in range(3):
        orders, lines = order_insert_rows(rng, inst.database, count=3)
        updates.append(inst.database.insert("Orders", orders))
        updates.append(inst.database.insert("Lineitem", lines))
    return inst, wh, updates


@pytest.mark.parametrize("scale", SCALES)
def test_incremental_stream(benchmark, scale):
    inst, wh, updates = build(scale)
    base_state = dict(wh.state)
    plans = {u.relations(): wh.maintenance_plan(u.relations()) for u in updates}

    def run():
        state = base_state
        for update in updates:
            state, _ = refresh_state(wh.spec, state, update, plans[update.relations()])
        return state

    benchmark(run)


@pytest.mark.parametrize("scale", SCALES)
def test_recompute_stream(benchmark, scale):
    inst, wh, updates = build(scale)
    base_state = dict(wh.state)

    def run():
        state = base_state
        for update in updates:
            state = full_recompute_state(wh.spec, state, update)
        return state

    benchmark(run)


def test_report_series(benchmark):
    import time

    rows = []
    for scale in SCALES:
        inst, wh, updates = build(scale)
        state = dict(wh.state)
        plans = {u.relations(): wh.maintenance_plan(u.relations()) for u in updates}

        def run_incremental():
            current = dict(state)
            for update in updates:
                current, _ = refresh_state(
                    wh.spec, current, update, plans[update.relations()]
                )
            return current

        def run_recompute():
            current = dict(state)
            for update in updates:
                current = full_recompute_state(wh.spec, current, update)
            return current

        def timed(func):
            best = float("inf")
            result = None
            for _ in range(3):  # best-of-3 damps scheduler noise
                start = time.perf_counter()
                result = func()
                best = min(best, time.perf_counter() - start)
            return best, result

        incremental_time, incremental = timed(run_incremental)
        recompute_time, recomputed = timed(run_recompute)
        t0, t1, t2 = 0.0, incremental_time, incremental_time + recompute_time
        assert incremental == recomputed  # Theorem 4.1: both are W(d')

        trivial_spec = complement_trivial(inst.catalog, inst.views)
        trivial = Warehouse(trivial_spec)
        trivial.initialize(inst.database)
        rows.append(
            (
                scale,
                inst.database.total_rows(),
                f"{(t1 - t0) * 1e3:.1f}",
                f"{(t2 - t1) * 1e3:.1f}",
                f"{(t2 - t1) / (t1 - t0):.1f}x",
                wh.storage_rows(),
                trivial.storage_rows(),
            )
        )
    print_table(
        "E7 (Theorem 4.1): 6-batch update stream, incremental vs recompute",
        (
            "scale",
            "src rows",
            "incremental [ms]",
            "recompute [ms]",
            "speedup",
            "wh rows (thm22)",
            "wh rows (trivial)",
        ),
        rows,
    )
    # Incremental wins at every scale (ratios jitter run-to-run, so the
    # assertion is a floor, not monotonicity).
    speedups = [float(row[4][:-1]) for row in rows]
    assert all(s >= 1.0 for s in speedups), speedups
    assert max(speedups) > 2.0, speedups

    inst, wh, updates = build(SCALES[0])
    state = dict(wh.state)
    plan = wh.maintenance_plan(updates[0].relations())
    benchmark(lambda: refresh_state(wh.spec, state, updates[0], plan))
