"""E11 — Section 1 comparison: complements vs [18]-style auxiliary views.

The paper positions its complement-first design against Quass et al.'s
auxiliary-view extraction. This benchmark quantifies the storage each route
needs for self-maintainability on three settings:

* Figure 1 without constraints — auxiliaries are narrower (projection), the
  complement stores full-width leftovers;
* Figure 1 with referential integrity — the complement collapses (C_Sale
  proven empty, C_Emp holds only clerk-less employees) while the auxiliary
  route cannot exploit the IND at all (the paper's stated advantage);
* the TPC-D SalesFact view — foreign keys empty most complements.

Also times the insert-delta evaluation of both routes.
"""

from __future__ import annotations

import random

import pytest

from repro import Relation, Update, View, Warehouse, complement_thm22, parse
from repro.core.auxviews import auxiliary_views
from repro.core.independence import warehouse_state
from repro.core.maintenance import refresh_state
from repro.algebra.evaluator import evaluate
from repro.workloads import tpcd_instance

from _helpers import figure1_catalog, figure1_database, print_table, sold_view


def complement_storage(spec, state) -> int:
    image = warehouse_state(spec, state)
    return sum(len(image[name]) for name in spec.complement_names())


def figure1_setting(with_ri: bool):
    catalog = figure1_catalog(with_ri=with_ri)
    db = figure1_database(catalog, n_emps=200, sales_per_emp=4)
    view = sold_view()
    return catalog, db, view


@pytest.mark.parametrize("with_ri", [False, True], ids=["no-ri", "ri"])
def test_aux_insert_delta_cost(benchmark, with_ri):
    catalog, db, view = figure1_setting(with_ri)
    aux = auxiliary_views(catalog, view)
    bindings = dict(aux.materialize(db.state()))
    bindings["Sale__ins"] = Relation(
        ("item", "clerk"), [("fresh", f"clerk{i}") for i in range(5)]
    )
    expression = aux.insert_delta_expression("Sale")
    benchmark(lambda: evaluate(expression, bindings))


@pytest.mark.parametrize("with_ri", [False, True], ids=["no-ri", "ri"])
def test_complement_insert_delta_cost(benchmark, with_ri):
    catalog, db, view = figure1_setting(with_ri)
    wh = Warehouse.specify(catalog, [view])
    wh.initialize(db)
    update = Update.insert(
        "Sale", ("item", "clerk"), [("fresh", f"clerk{i}") for i in range(5)]
    )
    state = dict(wh.state)
    plan = wh.maintenance_plan(["Sale"])
    benchmark(lambda: refresh_state(wh.spec, state, update, plan))


def test_report_series(benchmark):
    rows = []

    for label, with_ri in (("fig1 (no constraints)", False), ("fig1 + RI", True)):
        catalog, db, view = figure1_setting(with_ri)
        aux = auxiliary_views(catalog, view)
        spec = complement_thm22(catalog, [view])
        state = db.state()
        rows.append(
            (
                label,
                db.total_rows(),
                aux.storage_rows(state),
                complement_storage(spec, state),
                len(spec.complement_names()),
            )
        )

    inst = tpcd_instance(scale=1.0, seed=9)
    sales_fact = inst.views[0]
    aux = auxiliary_views(inst.catalog, sales_fact)
    spec = complement_thm22(inst.catalog, [sales_fact])
    state = inst.database.state()
    rows.append(
        (
            "tpcd SalesFact",
            inst.database.total_rows(),
            aux.storage_rows(state),
            complement_storage(spec, state),
            len(spec.complement_names()),
        )
    )

    print_table(
        "E11 (Section 1): auxiliary-view route [18] vs complement route",
        ("setting", "src rows", "aux rows", "complement rows", "stored complements"),
        rows,
    )
    # The paper's claim: constraints are where complements win.
    fig1_plain, fig1_ri = rows[0], rows[1]
    assert fig1_ri[4] < fig1_plain[4]       # RI drops a stored complement...
    assert fig1_ri[3] <= fig1_plain[3]      # ...never storing more tuples...
    assert fig1_ri[2] == fig1_plain[2]      # ...while auxiliaries are unchanged
    assert fig1_ri[3] < fig1_ri[2]          # complement beats aux under RI

    catalog, db, view = figure1_setting(True)
    benchmark(lambda: complement_thm22(catalog, [view]))
