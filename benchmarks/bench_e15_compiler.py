"""E15 — certificate-driven compiled refresh vs the interpreted columnar path.

The plan compiler (:mod:`repro.compiler`) specializes one closure per
update shape from a PROVED prover certificate: select/project/join chains
fused into single columnar kernel calls, dead branches pruned by the
static dataflow read sets, no per-refresh AST walking or memo-key
hashing. This benchmark replays the E7/E12 maintenance stream (interleaved
order/lineitem insert batches at TPC-D scale 6) through both paths:

1. **interpreted columnar** — ``refresh_state`` with a persistent
   :class:`~repro.algebra.evaluator.EvaluationCache`, fast paths on,
   ``engine="columnar"`` (the E14 production configuration);
2. **compiled** — :class:`~repro.compiler.RefreshCompiler` closures,
   update shapes pre-compiled outside the timed region (steady-state
   refresh cost; compilation itself is measured separately by the
   ``compiler.build_seconds`` metric).

Correctness first: an untimed lockstep pass asserts *per-batch*
extensional state equality between the two tracks before any number is
recorded. The acceptance bar — compiled >= 2x interpreted-columnar
refresh throughput at scale >= 6 — is asserted on the timed replay.

Run with ``pytest benchmarks/bench_e15_compiler.py -s`` (benchmarks are
not part of tier-1).
"""

from __future__ import annotations

import random
import time

import pytest

from repro import Warehouse, specify
from repro.algebra.evaluator import EvaluationCache
from repro.compiler import RefreshCompiler
from repro.core.maintenance import refresh_state
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows

from _helpers import print_table

#: The ISSUE's scale floor: TPC-D scale factor 6 (as E14's stream section).
STREAM_SCALE = 6.0

#: E7/E12 shape: interleaved order/lineitem batches, 3 rows per batch.
N_ROUNDS = 10  # 2 updates per round -> 20 batches
BATCH_ROWS = 3

ACCEPTANCE_SPEEDUP = 2.0


def _best(func, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def build_stream(scale: float, rounds: int = N_ROUNDS):
    """The E7/E12 workload: interleaved Orders/Lineitem insert batches."""
    inst = tpcd_instance(scale=scale, seed=21)
    wh = Warehouse.specify(inst.catalog, inst.views, compile_plans=False)
    wh.initialize(inst.database)
    rng = random.Random(3)
    updates = []
    for _ in range(rounds):
        orders, lines = order_insert_rows(rng, inst.database, count=BATCH_ROWS)
        updates.append(inst.database.insert("Orders", orders))
        updates.append(inst.database.insert("Lineitem", lines))
    plans = {u.relations(): wh.maintenance_plan(u.relations()) for u in updates}
    return wh.spec, dict(wh.state), updates, plans


def run_interpreted(spec, base_state, updates, plans):
    """The E14 production path: cached interpreter on the columnar engine."""
    cache = EvaluationCache()
    state = dict(base_state)
    for update in updates:
        state, _ = refresh_state(
            spec,
            state,
            update,
            plans[update.relations()],
            cache=cache,
            fastpath=True,
            engine="columnar",
        )
    return state


def make_compiled_runner(spec, base_state, updates):
    """A pre-compiled closure set: shape compilation outside the timing.

    Warms by replaying the stream once so every (shape, side-mask) pair
    the refreshes will request is compiled before the timed region.
    """
    compiler = RefreshCompiler(spec)
    state = dict(base_state)
    for update in updates:
        state, _ = compiler.refresh(state, update)

    def run(base_state):
        state = dict(base_state)
        for update in updates:
            state, _ = compiler.refresh(state, update)
        return state

    return compiler, run


def _canonical(state):
    return {name: rel.to_set() for name, rel in state.items()}


def test_compiled_stream_scale_6():
    spec, base_state, updates, plans = build_stream(STREAM_SCALE)
    compiler, run_compiled = make_compiled_runner(spec, base_state, updates)

    # Correctness gate: lockstep replay, extensional equality after EVERY
    # batch — the speedup below is only worth recording because of this.
    cache = EvaluationCache()
    interpreted = dict(base_state)
    compiled = dict(base_state)
    for step, update in enumerate(updates):
        interpreted, _ = refresh_state(
            spec,
            interpreted,
            update,
            plans[update.relations()],
            cache=cache,
            fastpath=True,
            engine="columnar",
        )
        compiled, _ = compiler.refresh(compiled, update)
        assert _canonical(compiled) == _canonical(interpreted), step

    interp_time, interp_state = _best(
        lambda: run_interpreted(spec, base_state, updates, plans)
    )
    compiled_time, compiled_state = _best(lambda: run_compiled(base_state))
    assert _canonical(compiled_state) == _canonical(interp_state)

    speedup = interp_time / compiled_time
    batches = len(updates)
    print_table(
        f"E15: {batches}-batch E7/E12 update stream at TPC-D scale "
        f"{STREAM_SCALE:g}, interpreted columnar vs compiled closures",
        ("path", "stream [ms]", "per batch [ms]", "speedup"),
        [
            (
                "interpreted columnar",
                f"{interp_time * 1e3:.1f}",
                f"{interp_time * 1e3 / batches:.2f}",
                "1.0x",
            ),
            (
                "compiled",
                f"{compiled_time * 1e3:.1f}",
                f"{compiled_time * 1e3 / batches:.2f}",
                f"{speedup:.1f}x",
            ),
        ],
    )
    assert speedup >= ACCEPTANCE_SPEEDUP, (speedup, interp_time, compiled_time)


@pytest.mark.parametrize("path", ["interpreted", "compiled"])
def test_stream_benchmark(benchmark, path):
    spec, base_state, updates, plans = build_stream(2.0, rounds=4)
    if path == "interpreted":
        benchmark(lambda: run_interpreted(spec, base_state, updates, plans))
    else:
        _, run_compiled = make_compiled_runner(spec, base_state, updates)
        benchmark(lambda: run_compiled(base_state))
