"""E1 — Figure 1 / Examples 1.1-1.2: maintenance on the running example.

Regenerates the paper's motivating scenario at growing scale and times the
three ways the integrator could react to the reported insertion:

* ``incremental`` — the paper's approach: fold the update in using the
  warehouse and its complement only;
* ``recompute``   — ``w' = W(u(W^{-1}(w)))``: still source-free but from
  scratch;
* ``re_extract``  — what the paper wants to avoid: query the sources and
  rebuild the warehouse (only possible while sources are reachable).

Expected shape: incremental beats recompute, and both avoid the sources.
"""

from __future__ import annotations

import pytest

from repro import Update, Warehouse
from repro.core.independence import warehouse_state

from _helpers import figure1_catalog, figure1_database, print_table, sold_view

SCALES = [(50, 4), (200, 4), (800, 4)]


def build(n_emps: int, sales_per_emp: int):
    catalog = figure1_catalog()
    db = figure1_database(catalog, n_emps, sales_per_emp)
    wh = Warehouse.specify(catalog, [sold_view()], method="prop22")
    wh.initialize(db)
    update = Update.insert(
        "Sale", ("item", "clerk"), [("new_item", f"clerk{i}") for i in range(5)]
    )
    return db, wh, update


@pytest.mark.parametrize("n_emps,per_emp", SCALES)
def test_incremental_maintenance(benchmark, n_emps, per_emp):
    db, wh, update = build(n_emps, per_emp)
    state = dict(wh.state)

    from repro.core.maintenance import refresh_state

    plan = wh.maintenance_plan(["Sale"])
    benchmark(lambda: refresh_state(wh.spec, state, update, plan))


@pytest.mark.parametrize("n_emps,per_emp", SCALES)
def test_full_recompute(benchmark, n_emps, per_emp):
    db, wh, update = build(n_emps, per_emp)
    state = dict(wh.state)

    from repro.core.maintenance import full_recompute_state

    benchmark(lambda: full_recompute_state(wh.spec, state, update))


@pytest.mark.parametrize("n_emps,per_emp", SCALES)
def test_source_re_extraction(benchmark, n_emps, per_emp):
    db, wh, update = build(n_emps, per_emp)
    db.apply(update)
    benchmark(lambda: warehouse_state(wh.spec, db.state()))


def test_report_series(benchmark):
    """Print the E1 series: strategies agree; minimal-vs-trivial trade-off."""
    import time

    from repro import Warehouse, complement_trivial
    from repro.core.maintenance import full_recompute_state, refresh_state

    rows = []
    for n_emps, per_emp in SCALES:
        db, wh, update = build(n_emps, per_emp)
        state = dict(wh.state)
        plan = wh.maintenance_plan(["Sale"])

        trivial = Warehouse(complement_trivial(wh.spec.catalog, list(wh.spec.views)))
        trivial.initialize(db)
        trivial_plan = trivial.maintenance_plan(["Sale"])
        trivial_state = dict(trivial.state)

        t0 = time.perf_counter()
        incremental, _ = refresh_state(wh.spec, state, update, plan)
        t1 = time.perf_counter()
        full = full_recompute_state(wh.spec, state, update)
        t2 = time.perf_counter()
        db.apply(update)
        extracted = warehouse_state(wh.spec, db.state())
        t3 = time.perf_counter()
        refresh_state(trivial.spec, trivial_state, update, trivial_plan)
        t4 = time.perf_counter()

        assert incremental == full == extracted
        rows.append(
            (
                f"{n_emps}x{per_emp}",
                db.total_rows(),
                sum(len(r) for r in state.values()),
                sum(len(r) for r in trivial_state.values()),
                f"{(t1 - t0) * 1e3:.2f}",
                f"{(t2 - t1) * 1e3:.2f}",
                f"{(t3 - t2) * 1e3:.2f}",
                f"{(t4 - t3) * 1e3:.2f}",
            )
        )
    print_table(
        "E1 (Figure 1): storage and maintenance latency per 5-tuple insertion",
        (
            "scale",
            "src rows",
            "wh rows (minimal C)",
            "wh rows (trivial C)",
            "incr [ms]",
            "recomp [ms]",
            "re-extract [ms]",
            "trivial incr [ms]",
        ),
        rows,
    )
    # Time the headline operation at the largest scale for the summary.
    db, wh, update = build(*SCALES[-1])
    state = dict(wh.state)
    plan = wh.maintenance_plan(["Sale"])
    benchmark(lambda: refresh_state(wh.spec, state, update, plan))
