"""E5 — Example 2.4: referential integrity empties a complement.

Scales the Figure 1 instance and compares the warehouse with and without
the constraint ``pi_clerk(Sale) ⊆ pi_clerk(Emp)`` declared.

Expected shape (paper): with the IND declared, C_Sale is dropped at
*specification time* (zero storage, zero maintenance work, forever); without
it the complement is stored even though it happens to be empty on RI data —
the constraint turns an empirical accident into a guarantee.
"""

from __future__ import annotations

import pytest

from repro import Update, Warehouse, complement_thm22
from repro.core.maintenance import refresh_state

from _helpers import figure1_catalog, figure1_database, print_table, sold_view

SCALES = [(100, 4), (400, 4)]


def build(with_ri: bool, n_emps: int, per_emp: int):
    catalog = figure1_catalog(with_ri=with_ri)
    db = figure1_database(catalog, n_emps, per_emp)
    wh = Warehouse.specify(catalog, [sold_view()])
    wh.initialize(db)
    return db, wh


@pytest.mark.parametrize("with_ri", [False, True], ids=["no-ri", "ri"])
@pytest.mark.parametrize("n_emps,per_emp", SCALES)
def test_maintenance_latency(benchmark, with_ri, n_emps, per_emp):
    db, wh = build(with_ri, n_emps, per_emp)
    update = Update.insert(
        "Sale", ("item", "clerk"), [("fresh", f"clerk{i}") for i in range(5)]
    )
    state = dict(wh.state)
    plan = wh.maintenance_plan(["Sale"])
    benchmark(lambda: refresh_state(wh.spec, state, update, plan))


def test_report_series(benchmark):
    rows = []
    for n_emps, per_emp in SCALES:
        entry = [f"{n_emps}x{per_emp}"]
        for with_ri in (False, True):
            db, wh = build(with_ri, n_emps, per_emp)
            spec = wh.spec
            stored_names = spec.complement_names()
            entry.append(len(stored_names))
            entry.append(wh.storage_rows())
        rows.append(tuple(entry))
    print_table(
        "E5 (Example 2.4): complements stored with/without referential integrity",
        ("scale", "#C (no RI)", "wh rows (no RI)", "#C (RI)", "wh rows (RI)"),
        rows,
    )
    # The RI variant stores one complement fewer (C_Sale is proven empty).
    assert all(row[3] < row[1] for row in rows)

    catalog = figure1_catalog(with_ri=True)
    benchmark(lambda: complement_thm22(catalog, [sold_view()]))
