#!/usr/bin/env python3
"""Star schemata and aggregates (Section 5).

A business sells parts from two locations, each running its own operational
database. The warehouse keeps

* a ``Sales`` fact table — the union of two per-location PSJ extractions,
* a ``CustomerDim`` dimension copy, and
* a revenue-by-segment aggregate view maintained summary-delta style.

Foreign keys pin every order to a customer and check constraints pin each
source's location, so the complement machinery proves all order complements
empty: the warehouse stores nothing beyond the star schema itself, yet is
fully query- and update-independent.

Run:  python examples/star_schema.py
"""

from repro import Catalog, Database, View, Warehouse, parse, parse_condition
from repro.core.aggregates import AggregateView, agg_sum, count
from repro.core.star import FactTable, star_specify


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
    for loc in ("N", "S"):
        name = f"Orders{loc}"
        catalog.relation(name, ("loc", "okey", "custkey", "price"), key=("okey",))
        catalog.inclusion(name, ("custkey",), "Customer")
        catalog.add_check(name, parse_condition(f"loc = '{loc}'"))
    return catalog


def main() -> None:
    catalog = build_catalog()
    sources = Database(catalog)
    sources.load("Customer", [(1, "RETAIL"), (2, "CORP"), (3, "RETAIL")])
    sources.load("OrdersN", [("N", 10, 1, 100), ("N", 11, 2, 250)])
    sources.load("OrdersS", [("S", 20, 1, 75), ("S", 21, 3, 30)])

    fact = FactTable(
        "Sales",
        "loc",
        {
            "N": parse("OrdersN join Customer"),
            "S": parse("OrdersS join Customer"),
        },
    )
    spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
    print("Star warehouse specification")
    print("=" * 70)
    print(spec.describe())

    warehouse = Warehouse(spec)
    warehouse.initialize(sources)
    warehouse.attach_aggregate(
        AggregateView(
            "RevenueBySegment", "Sales", ("segment",), [count("orders"), agg_sum("price")]
        )
    )
    print("\nFact table:", len(warehouse.relation("Sales")), "rows")
    print("RevenueBySegment:", sorted(warehouse.aggregate("RevenueBySegment").rows))

    # A cross-source query answered at the warehouse.
    query = "pi[okey, price](OrdersN) union pi[okey, price](OrdersS)"
    print("\nAll orders across locations:", sorted(warehouse.answer(query).rows))

    # Updates from both locations flow through the fact table and the
    # aggregate, no source query needed.
    warehouse.apply(sources.insert("OrdersS", [("S", 22, 2, 500)]))
    warehouse.apply(sources.delete("OrdersN", [("N", 10, 1, 100)]))
    print("\nAfter one insert (South) and one delete (North):")
    print("Fact table:", len(warehouse.relation("Sales")), "rows")
    print("RevenueBySegment:", sorted(warehouse.aggregate("RevenueBySegment").rows))

    # Each member is recoverable by selecting on the origin attribute.
    north = warehouse.answer("OrdersN")
    print("\nReconstructed OrdersN:", sorted(north.rows))
    assert north == sources["OrdersN"]
    print("matches the source: OK")


if __name__ == "__main__":
    main()
