#!/usr/bin/env python3
"""Update independence (Section 4): incremental maintenance at work.

Shows the symbolic maintenance expressions of Example 4.1, then replays a
sizable update stream against a TPC-D-like warehouse three ways:

* incremental refresh (delta propagation over warehouse relations),
* full recomputation ``w' = W(u(W^{-1}(w)))`` (still source-free), and
* a trusted re-extraction from the sources (what the paper wants to avoid),

timing each and checking they agree tuple-for-tuple.

Run:  python examples/incremental_maintenance.py
"""

import random
import time

from repro import Catalog, View, Warehouse, parse
from repro.core.independence import warehouse_state
from repro.core.maintenance import maintenance_expressions
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows


def show_example_41() -> None:
    print("Example 4.1: maintenance expressions for an insertion s into Sale")
    print("=" * 70)
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.inclusion("Sale", ("clerk",), "Emp")
    warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    plan = maintenance_expressions(warehouse.spec, ["Sale"], insert_only=True)
    print(plan.describe())
    print("(Sale__ins plays the role of the paper's set s; every reference")
    print(" is to warehouse relations only — no base relation appears.)")
    print()


def replay_stream() -> None:
    print("TPC-D-like update stream: incremental vs recompute vs re-extract")
    print("=" * 70)
    inst = tpcd_instance(scale=0.5, seed=21)
    incremental = Warehouse.specify(inst.catalog, inst.views)
    incremental.initialize(inst.database)
    recompute = Warehouse.specify(inst.catalog, inst.views)
    recompute.initialize(inst.database)

    rng = random.Random(3)
    updates = []
    for _ in range(10):
        orders, lines = order_insert_rows(rng, inst.database, count=3)
        updates.append(inst.database.insert("Orders", orders))
        updates.append(inst.database.insert("Lineitem", lines))

    start = time.perf_counter()
    for update in updates:
        incremental.apply(update)
    t_incremental = time.perf_counter() - start

    start = time.perf_counter()
    for update in updates:
        recompute.apply_full(update)
    t_recompute = time.perf_counter() - start

    start = time.perf_counter()
    extracted = warehouse_state(incremental.spec, inst.database.state())
    t_extract = time.perf_counter() - start

    assert incremental.state == recompute.state == extracted
    print(f"{len(updates)} update batches over {inst.database.total_rows()} source rows")
    print(f"incremental refresh : {t_incremental * 1000:8.1f} ms")
    print(f"full recompute      : {t_recompute * 1000:8.1f} ms")
    print(f"single re-extract   : {t_extract * 1000:8.1f} ms (for scale)")
    print("all three states identical: OK")


def main() -> None:
    show_example_41()
    replay_stream()


if __name__ == "__main__":
    main()
