#!/usr/bin/env python3
"""Why not just query the sources? The maintenance anomaly, live.

The paper's Section 1 argues that the integrator cannot maintain the
warehouse by querying the sources for join partners: sources are decoupled,
and by the time a notification is processed their state has moved on —
"traditional incremental view maintenance may exhibit anomalies [27, 28]".

This script replays the interleaving that permanently corrupts a naive
query-the-sources integrator (a phantom tuple that is never deleted), then
replays the *same* schedule against the complement-based integrator, which
stays exact — it needs nothing beyond the warehouse and the notification.

Run:  python examples/integrator_anomalies.py
"""

from repro import Catalog, View, parse
from repro.integrator import Channel, ComplementIntegrator, NaiveIntegrator, Source


def build():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    channel = Channel()
    sales = Source("SalesDB", catalog, ("Sale",), channel)
    company = Source("CompanyDB", catalog, ("Emp",), channel)
    sales.load("Sale", [])
    company.load("Emp", [])
    return catalog, channel, sales, company


def replay(kind: str):
    catalog, channel, sales, company = build()
    views = [View("Sold", parse("Sale join Emp"))]
    if kind == "naive":
        integrator = NaiveIntegrator(catalog, views, [sales, company])
        integrator.initialize()
    else:
        integrator = ComplementIntegrator(catalog, views)
        integrator.initialize([sales, company])

    print(f"--- {kind} integrator")
    print("t1: SalesDB   inserts (TV, Zoe)        [Zoe not yet employed]")
    sales.insert("Sale", [("TV", "Zoe")])
    print("t2: CompanyDB inserts (Zoe, 40)")
    company.insert("Emp", [("Zoe", 40)])
    print("    integrator wakes up, processes t1 and t2")
    integrator.process_all(channel)
    print("    Sold =", sorted(integrator.relation("Sold").rows))

    print("t3: SalesDB   deletes (TV, Zoe)        [sale cancelled]")
    sales.delete("Sale", [("TV", "Zoe")])
    print("t4: CompanyDB deletes (Zoe, 40)        [Zoe leaves]")
    company.delete("Emp", [("Zoe", 40)])
    print("    integrator wakes up, processes t3 and t4")
    integrator.process_all(channel)

    correct = sales.relation("Sale").natural_join(company.relation("Emp"))
    got = integrator.relation("Sold")
    status = "CORRECT" if got == correct else "CORRUPTED (permanent phantom!)"
    print(f"    final Sold = {sorted(got.rows)}   expected {sorted(correct.rows)}")
    print(f"    => {status}\n")
    return got == correct


def main() -> None:
    print(__doc__)
    naive_ok = replay("naive")
    complement_ok = replay("complement")
    assert not naive_ok, "the naive integrator should have corrupted"
    assert complement_ok, "the complement integrator must stay exact"
    print("Summary: querying live sources corrupts under lag; the complement")
    print("integrator needs only the warehouse and the notification (Thm 4.1).")


if __name__ == "__main__":
    main()
